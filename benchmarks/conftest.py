"""Shared simulated worlds for the benchmark suite.

Each world is simulated once per session; the benchmarks time the
*reproduction pipelines* (detection, dedup, lifespan tracking, figure
builders) over those records — the part of the system a user re-runs.
"""

import pytest

from repro.experiments import campaign_run, replication_run, replication_runs


@pytest.fixture(scope="session")
def campaign():
    """Quick-config 2024 campaign (covers the scripted §5 cases)."""
    return campaign_run(quick=True)


@pytest.fixture(scope="session")
def campaign_dumps(campaign):
    return list(campaign.rib_dumps())


@pytest.fixture(scope="session")
def replication_2018():
    return replication_run("2018", days=4)


@pytest.fixture(scope="session")
def replication_all():
    return replication_runs(days=3)
