"""Ablation benchmarks for the design choices DESIGN.md calls out:

* Aggregator-based dedup on/off — cost and effect size;
* noisy-peer exclusion on/off — effect on outbreak counts;
* interval isolation (revised) vs carried state (legacy) — cost and
  double-counting effect;
* detection threshold sensitivity.
"""

from repro.core import LegacyDetector, NoisyPeerDetector
from repro.utils.timeutil import MINUTE


def test_bench_ablation_dedup(benchmark, replication_2018):
    """The paper's headline methodology fix: how much does the
    Aggregator filter change, and what does it cost?"""
    run = replication_2018

    def both():
        with_dc = run.detect(dedup=False, exclude_noisy=True)
        without_dc = run.detect(dedup=True, exclude_noisy=True)
        return with_dc, without_dc

    with_dc, without_dc = benchmark.pedantic(both, iterations=1, rounds=3)
    assert without_dc.outbreak_count <= with_dc.outbreak_count
    reduction = (1 - without_dc.outbreak_count / with_dc.outbreak_count
                 if with_dc.outbreak_count else 0)
    print(f"\ndedup ablation: {with_dc.outbreak_count} -> "
          f"{without_dc.outbreak_count} outbreaks ({reduction:.1%} removed)")


def test_bench_ablation_noisy_exclusion(benchmark, replication_2018):
    run = replication_2018

    def both():
        return (run.detect(exclude_noisy=False), run.detect(exclude_noisy=True))

    including, excluding = benchmark.pedantic(both, iterations=1, rounds=3)
    assert excluding.outbreak_count < including.outbreak_count
    print(f"\nnoisy-peer ablation: {including.outbreak_count} -> "
          f"{excluding.outbreak_count} outbreaks")


def test_bench_ablation_legacy_vs_revised(benchmark, replication_2018):
    """Interval isolation vs the previous study's carried state."""
    run = replication_2018

    def both():
        legacy = LegacyDetector(miss_prob=0.0).detect(run.records,
                                                      run.intervals)
        revised = run.detect(dedup=True, exclude_noisy=False)
        return legacy, revised

    legacy, revised = benchmark.pedantic(both, iterations=1, rounds=1)
    # Carried state can only see more (or equal) zombie state.
    assert legacy.outbreak_count >= revised.outbreak_count
    print(f"\nlegacy={legacy.outbreak_count} revised={revised.outbreak_count}")


def test_bench_ablation_threshold(benchmark, replication_2018):
    """Threshold sensitivity of the revised detector (the Fig. 2 axis,
    on the replication workload)."""
    run = replication_2018

    def sweep():
        return [run.detect(threshold=minutes * MINUTE,
                           exclude_noisy=True).outbreak_count
                for minutes in (90, 120, 150)]

    counts = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert counts == sorted(counts, reverse=True)
    print(f"\nthreshold sweep 90/120/150min: {counts}")


def test_bench_noisy_peer_detection(benchmark, campaign):
    """Cost of the outlier scan itself."""
    result = campaign.detect(threshold=90 * MINUTE)

    def scan():
        return NoisyPeerDetector(ratio=4.0, floor=0.04).analyze(result)

    report = benchmark(scan)
    assert campaign.noisy_truth <= report.noisy_keys
    print(f"\nflagged {len(report.noisy)} noisy routers out of "
          f"{len(report.stats)}")
