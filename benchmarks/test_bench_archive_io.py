"""Archive read-path benchmarks: sequential decode vs the indexed,
pushed-down, cached and parallel fast paths over a realistic
multi-collector window.

The synthetic workload (:func:`repro.experiments.synthetic_update_records`)
is written to disk once per session; every leg re-reads the same bytes,
so the measured differences are read-path differences only.
"""

import pytest

from repro.bgpstream import compile_filter
from repro.experiments import (
    records_window,
    synthetic_update_records,
    write_records_archive,
)
from repro.ris import Archive


@pytest.fixture(scope="session")
def io_archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_archive")
    records = synthetic_update_records()
    write_records_archive(records, root)
    start, end = records_window(records)
    return root, start, end, len(records)


def test_bench_sequential_decode(benchmark, io_archive):
    """Baseline: full decode of every file, no cache, no index skip."""
    root, start, end, expected = io_archive
    archive = Archive(root, cache_size=0)
    records = benchmark.pedantic(
        lambda: list(archive.iter_updates(start, end)),
        iterations=1, rounds=3)
    assert len(records) == expected


def test_bench_cached_rescan(benchmark, io_archive):
    """Re-scanning a window already decoded: served from the LRU cache."""
    root, start, end, expected = io_archive
    archive = Archive(root, cache_size=256)
    baseline = list(archive.iter_updates(start, end))  # warm the cache
    records = benchmark.pedantic(
        lambda: list(archive.iter_updates(start, end)),
        iterations=1, rounds=5)
    assert records == baseline
    assert archive.cache.hits > 0


def test_bench_pushdown_peer_filter(benchmark, io_archive):
    """A selective peer clause: the sidecar index skips whole files
    before a single byte is decompressed."""
    root, start, end, _ = io_archive
    archive = Archive(root, cache_size=0)
    record_filter = compile_filter("peer 64500 and type announcements")
    full = list(archive.iter_updates(start, end))
    expected = [r for r in full if record_filter.matches_record(r)]
    records = benchmark.pedantic(
        lambda: list(archive.iter_updates(start, end,
                                          record_filter=record_filter)),
        iterations=1, rounds=3)
    assert records == expected


def test_bench_parallel_decode(benchmark, io_archive):
    """Process-pool decode; identical output to sequential by
    construction (ordered heap-merge). On a single-CPU host this leg
    measures pool overhead, not speedup."""
    root, start, end, expected = io_archive
    sequential = list(Archive(root, cache_size=0).iter_updates(start, end))
    archive = Archive(root, workers=2, cache_size=0)
    records = benchmark.pedantic(
        lambda: list(archive.iter_updates(start, end)),
        iterations=1, rounds=2)
    assert len(records) == expected
    assert records == sequential


def test_fastpath_speedup(io_archive):
    """The acceptance gate: the fast path is >= 2x the sequential
    records/s on a re-scanned multi-collector window."""
    import time

    root, start, end, _ = io_archive

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    cold = Archive(root, cache_size=0)
    sequential = best_of(lambda: list(cold.iter_updates(start, end)))

    warm = Archive(root, cache_size=256)
    list(warm.iter_updates(start, end))
    cached = best_of(lambda: list(warm.iter_updates(start, end)))

    assert sequential / cached >= 2.0, (
        f"cached rescan only {sequential / cached:.2f}x sequential")
