"""C1/C2 — §5.2 case studies: the impactful zombie (Core-Backbone) and
the extremely long-lived zombie (HGC)."""

from repro.experiments import build_paper_cases
from repro.experiments.cases import render_case


def test_bench_cases(benchmark, campaign):
    cases = benchmark.pedantic(build_paper_cases, args=(campaign,),
                               iterations=1, rounds=1)
    impactful = cases["impactful"]
    long_lived = cases["long_lived"]
    assert impactful is not None and long_lived is not None
    # C1: many peers, Core-Backbone root cause, days-long.
    assert impactful.peer_router_count >= 10
    assert impactful.suspected_root_cause == 33891
    assert impactful.common_subpath[-4:] == (33891, 25091, 8298, 210312)
    # C2: months-long at AS9304/AS17639/AS142271, HGC root cause.
    assert long_lived.suspected_root_cause == 9304
    assert long_lived.duration_days > 100
    assert {9304, 17639, 142271} <= set(long_lived.peer_durations_days)
    print()
    print(render_case("impactful (2233)", impactful))
    print(render_case("long-lived (163)", long_lived))
