"""F2 — Figure 2: outbreak count/fraction vs detection threshold,
including the §5.1 resurrection uptick after 170 minutes."""

from repro.experiments import build_figure2, render_figure2


def test_bench_figure2(benchmark, campaign):
    points = benchmark.pedantic(
        build_figure2, args=(campaign,),
        kwargs={"thresholds_minutes": tuple(range(90, 181, 10)) + (175,)},
        iterations=1, rounds=1)
    by_threshold = {p.threshold_minutes: p for p in points}
    # Decreasing trend from 90 to 170 minutes...
    assert (by_threshold[90].fraction_excluded
            > by_threshold[170].fraction_excluded)
    # ...noisy peers dominate the all-peers line...
    assert by_threshold[180].outbreaks_all > 3 * by_threshold[180].outbreaks_excluded
    # ...and the resurrection uptick appears after 170 minutes.
    assert (by_threshold[175].outbreaks_excluded
            > by_threshold[170].outbreaks_excluded)
    print()
    print(render_figure2(sorted(points, key=lambda p: p.threshold_minutes)))
