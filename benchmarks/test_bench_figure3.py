"""F3 — Figure 3: CDF of zombie outbreak durations (>= 1 day)."""

from repro.experiments import build_figure3, render_figure3


def test_bench_figure3(benchmark, campaign):
    data = benchmark.pedantic(build_figure3, args=(campaign,),
                              iterations=1, rounds=1)
    # Multi-week zombies exist (the paper's tail reaches 8.5 months; the
    # quick window still scripts the 35-37-day cluster and the ~4.5-month
    # HGC case).
    assert data.durations_excluded
    assert data.max_duration_excluded > 30
    assert data.max_duration_all >= data.max_duration_excluded
    # The 35-37-day step is present in the noisy-excluded line.
    assert any(30 <= d <= 40 for d in data.durations_excluded)
    print()
    print(render_figure3(data))
