"""F4 — Figure 4: timeline of a zombie prefix resurrecting over months."""

from repro.experiments import build_figure4, render_figure4


def test_bench_figure4(benchmark, campaign):
    data = benchmark.pedantic(build_figure4, args=(campaign,),
                              iterations=1, rounds=1)
    assert data is not None
    assert data.segments
    assert data.resurrections
    assert data.total_span_days > 30
    print()
    print(render_figure4(data))
