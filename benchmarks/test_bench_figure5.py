"""F5 — Figure 5: CDF of the zombie emergence rate per
<beacon, peer AS> pair, with vs without double-counting."""

from repro.experiments import build_figure5


def test_bench_figure5(benchmark, replication_2018):
    data = benchmark.pedantic(build_figure5, args=(replication_2018,),
                              iterations=1, rounds=3)
    assert not data.with_dc.cdf_v6.is_empty
    # Dedup can only lower (or keep) the per-pair emergence rates.
    assert data.without_dc.mean_rate_v6 <= data.with_dc.mean_rate_v6 + 1e-9
    assert data.without_dc.mean_rate_v4 <= data.with_dc.mean_rate_v4 + 1e-9
    # Zombies are rare at most pairs (paper: ~19% of pairs see none,
    # median likelihood well below the mean of the noisy peer).
    assert data.without_dc.median_rate < 0.2
    print()
    print(f"zero-fraction={data.without_dc.zero_fraction:.2%} "
          f"mean v4={data.without_dc.mean_rate_v4:.4f} "
          f"v6={data.without_dc.mean_rate_v6:.4f}")
