"""F6 — Figure 6: AS-path length CDFs (normal vs zombie paths)."""

from repro.experiments import build_figure6


def test_bench_figure6(benchmark, replication_2018):
    data = benchmark.pedantic(build_figure6, args=(replication_2018,),
                              iterations=1, rounds=1)
    stats = data.without_dc
    assert not stats.zombie_paths.is_empty
    # Paper: zombie paths are longer — they come from path hunting —
    # and the overwhelming majority differ from the pre-withdrawal path.
    assert stats.zombie_paths.mean() > stats.normal_at_normal_peers.mean()
    assert stats.changed_path_fraction > 0.5
    print()
    print(f"mean lengths: normal(normal)={stats.normal_at_normal_peers.mean():.2f} "
          f"normal(zombie)={stats.normal_at_zombie_peers.mean():.2f} "
          f"zombie={stats.zombie_paths.mean():.2f}; "
          f"changed={stats.changed_path_fraction:.1%}")
