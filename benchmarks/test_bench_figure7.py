"""F7 — Figure 7: CDF of the number of concurrent zombie outbreaks."""

from repro.experiments import build_figure7


def test_bench_figure7(benchmark, replication_2018):
    data = benchmark.pedantic(build_figure7, args=(replication_2018,),
                              iterations=1, rounds=3)
    stats = data.without_dc
    assert not stats.cdf_v6.is_empty
    # Session-level wedges infect every beacon of a family at once, so
    # high concurrency exists (paper: ~27% of IPv4 outbreaks hit all
    # beacons simultaneously).
    assert stats.cdf_v6.xs[-1] >= 10
    print()
    print(f"v6 concurrency: max={stats.cdf_v6.xs[-1]:.0f} "
          f"single={stats.single_fraction_v6:.1%}; "
          f"v4 single={stats.single_fraction_v4:.1%}")
