"""Substrate micro-benchmarks: MRT codec, archive I/O, state
reconstruction, and raw simulator throughput."""

import pytest

from repro.bgp import (
    Aggregator,
    Announcement,
    ASPath,
    PathAttributes,
    UpdateRecord,
    Withdrawal,
)
from repro.core import StateReconstructor
from repro.mrt import (
    decode_bgp4mp,
    decode_mrt_header,
    encode_update_record,
    read_updates_file,
    write_updates_file,
)
from repro.net import Prefix
from repro.simulator import BGPWorld
from repro.topology import TopologyConfig, build_internet
from repro.utils.timeutil import ts


def _make_records(count):
    attrs = PathAttributes(as_path=ASPath.of(25091, 8298, 210312),
                           next_hop="2001:db8::1",
                           aggregator=Aggregator(210312, "10.1.2.3"))
    records = []
    for index in range(count):
        prefix = Prefix(f"2a0d:3dc1:{(index % 4096) + 1:x}::/48")
        if index % 3 == 2:
            message = Withdrawal(prefix)
        else:
            message = Announcement(prefix, attrs)
        records.append(UpdateRecord(1_700_000_000 + index, "rrc00",
                                    "2001:db8::2", 25091, message))
    return records


def test_bench_mrt_encode(benchmark):
    records = _make_records(1000)

    def encode():
        return sum(len(encode_update_record(record)) for record in records)

    total = benchmark(encode)
    assert total > 0


def test_bench_mrt_decode(benchmark):
    records = _make_records(1000)
    blobs = [encode_update_record(record) for record in records]

    def decode():
        out = 0
        for blob in blobs:
            header = decode_mrt_header(blob)
            out += len(decode_bgp4mp(header, blob[12:], "rrc00"))
        return out

    count = benchmark(decode)
    assert count == 1000


def test_bench_archive_roundtrip(benchmark, tmp_path):
    records = _make_records(2000)

    def roundtrip():
        path = tmp_path / "updates.gz"
        write_updates_file(path, records, sort=False)
        return sum(1 for _ in read_updates_file(path, "rrc00"))

    count = benchmark.pedantic(roundtrip, iterations=1, rounds=3)
    assert count == 2000


def test_bench_state_reconstruction(benchmark):
    records = _make_records(5000)

    def reconstruct():
        state = StateReconstructor(records)
        prefix = Prefix("2a0d:3dc1:1::/48")
        return state.state_at(("rrc00", "2001:db8::2"), prefix,
                              1_700_000_000 + 10 ** 6)

    benchmark.pedantic(reconstruct, iterations=1, rounds=3)


def test_bench_simulator_throughput(benchmark):
    """Events per announce/withdraw cycle over a mid-size Internet."""
    topology = build_internet(TopologyConfig(seed=5, n_tier2=20, n_stub=120))

    def cycle():
        world = BGPWorld(topology, seed=6, start_time=0.0)
        origin = world.routers[210312]
        prefix = Prefix("2a0d:3dc1:1145::/48")
        attrs = world.beacon_attributes(210312, 0)
        world.engine.schedule(1.0, lambda: origin.originate(prefix, attrs))
        world.engine.schedule(900.0, lambda: origin.withdraw_origin(prefix))
        world.run_until_idle()
        return world.engine.processed

    events = benchmark.pedantic(cycle, iterations=1, rounds=3)
    assert events > 100
