"""T1 — Table 1: zombie outbreaks with vs without double-counting.

Regenerates the paper's Table 1 rows over the three replication periods
and times the with/without-dedup detection pair.
"""

from repro.experiments import build_table1, render_table1


def test_bench_table1(benchmark, replication_all):
    rows = benchmark.pedantic(build_table1, args=(replication_all,),
                              iterations=1, rounds=3)
    assert len(rows) == 3
    for row in rows:
        assert row.without_dc_v4 <= row.with_dc_v4
        assert row.without_dc_v6 <= row.with_dc_v6
    # The 2018 period shows the strongest IPv4 reduction (paper: 57.8%).
    by_period = {row.period: row for row in rows}
    assert by_period["2018"].reduction_v4 > 0.2
    print()
    print(render_table1(rows))
