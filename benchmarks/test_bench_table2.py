"""T2 — Table 2: previous-study ("Study") counts vs our estimates."""

from repro.experiments import build_table2, render_table2


def test_bench_table2(benchmark, replication_all):
    rows = benchmark.pedantic(build_table2, args=(replication_all,),
                              iterations=1, rounds=3)
    assert len(rows) == 3
    for row in rows:
        # The legacy pipeline's numbers must differ from ours in at
        # least one family (the paper's headline discrepancy).
        assert (row.study_v4, row.study_v6) != (row.with_dc_v4, row.with_dc_v6)
    print()
    print(render_table2(rows))
