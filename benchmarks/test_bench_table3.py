"""T3 — Table 3: missing zombie routes/outbreaks in both directions."""

from repro.experiments import build_table3, render_table3


def test_bench_table3(benchmark, replication_all):
    result = benchmark.pedantic(build_table3, args=(replication_all,),
                                iterations=1, rounds=3)
    ours_missing = result.ours_missing_routes_v4 + result.ours_missing_routes_v6
    study_missing = (result.study_missing_routes_v4
                     + result.study_missing_routes_v6)
    # Paper Table 3: each side misses routes the other reports, and our
    # (interval-isolated) side misses more.
    assert ours_missing > 0
    assert study_missing > 0
    assert ours_missing > study_missing
    print()
    print(render_table3(result))
