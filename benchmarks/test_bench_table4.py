"""T4 — Table 4: the noisy peer AS16347's zombie likelihood."""

from repro.experiments import build_table4, render_table4


def test_bench_table4(benchmark, replication_2018):
    result = benchmark.pedantic(build_table4, args=(replication_2018,),
                                iterations=1, rounds=3)
    # Paper: IPv6 likelihood ~0.43 in both modes (dedup barely moves it);
    # IPv4 is far lower and collapses under dedup.
    assert result.with_dc_mean_v6 > 0.25
    assert result.without_dc_mean_v6 > 0.8 * result.with_dc_mean_v6
    assert result.with_dc_mean_v4 < result.with_dc_mean_v6
    assert result.without_dc_mean_v4 <= result.with_dc_mean_v4
    print()
    print(render_table4(result))
