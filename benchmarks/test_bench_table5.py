"""T5 — Table 5: the 2024 campaign's three noisy peer routers."""

from repro.experiments import build_table5, render_table5


def test_bench_table5(benchmark, campaign):
    rows = benchmark.pedantic(build_table5, args=(campaign,),
                              iterations=1, rounds=3)
    assert len(rows) == 3
    by_address = {row.peer_address: row for row in rows}
    # Paper: the two AS211509 routers report identical counts; all three
    # stay elevated even at the 3-hour threshold.
    assert (by_address["176.119.234.201"].zombies_90min
            == by_address["2001:678:3f4:5::1"].zombies_90min)
    for row in rows:
        assert row.percent_90min > 0.04
        assert row.percent_180min > 0.03
    print()
    print(render_table5(rows))
