#!/usr/bin/env python
"""Reproduce the paper's §5 headline results from the 2024 beacon
campaign: the Fig. 2 threshold sweep (with the resurrection uptick),
Table 5's noisy peers, the Fig. 3 duration tail, the Fig. 4 resurrection
timeline, and both §5.2 case studies.

Run:  python examples/beacon_campaign.py [--full]

``--full`` simulates the complete 18-day campaign at paper scale
(a few minutes); the default quick preset takes ~10 seconds.
"""

import sys
import time

from repro.experiments import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_paper_cases,
    build_table5,
    campaign_run,
    render_figure2,
    render_figure3,
    render_figure4,
    render_table5,
)
from repro.experiments.cases import render_case


def main() -> None:
    full = "--full" in sys.argv
    started = time.time()
    run = campaign_run(quick=not full)
    print(f"campaign simulated in {time.time() - started:.1f}s: "
          f"{run.announcement_count} beacon announcements, "
          f"{len(run.records)} RIS records, {len(run.peers)} peer routers")

    print()
    print(render_figure2(build_figure2(
        run, thresholds_minutes=(90, 100, 120, 140, 160, 170, 175, 180))))

    print()
    print(render_table5(build_table5(run)))

    print()
    print(render_figure3(build_figure3(run)))

    print()
    print(render_figure4(build_figure4(run)))

    print()
    cases = build_paper_cases(run)
    print(render_case("impactful zombie  (paper §5.2)", cases["impactful"]))
    print(render_case("long-lived zombie (paper §5.2)", cases["long_lived"]))


if __name__ == "__main__":
    main()
