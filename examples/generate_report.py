#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run and print a
paper-vs-measured report (the source of EXPERIMENTS.md).

Run:  python examples/generate_report.py [--quick] [--days N]

Default: the full 18-day campaign at paper scale plus three replication
periods truncated to N days (default 6) — several minutes of CPU.
Equivalent to ``python -m repro report``.
"""

import sys

from repro.reporting import generate


def main() -> None:
    quick = "--quick" in sys.argv
    days = 6
    if "--days" in sys.argv:
        days = int(sys.argv[sys.argv.index("--days") + 1])
    generate(quick=quick, days=days)


if __name__ == "__main__":
    main()
