#!/usr/bin/env python
"""Quickstart: create a BGP zombie and detect it.

Builds a five-AS Internet, announces and withdraws a beacon prefix,
injects a withdrawal suppression on one link (the canonical zombie
mechanism), and runs the paper's revised detector over the recorded
RIS stream.

Run:  python examples/quickstart.py
"""

from repro.beacons import BeaconInterval
from repro.core import DetectorConfig, ZombieDetector, infer_root_cause
from repro.net import Prefix
from repro.ris import RISPeer
from repro.simulator import BGPWorld, FaultPlan, WithdrawalSuppression
from repro.topology import ASTopology
from repro.utils.timeutil import MINUTE, ts


def build_topology() -> ASTopology:
    """origin 210312 <- 8298 <- 25091 <- 33891 <- two stub peers."""
    topo = ASTopology()
    for asn in (210312, 8298, 25091, 33891, 64801, 64802):
        topo.add_as(asn)
    topo.add_provider_customer(8298, 210312)
    topo.add_provider_customer(25091, 8298)
    topo.add_provider_customer(33891, 25091)
    topo.add_provider_customer(33891, 64801)
    topo.add_provider_customer(33891, 64802)
    return topo


def main() -> None:
    announce_at = ts(2024, 6, 18, 22, 30)
    withdraw_at = announce_at + 15 * MINUTE
    prefix = Prefix("2a0d:3dc1:2233::/48")

    # The fault: AS25091 never propagates the withdrawal to AS33891.
    plan = FaultPlan([WithdrawalSuppression(
        src=25091, dst=33891, start=withdraw_at - 60, end=withdraw_at + 3600)])

    world = BGPWorld(build_topology(), seed=42, fault_plan=plan,
                     start_time=announce_at - 3600)

    # Two RIS peer routers feed collector rrc00.
    for asn in (64801, 64802):
        world.attach_tap(RISPeer("rrc00", f"2001:db8:{asn:x}::1", asn))

    # Drive the beacon: announce, then withdraw 15 minutes later.
    origin = world.routers[210312]
    attrs = world.beacon_attributes(210312, announce_at)
    world.engine.schedule(announce_at, lambda: origin.originate(prefix, attrs))
    world.engine.schedule(withdraw_at, lambda: origin.withdraw_origin(prefix))
    world.run_until(withdraw_at + 4 * 3600)

    # Detect: is the prefix still present at any peer 90 minutes after
    # the withdrawal?
    interval = BeaconInterval(prefix=prefix, announce_time=announce_at,
                              withdraw_time=withdraw_at, origin_asn=210312)
    detector = ZombieDetector(DetectorConfig(threshold=90 * MINUTE))
    result = detector.detect(world.sorted_records(), [interval])

    print(f"beacon announcements observed: {result.visible_count}")
    print(f"zombie outbreaks detected:     {result.outbreak_count}")
    for outbreak in result.outbreaks:
        print(f"\n{outbreak}")
        for route in outbreak.routes:
            print(f"  {route}")
            print(f"    stuck path: {route.zombie_path}")
        subpath = " ".join(str(asn) for asn in outbreak.common_subpath())
        print(f"  common subpath: {subpath}")
        inference = infer_root_cause(outbreak, origin_asn=210312)
        print(f"  suspected root cause: AS{inference.suspect}")


if __name__ == "__main__":
    main()
