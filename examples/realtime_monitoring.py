#!/usr/bin/env python
"""Live zombie monitoring (the paper's §6 operator platform).

Replays a simulated campaign's RIS stream *incrementally* through the
streaming detector and the resurrection monitor, fanning alerts out to
a counter and a JSON-lines feed — the architecture a real deployment
would run against live BGPStream.

Run:  python examples/realtime_monitoring.py [alerts.jsonl]
"""

import io
import sys

from repro.experiments import campaign_run
from repro.realtime import (
    AlertDispatcher,
    CallbackSink,
    CountingSink,
    JsonLinesSink,
    ResurrectionMonitor,
    StreamingDetector,
)
from repro.utils.timeutil import MINUTE, to_iso


def main() -> None:
    run = campaign_run(quick=True)
    print(f"replaying {len(run.records)} records from "
          f"{run.announcement_count} beacon announcements...\n")

    detector = StreamingDetector(threshold=90 * MINUTE,
                                 excluded_peers=run.noisy_truth)
    detector.add_intervals(run.intervals)
    # The monitor knows the beacon schedule, so scheduled
    # re-announcements (e.g. approach-B collision slots) are not
    # mistaken for resurrections.
    monitor = ResurrectionMonitor(
        run.final_withdrawals, quiet=120 * MINUTE,
        scheduled_announcements=[(iv.prefix, iv.announce_time + 60)
                                 for iv in run.intervals],
        schedule_tolerance=10 * MINUTE)

    counter = CountingSink()
    feed = JsonLinesSink(open(sys.argv[1], "a") if len(sys.argv) > 1
                         else io.StringIO())
    shown = [0]

    def show(alert):
        if shown[0] < 8:
            print(f"  {alert}")
            shown[0] += 1

    dispatcher = AlertDispatcher([counter, feed, CallbackSink(show)])

    for record in run.records:
        for alert in detector.observe(record):
            dispatcher.emit(alert)
        resurrection = monitor.observe(record)
        if resurrection is not None:
            dispatcher.emit(resurrection)
    for alert in detector.flush():
        dispatcher.emit(alert)
    dispatcher.close()

    print(f"\nalerts emitted: {counter.total}")
    for kind, count in sorted(counter.by_kind.items()):
        print(f"  {kind}: {count}")
    top = sorted(counter.by_prefix.items(), key=lambda kv: -kv[1])[:5]
    print("most alerted prefixes:")
    for prefix, count in top:
        print(f"  {prefix}: {count}")


if __name__ == "__main__":
    main()
