#!/usr/bin/env python
"""Reproduce the paper's §3 replication of Fontugne et al.: Tables 1-4
and the Appendix B figures (emergence rate, path lengths, concurrency).

Run:  python examples/replication_study.py [days-per-period]

The paper's periods span 40-90 days; the default reproduces each
period's first 5 days (every ratio in the tables is scale-free).
"""

import sys
import time

from repro.experiments import (
    build_figure5,
    build_figure6,
    build_figure7,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    replication_run,
    replication_runs,
)


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    started = time.time()
    runs = replication_runs(days=days)
    print(f"three periods x {days} days simulated in "
          f"{time.time() - started:.1f}s")

    print()
    print(render_table1(build_table1(runs)))
    print()
    print(render_table2(build_table2(runs)))
    print()
    print(render_table3(build_table3(runs)))

    run_2018 = replication_run("2018", days=days)
    print()
    print(render_table4(build_table4(run_2018)))

    print()
    fig5 = build_figure5(run_2018)
    print("Figure 5 (emergence rate, no double-counting): "
          f"zero-pairs={fig5.without_dc.zero_fraction:.1%}, "
          f"mean v4={fig5.without_dc.mean_rate_v4:.4f}, "
          f"v6={fig5.without_dc.mean_rate_v6:.4f}")

    fig6 = build_figure6(run_2018)
    stats = fig6.without_dc
    print("Figure 6 (AS path lengths): "
          f"normal(normal)={stats.normal_at_normal_peers.mean():.2f}, "
          f"normal(zombie)="
          f"{stats.normal_at_zombie_peers.mean():.2f}, "
          f"zombie={stats.zombie_paths.mean():.2f}, "
          f"changed-path={stats.changed_path_fraction:.1%}")

    fig7 = build_figure7(run_2018)
    print("Figure 7 (concurrent outbreaks): "
          f"v6 single={fig7.without_dc.single_fraction_v6:.1%}, "
          f"v6 max={fig7.without_dc.cdf_v6.xs[-1]:.0f}, "
          f"v4 single={fig7.without_dc.single_fraction_v4:.1%}")


if __name__ == "__main__":
    main()
