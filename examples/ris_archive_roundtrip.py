#!/usr/bin/env python
"""Write a RIPE-RIS-layout MRT archive to disk, read it back through the
pybgpstream-compatible facade, and run zombie detection on it.

This demonstrates that the whole pipeline operates on the *byte-level*
RIS raw-data format: point :class:`repro.ris.Archive` at a mirror of
``https://data.ris.ripe.net`` and the same code runs on real data.

Run:  python examples/ris_archive_roundtrip.py [archive-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.beacons import RISBeaconSchedule, ris_beacons_2018
from repro.bgpstream import BGPStream
from repro.core import DetectorConfig, ZombieDetector
from repro.bgp.messages import StateRecord, UpdateRecord
from repro.ris import Archive, ArchiveWriter, RISPeer
from repro.simulator import BGPWorld, FaultPlan, WithdrawalSuppression
from repro.simulator.ribgen import generate_rib_dumps
from repro.topology import TopologyConfig, build_internet
from repro.utils.timeutil import HOUR, ts


def simulate(start: int, end: int):
    """A small world running the real RIS beacon schedule for one day,
    with one zombie-producing fault."""
    topology = build_internet(TopologyConfig(seed=7, n_tier2=8, n_stub=30))
    topology.add_as(12654)
    topology.add_provider_customer(1299, 12654)
    topology.add_provider_customer(3356, 12654)

    schedule = RISBeaconSchedule(ris_beacons_2018()[:4], origin_asn=12654)
    beacon_prefix = schedule.beacons[0].prefix
    fault = WithdrawalSuppression(
        src=3356, dst=50001, start=start, end=end,
        prefixes=frozenset({beacon_prefix}))
    world = BGPWorld(topology, seed=9, fault_plan=FaultPlan([fault]),
                     start_time=start - HOUR)
    world.attach_tap(RISPeer("rrc00", "2001:db8:50::1", 50001))
    world.attach_tap(RISPeer("rrc01", "2001:db8:51::1", 50002))
    records = world.run_beacon_schedule(schedule, start, end)
    return schedule, records, beacon_prefix


def main() -> None:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="ris-archive-"))
    start, end = ts(2018, 7, 19), ts(2018, 7, 20)

    schedule, records, beacon_prefix = simulate(start, end)

    # 1. Write the archive exactly as RIS lays it out on disk.
    writer = ArchiveWriter(root)
    for collector in ("rrc00", "rrc01"):
        writer.write_updates(collector,
                             [r for r in records if r.collector == collector])
    for dump in generate_rib_dumps(records, start, end):
        writer.write_rib(dump)
    files = sorted(p.relative_to(root) for p in root.rglob("*.gz"))
    print(f"archive written under {root}: {len(files)} files, e.g.")
    for path in files[:3]:
        print(f"  {path}")

    # 2. Read it back with the pybgpstream-style interface.
    stream = BGPStream(Archive(root), from_time=start, until_time=end,
                       filter=f"prefix exact {beacon_prefix}")
    elems = list(stream)
    print(f"\nstream elems for beacon {beacon_prefix}: {len(elems)} "
          f"({sum(1 for e in elems if e.type == 'W')} withdrawals)")

    # 3. Run the paper's detector on the decoded archive.
    archive_records = list(Archive(root).iter_updates(start, end))
    intervals = list(schedule.intervals(start, end))
    result = ZombieDetector(DetectorConfig()).detect(archive_records, intervals)
    print(f"\nvisible beacon announcements: {result.visible_count}")
    print(f"zombie outbreaks from the on-disk archive: {result.outbreak_count}")
    for outbreak in result.outbreaks[:3]:
        print(f"  {outbreak}")


if __name__ == "__main__":
    main()
