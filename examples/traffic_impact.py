#!/usr/bin/env python
"""Reproduce the paper's Fig. 1: the data-plane impact of a zombie.

AS1 sells its covering /32 to AS2 and withdraws the /48 it used to
announce; the withdrawal never fully propagates, leaving a zombie /48 in
a dominant AS.  Longest-prefix matching then pulls traffic for the /48
along the stale route — a forwarding loop and a partial outage for the
new owner, exactly as Fig. 1 narrates.

Run:  python examples/traffic_impact.py
"""

from repro.dataplane import HopOutcome, assess_impact, fig1_scenario_outcomes
from repro.net import Prefix
from repro.simulator import BGPWorld, FaultPlan, WithdrawalSuppression
from repro.topology import ASTopology

AS1, ASX, AS3, AS2, ASY = 65001, 65002, 65003, 65004, 65005


def build_world():
    topo = ASTopology()
    for asn in (AS1, ASX, AS3, AS2, ASY):
        topo.add_as(asn)
    topo.add_provider_customer(ASX, AS1)   # AS1's upstream
    topo.add_provider_customer(AS3, ASX)   # dominant AS3 above ASX
    topo.add_provider_customer(AS3, AS2)   # the new /32 owner
    topo.add_provider_customer(AS3, ASY)   # the user's network
    # Step 2-3: ASX fails to propagate the withdrawal to AS3.
    plan = FaultPlan([WithdrawalSuppression(src=ASX, dst=AS3,
                                            start=0, end=10 ** 9)])
    return BGPWorld(topo, seed=1, fault_plan=plan)


def main() -> None:
    covering = Prefix("2001:db8::/32")
    covered = Prefix("2001:db8::/48")
    world = build_world()

    r1, r2 = world.routers[AS1], world.routers[AS2]
    world.engine.schedule(1.0, lambda: r1.originate(
        covered, world.beacon_attributes(AS1, 0)))
    # Step 1: AS1 stops advertising the /48...
    world.engine.schedule(600.0, lambda: r1.withdraw_origin(covered))
    # Step 4: ...and AS2 starts announcing the /32.
    world.engine.schedule(900.0, lambda: r2.originate(
        covering, world.beacon_attributes(AS2, 0)))
    world.run_until(7200)

    print(f"zombie /48 still in AS{AS3}'s table: "
          f"{world.routers[AS3].has_route(covered)}")

    # Steps 6-7: ASY sends traffic to 2001:db8::1.
    outcomes = fig1_scenario_outcomes(world, covering, covered, [ASY, AS2])
    for source, walk in outcomes.items():
        print(f"\ntraffic from AS{source}: {walk}")

    report = assess_impact(world, covered)
    print(f"\nimpact across all {report.total} ASes: "
          f"{report.count(HopOutcome.LOOPED)} looped, "
          f"{report.count(HopOutcome.BLACKHOLED)} blackholed, "
          f"{report.count(HopOutcome.DELIVERED)} delivered "
          f"({report.affected_fraction:.0%} actively misrouted)")


if __name__ == "__main__":
    main()
