#!/usr/bin/env python
"""Measure the federated scatter-gather tier and emit
``BENCH_federation.json``.

Builds one event store, serves it monolithically (the PR-7 asyncio
engine), then partitions the same history over in-process shard fleets
of 1, 3, and 6 workers behind a ``FederatedObservatoryServer`` and
times ``GET /outbreaks`` round-trips against every topology.  Merged
answers are asserted byte-identical to the monolithic server before
any timing is trusted.

A final leg measures graceful degradation rather than speed: a 3-shard
federation where one "shard" is a blackhole — a listening socket that
completes the TCP handshake (kernel backlog) but never accepts or
answers, the worst kind of failure because connect errors never fire.
Every request must still come back within the per-shard deadline,
carry the ``X-Observatory-Partial`` header naming the missing shard,
and contain exactly the two live shards' rows.  The acceptance bar is
that the deadline bounds p99: degraded p99 <= deadline + margin.

Usage::

    PYTHONPATH=src python scripts/bench_federation.py [--events 6000]
        [--requests 150] [--quick] [--out BENCH_federation.json]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import socket
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import (  # noqa: E402
    AsyncObservatoryServer,
    EventStore,
    FederatedObservatoryServer,
    PARTIAL_HEADER,
    ShardWorker,
    partition_store,
    shard_for,
)


def build_store(root: Path, events: int) -> EventStore:
    """A deterministic store mixing the three listing kinds over enough
    prefixes that every shard of a 6-way split owns a real slice."""
    rng = random.Random(11)
    store = EventStore(root, segment_max_records=2048)
    for i in range(events):
        kind = ("outbreak", "lifespan", "resurrection")[i % 3]
        prefix = f"10.{rng.randrange(192)}.{rng.randrange(8)}.0/24"
        payload = {"prefix": prefix, "peers": rng.randrange(1, 40)}
        if kind == "lifespan":
            payload.update(segment_count=rng.randrange(0, 4),
                           resurrection=bool(rng.randrange(2)),
                           total_seconds=float(rng.randrange(60, 7200)))
        store.append(kind, 1_700_000_000 + i * 30, payload)
    store.sync()
    return store


def percentile(latencies: list, fraction: float) -> float:
    ordered = sorted(latencies)
    return ordered[int(fraction * (len(ordered) - 1))]


def time_requests(url: str, count: int, headers=None) -> dict:
    """Per-request wall-clock over ``count`` round-trips; the last
    response body/status/headers ride along for verification."""
    latencies = []
    body, status, resp_headers = None, None, {}
    for _ in range(count):
        request = urllib.request.Request(url, headers=headers or {})
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(request) as response:
                body = response.read()
                status = response.status
                resp_headers = dict(response.headers)
        except urllib.error.HTTPError as exc:
            status = exc.code
            resp_headers = dict(exc.headers)
            body = exc.read()
        latencies.append(time.perf_counter() - t0)
    total = sum(latencies)
    return {
        "requests": count,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "mean_ms": round(total / count * 1e3, 3),
        "requests_per_second": round(count / total, 1),
        "_body": body,
        "_status": status,
        "_headers": resp_headers,
    }


def strip(leg: dict) -> dict:
    return {k: v for k, v in leg.items() if not k.startswith("_")}


def federation_leg(tmp: Path, source: Path, shards: int,
                   requests: int) -> tuple[dict, bytes]:
    """Partition the store ``shards`` ways, serve it federated, and
    time ``/outbreaks`` against the merged tier."""
    roots = partition_store(source, tmp / f"fleet-{shards}", shards)
    workers = [ShardWorker(source, shard_root, index, shards).start()
               for index, shard_root in enumerate(roots)]
    fed = FederatedObservatoryServer(
        [worker.url for worker in workers]).start()
    try:
        leg = time_requests(fed.url + "/outbreaks", requests)
        return leg, leg["_body"]
    finally:
        fed.stop()
        for worker in workers:
            worker.stop()


def blackhole() -> tuple[socket.socket, str]:
    """A TCP endpoint that handshakes (kernel backlog) but never
    accepts or answers — the failure mode connect retries can't see."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    return sock, f"http://127.0.0.1:{sock.getsockname()[1]}"


def degraded_leg(tmp: Path, source: Path, requests: int,
                 deadline: float) -> dict:
    """3-shard federation with shard-01 blackholed: answers must be
    partial, name the missing shard, and stay inside the deadline."""
    roots = partition_store(source, tmp / "fleet-degraded", 3)
    workers = {index: ShardWorker(source, roots[index], index, 3).start()
               for index in (0, 2)}
    hole, hole_url = blackhole()
    urls = [workers[0].url, hole_url, workers[2].url]
    fed = FederatedObservatoryServer(
        urls, deadline=deadline, retries=0, breaker_threshold=10 ** 9,
    ).start()
    try:
        leg = time_requests(fed.url + "/outbreaks", requests)
        assert leg["_status"] == 200, f"degraded status {leg['_status']}"
        assert leg["_headers"].get(PARTIAL_HEADER) == "shard-01", \
            f"missing partial header: {leg['_headers']}"
        rows = json.loads(leg["_body"])["outbreaks"]
        assert rows and all(shard_for(row["prefix"], 3) != 1
                            for row in rows), \
            "degraded answer leaked (or lost) shard rows"
        return leg
    finally:
        fed.stop()
        for worker in workers.values():
            worker.stop()
        hole.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=6000,
                        help="events in the source store")
    parser.add_argument("--requests", type=int, default=150,
                        help="round-trips per topology leg (the degraded "
                             "leg uses a quarter of this)")
    parser.add_argument("--deadline", type=float, default=0.5,
                        help="per-shard deadline for the degraded leg "
                             "(seconds)")
    parser.add_argument("--quick", action="store_true",
                        help="small store and few requests (CI smoke)")
    parser.add_argument("--out", default="BENCH_federation.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 900)
        args.requests = min(args.requests, 25)
        args.deadline = min(args.deadline, 0.3)

    results: dict = {"host": {"cpu_count": os.cpu_count()},
                     "quick": args.quick, "legs": {}}
    with tempfile.TemporaryDirectory(prefix="bench_federation_") as tmpdir:
        tmp = Path(tmpdir)
        store = build_store(tmp / "store", args.events)
        stats = store.stats()
        results["workload"] = {
            "events_total": stats["next_seq"],
            "outbreak_rows": stats["by_kind"]["outbreak"],
            "segments": stats["segments"],
        }
        print(f"store: {stats['next_seq']} events, "
              f"{stats['by_kind']['outbreak']} outbreak rows")

        mono = AsyncObservatoryServer(
            EventStore(tmp / "store", readonly=True)).start()
        try:
            baseline = time_requests(mono.url + "/outbreaks", args.requests)
        finally:
            mono.stop()
        print(f"monolithic: p50 {baseline['p50_ms']:8.3f} ms  "
              f"p99 {baseline['p99_ms']:8.3f} ms  "
              f"{baseline['requests_per_second']:7.1f} req/s")
        results["legs"]["monolithic"] = strip(baseline)

        for shards in (1, 3, 6):
            leg, body = federation_leg(tmp, tmp / "store", shards,
                                       args.requests)
            assert body == baseline["_body"], \
                f"{shards}-shard merged body differs from the monolith"
            print(f" {shards}-shard:   p50 {leg['p50_ms']:8.3f} ms  "
                  f"p99 {leg['p99_ms']:8.3f} ms  "
                  f"{leg['requests_per_second']:7.1f} req/s")
            results["legs"][f"federated_{shards}"] = strip(leg)

        degraded_requests = max(8, args.requests // 4)
        degraded = degraded_leg(tmp, tmp / "store", degraded_requests,
                                args.deadline)
        print(f"  degraded: p50 {degraded['p50_ms']:8.3f} ms  "
              f"p99 {degraded['p99_ms']:8.3f} ms  "
              f"(deadline {args.deadline * 1e3:.0f} ms, blackholed "
              f"shard-01)")
        results["legs"]["degraded_blackhole"] = strip(degraded)

    fed3 = results["legs"]["federated_3"]
    margin_ms = 250.0  # scheduling slack on loaded CI hosts
    bound_ms = args.deadline * 1e3 + margin_ms
    results["degraded"] = {
        "deadline_ms": args.deadline * 1e3,
        "margin_ms": margin_ms,
        "p99_bound_ms": bound_ms,
        "deadline_bounds_p99":
            results["legs"]["degraded_blackhole"]["p99_ms"] <= bound_ms,
    }
    results["overhead"] = {
        "federated_3_vs_monolithic_p50": round(
            fed3["p50_ms"] / baseline["p50_ms"], 2),
        "federated_6_vs_monolithic_p50": round(
            results["legs"]["federated_6"]["p50_ms"] / baseline["p50_ms"],
            2),
    }
    print(f"overhead (p50): 3-shard "
          f"{results['overhead']['federated_3_vs_monolithic_p50']}x, "
          f"6-shard "
          f"{results['overhead']['federated_6_vs_monolithic_p50']}x; "
          f"degraded p99 bounded: "
          f"{results['degraded']['deadline_bounds_p99']}")
    if not results["degraded"]["deadline_bounds_p99"]:
        print("FAIL: blackholed-shard p99 exceeded the deadline bound",
              file=sys.stderr)
        return 1

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
