#!/usr/bin/env python
"""Measure the pre-outbreak forensics lookup and emit
``BENCH_forensics.json``.

The claim under test (DESIGN.md §16): ``GET /outbreaks/<id>/forensics``
is O(outbreak), answered from the stored snapshot via the materialized
views — so its latency must stay flat as the event store grows.  The
bench builds two stores holding the *same* outbreak/forensics pairs,
one padded with 10× the bulk history of the other, serves each on the
asyncio engine, and times the identical lookup against both.  The
acceptance bar is p50(10×) <= 2 × p50(1×).

A third leg times the ETag revalidation path (``If-None-Match`` →
``304``) on the large store, and a fourth the no-views fallback (the
per-prefix pushdown scan a cold server uses) for contrast.

Usage::

    PYTHONPATH=src python scripts/bench_forensics.py [--pairs 12]
        [--padding 2000] [--requests 200] [--quick]
        [--out BENCH_forensics.json]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import (  # noqa: E402
    AsyncObservatoryServer,
    EventStore,
    outbreak_id,
)

FLAT_BOUND = 2.0  # p50 may not grow past this factor over a 10× store


def build_store(root: Path, pairs: int, padding: int) -> list[str]:
    """A store with ``pairs`` outbreak+forensics pairs buried in
    ``padding`` bulk events; returns the outbreak ids."""
    rng = random.Random(23)
    store = EventStore(root, segment_max_records=2048)
    ids = []
    interleave = max(1, padding // max(1, pairs))
    appended = 0
    while appended < padding or len(ids) < pairs:
        for _ in range(interleave):
            if appended >= padding:
                break
            prefix = f"10.{rng.randrange(192)}.{rng.randrange(8)}.0/24"
            store.append("lifespan", 1_700_000_000 + appended * 30,
                         {"prefix": prefix,
                          "segment_count": rng.randrange(0, 4),
                          "resurrection": bool(rng.randrange(2)),
                          "total_seconds": float(rng.randrange(60, 7200))})
            appended += 1
        if len(ids) < pairs:
            index = len(ids)
            prefix = f"192.0.{index}.0/24"
            announce = 1_700_000_000 + index * 3600
            payload = {"prefix": prefix, "announce_time": announce,
                       "collector": "rrc00",
                       "peer_address": f"2001:db8::{index + 1:x}"}
            identifier = outbreak_id(payload)
            ids.append(identifier)
            detected = announce + 7200
            store.append("outbreak", detected,
                         dict(payload, id=identifier, peer_asn=3,
                              withdraw_time=announce + 900,
                              detected_at=detected, path="3 2 1",
                              stale=True))
            store.append("forensics", detected, {
                "outbreak_id": identifier, "prefix": prefix,
                "origin_asn": 1, "collector": "rrc00",
                "peer_address": payload["peer_address"], "peer_asn": 3,
                "announce_time": announce,
                "withdraw_time": announce + 900, "detected_at": detected,
                "peers": [{"prefix": prefix, "collector": "rrc00",
                           "peer_address": f"2001:db8::{peer:x}",
                           "peer_asn": 3 + peer, "path": f"{3 + peer} 2 1",
                           "announced_at": announce, "withdrawn_at": None,
                           "aggregator_asn": None,
                           "aggregator_address": None}
                          for peer in range(1, 9)]})
    store.sync()
    store.close()
    return ids


def percentile(latencies: list, fraction: float) -> float:
    ordered = sorted(latencies)
    return ordered[int(fraction * (len(ordered) - 1))]


def time_requests(url: str, count: int, headers=None) -> dict:
    latencies = []
    body, status = None, None
    resp_headers: dict = {}
    for _ in range(count):
        request = urllib.request.Request(url, headers=headers or {})
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(request) as response:
                body = response.read()
                status = response.status
                resp_headers = dict(response.headers)
        except urllib.error.HTTPError as exc:
            status = exc.code
            resp_headers = dict(exc.headers)
            body = exc.read()
        latencies.append(time.perf_counter() - t0)
    total = sum(latencies)
    return {
        "requests": count,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "mean_ms": round(total / count * 1e3, 3),
        "requests_per_second": round(count / total, 1),
        "_body": body,
        "_status": status,
        "_headers": resp_headers,
    }


def strip(leg: dict) -> dict:
    return {k: v for k, v in leg.items() if not k.startswith("_")}


def lookup_leg(root: Path, identifier: str, requests: int,
               use_view: bool = True, if_none_match: str = None) -> dict:
    server = AsyncObservatoryServer(
        EventStore(root, readonly=True), use_view=use_view).start()
    try:
        path = "/outbreaks/" + urllib.parse.quote(identifier, safe="") \
            + "/forensics"
        headers = {"If-None-Match": if_none_match} if if_none_match else {}
        leg = time_requests(server.url + path, requests, headers)
        return leg
    finally:
        server.stop()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pairs", type=int, default=12)
    parser.add_argument("--padding", type=int, default=2000,
                        help="bulk events in the small store (×10 in "
                             "the large one)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", default="BENCH_forensics.json")
    args = parser.parse_args()
    if args.quick:
        args.padding = min(args.padding, 400)
        args.requests = min(args.requests, 60)

    import tempfile
    with tempfile.TemporaryDirectory(prefix="bench-forensics-") as tmp_name:
        tmp = Path(tmp_name)
        ids_small = build_store(tmp / "small", args.pairs, args.padding)
        ids_large = build_store(tmp / "large", args.pairs,
                                args.padding * 10)
        assert ids_small == ids_large  # same pairs, different bulk
        victim = ids_small[len(ids_small) // 2]

        small = lookup_leg(tmp / "small", victim, args.requests)
        large = lookup_leg(tmp / "large", victim, args.requests)
        for leg in (small, large):
            assert leg["_status"] == 200, leg["_status"]
        body_small = json.loads(small["_body"])
        body_large = json.loads(large["_body"])
        assert body_small["outbreak_id"] == victim
        # Identical snapshot content: only store coordinates may differ.
        for volatile in ("snapshot_seq", "snapshot_time"):
            body_small.pop(volatile), body_large.pop(volatile)
        assert body_small == body_large

        revalidate = lookup_leg(tmp / "large", victim, args.requests,
                                if_none_match=large["_headers"]["ETag"])
        assert revalidate["_status"] == 304
        no_view = lookup_leg(tmp / "large", victim, args.requests,
                             use_view=False)
        assert no_view["_status"] == 200

        ratio = large["p50_ms"] / max(small["p50_ms"], 1e-6)
        flat = ratio <= FLAT_BOUND
        report = {
            "host": {"cpu_count": os.cpu_count()},
            "quick": args.quick,
            "legs": {
                "lookup_1x": strip(small),
                "lookup_10x": strip(large),
                "revalidate_304_10x": strip(revalidate),
                "lookup_10x_no_view": strip(no_view),
            },
            "workload": {
                "outbreak_pairs": args.pairs,
                "padding_events_1x": args.padding,
                "padding_events_10x": args.padding * 10,
                "peers_per_snapshot": 8,
            },
            "flat": {"p50_ratio_10x_over_1x": round(ratio, 3),
                     "bound": FLAT_BOUND, "ok": flat},
        }
        Path(args.out).write_text(json.dumps(report, indent=1,
                                             sort_keys=True) + "\n")
        print(json.dumps(report["flat"], sort_keys=True))
        print(f"wrote {args.out}")
        if not flat:
            print(f"FAIL: lookup p50 grew {ratio:.2f}x over a 10x store "
                  f"(bound {FLAT_BOUND}x)", file=sys.stderr)
            return 1
        return 0


if __name__ == "__main__":
    sys.exit(main())
