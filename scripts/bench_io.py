#!/usr/bin/env python
"""Measure archive read-path throughput and emit ``BENCH_archive_io.json``.

Writes the deterministic synthetic workload
(:func:`repro.experiments.synthetic_update_records`) to a temporary
on-disk archive, then times four read legs over the same window:

* ``sequential`` — full decode, no cache, no index skipping disabled legs
* ``parallel``   — ``Archive(root, workers=N)`` process-pool decode
* ``cached``     — re-scan served by the decoded-file LRU cache
* ``pushdown``   — selective peer+type filter pushed below decode,
  with sidecar indexes skipping whole files

Usage::

    PYTHONPATH=src python scripts/bench_io.py [--rounds 3] [--workers 2]
        [--out BENCH_archive_io.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bgpstream import compile_filter  # noqa: E402
from repro.experiments import (  # noqa: E402
    records_window,
    synthetic_update_records,
    write_records_archive,
)
from repro.ris import Archive  # noqa: E402

PUSHDOWN_FILTER = "peer 64500 and type announcements"


def best_of(fn, rounds: int) -> tuple[float, int]:
    """(best wall-clock seconds, record count) over ``rounds`` runs."""
    best = float("inf")
    count = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        count = len(fn())
        best = min(best, time.perf_counter() - t0)
    return best, count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per leg; best is kept")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for the parallel leg")
    parser.add_argument("--out", default="BENCH_archive_io.json")
    args = parser.parse_args(argv)

    records = synthetic_update_records()
    start, end = records_window(records)
    results: dict = {
        "workload": {
            "records": len(records),
            "collectors": sorted({r.collector for r in records}),
            "window_seconds": end - start,
        },
        "host": {"cpu_count": os.cpu_count()},
        "rounds": args.rounds,
        "legs": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_archive_io_") as tmp:
        root = Path(tmp) / "archive"
        files = write_records_archive(records, root)
        results["workload"]["files"] = sum(len(v) for v in files.values())

        def leg(name: str, fn, rounds=args.rounds, note: str = "") -> None:
            seconds, count = best_of(fn, rounds)
            entry = {
                "seconds": round(seconds, 6),
                "records": count,
                "records_per_second": round(count / seconds, 1),
            }
            if note:
                entry["note"] = note
            results["legs"][name] = entry
            print(f"{name:>10}: {count:7d} records in {seconds * 1e3:8.1f} ms "
                  f"({entry['records_per_second']:,.0f} rec/s)  {note}")

        cold = Archive(root, cache_size=0)
        leg("sequential", lambda: list(cold.iter_updates(start, end)))

        pool = Archive(root, workers=args.workers, cache_size=0)
        leg("parallel", lambda: list(pool.iter_updates(start, end)),
            note=f"workers={args.workers}; pool overhead dominates on "
                 f"{os.cpu_count()}-CPU hosts")

        warm = Archive(root, cache_size=256)
        list(warm.iter_updates(start, end))  # populate the cache
        leg("cached", lambda: list(warm.iter_updates(start, end)))

        record_filter = compile_filter(PUSHDOWN_FILTER)
        filtered = Archive(root, cache_size=0)
        leg("pushdown",
            lambda: list(filtered.iter_updates(start, end,
                                               record_filter=record_filter)),
            note=f"filter: {PUSHDOWN_FILTER!r}; throughput counts the full "
                 "window's records scanned per second")
        # Push-down selects a subset; its effective throughput is the whole
        # window scanned in that time.
        pd = results["legs"]["pushdown"]
        pd["records_scanned"] = len(records)
        pd["records_per_second"] = round(len(records) / pd["seconds"], 1)

    base = results["legs"]["sequential"]["records_per_second"]
    results["speedup_vs_sequential"] = {
        name: round(entry["records_per_second"] / base, 2)
        for name, entry in results["legs"].items() if name != "sequential"
    }

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"\nspeedups vs sequential: {results['speedup_vs_sequential']}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
