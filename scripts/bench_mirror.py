#!/usr/bin/env python
"""Measure archive-mirror sync throughput and emit ``BENCH_mirror.json``.

Builds the deterministic synthetic observatory scenario, serves it with
:class:`repro.transport.ArchiveServer`, and times:

* ``cold_sync``   — empty destination → full mirror, bytes/s and files/s
* ``warm_sync``   — immediate re-sync: manifest fetch + skip everything
* ``resume``      — a transfer is cut mid-file (fault proxy truncates,
  zero retry budget), then a healthy re-sync continues the partial via
  ``Range`` and finishes the month
* ``faulty_sync`` — cold sync through the fault proxy at 10% combined
  fault rates; overhead vs the clean cold sync is the fault-path cost

Usage::

    PYTHONPATH=src python scripts/bench_mirror.py [--days 6]
        [--rounds 3] [--workers 4] [--out BENCH_mirror.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import build_synthetic_archive  # noqa: E402
from repro.transport import (  # noqa: E402
    ArchiveMirror,
    ArchiveServer,
    FaultPlan,
    FaultyProxy,
)

NO_SLEEP = None  # real time.sleep: the bench measures wall-clock cost


def make_mirror(url, dest, workers, **kwargs):
    kwargs.setdefault("retries", 8)
    kwargs.setdefault("backoff", 0.005)
    kwargs.setdefault("backoff_cap", 0.05)
    return ArchiveMirror(url, dest, workers=workers, **kwargs)


def timed_sync(mirror):
    t0 = time.perf_counter()
    report = mirror.sync()
    return time.perf_counter() - t0, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=6,
                        help="campaign days in the synthetic scenario")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per leg; best is kept")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent collector-month transfers")
    parser.add_argument("--out", default="BENCH_mirror.json")
    args = parser.parse_args(argv)

    results: dict = {
        "host": {"cpu_count": os.cpu_count()},
        "rounds": args.rounds,
        "workers": args.workers,
        "legs": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_mirror_") as tmp:
        root = Path(tmp)
        built = build_synthetic_archive(root / "archive", days=args.days)
        archive_bytes = sum(p.stat().st_size
                            for p in built.root.rglob("*") if p.is_file())
        archive_files = sum(1 for p in built.root.rglob("*") if p.is_file())
        results["workload"] = {
            "days": args.days,
            "files": archive_files,
            "bytes": archive_bytes,
        }
        server = ArchiveServer(built.root).start()
        try:
            # --- cold sync -------------------------------------------
            best, report = float("inf"), None
            for round_index in range(args.rounds):
                dest = root / f"cold-{round_index}"
                elapsed, report = timed_sync(
                    make_mirror(server.url, dest, args.workers))
                assert report.ok
                best = min(best, elapsed)
            results["legs"]["cold_sync"] = {
                "seconds": round(best, 6),
                "files": report.files_downloaded,
                "bytes": report.bytes_downloaded,
                "files_per_second": round(report.files_downloaded / best, 1),
                "bytes_per_second": round(report.bytes_downloaded / best, 1),
            }
            print(f"      cold: {report.files_downloaded:4d} files "
                  f"({report.bytes_downloaded} B) in {best * 1e3:8.1f} ms")
            cold_best = best

            # --- warm re-sync ----------------------------------------
            warm_mirror = make_mirror(server.url, root / "cold-0",
                                      args.workers)
            best = float("inf")
            for _ in range(args.rounds):
                elapsed, report = timed_sync(warm_mirror)
                assert report.ok and report.files_downloaded == 0
                best = min(best, elapsed)
            results["legs"]["warm_sync"] = {
                "seconds": round(best, 6),
                "files_skipped": report.files_skipped,
                "speedup_vs_cold": round(cold_best / best, 1),
            }
            print(f"      warm: {report.files_skipped:4d} files skipped "
                  f"in {best * 1e3:8.1f} ms "
                  f"({cold_best / best:.1f}x vs cold)")

            # --- resume after an interrupted transfer ----------------
            best, resumed_bytes = float("inf"), 0
            for round_index in range(args.rounds):
                dest = root / f"resume-{round_index}"
                plan = FaultPlan(script=[("updates.", "truncate")])
                proxy = FaultyProxy(server.url, plan).start()
                try:
                    interrupted = make_mirror(proxy.url, dest, args.workers,
                                              retries=0)
                    assert not interrupted.sync().ok
                finally:
                    proxy.stop()
                elapsed, report = timed_sync(
                    make_mirror(server.url, dest, args.workers))
                assert report.ok and report.bytes_resumed > 0
                resumed_bytes = report.bytes_resumed
                best = min(best, elapsed)
            results["legs"]["resume"] = {
                "seconds": round(best, 6),
                "bytes_resumed": resumed_bytes,
                "note": "healthy re-sync after a mid-file interruption; "
                        "the partial download is continued via Range",
            }
            print(f"    resume: {resumed_bytes:4d} B resumed "
                  f"in {best * 1e3:8.1f} ms")

            # --- cold sync through 10% combined faults ---------------
            best, report, plan = float("inf"), None, None
            for round_index in range(args.rounds):
                dest = root / f"faulty-{round_index}"
                plan = FaultPlan(rates={"drop": 0.04, "error": 0.03,
                                        "truncate": 0.02, "corrupt": 0.01},
                                 seed=20240601 + round_index)
                proxy = FaultyProxy(server.url, plan).start()
                try:
                    elapsed, report = timed_sync(
                        make_mirror(proxy.url, dest, args.workers))
                    assert report.ok
                    best = min(best, elapsed)
                finally:
                    proxy.stop()
            results["legs"]["faulty_sync"] = {
                "seconds": round(best, 6),
                "fault_rates": dict(plan.rates),
                "faults_injected_last_round": dict(plan.injected),
                "retries_last_round": report.retries,
                "overhead_vs_cold": round(best / cold_best, 2),
            }
            print(f"    faulty: {best * 1e3:8.1f} ms "
                  f"({best / cold_best:.2f}x cold; "
                  f"{report.retries} retries last round)")
        finally:
            server.stop()
        shutil.rmtree(root / "cold-1", ignore_errors=True)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
