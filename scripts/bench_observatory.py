#!/usr/bin/env python
"""Measure observatory ingest and query throughput and emit
``BENCH_observatory.json``.

Builds the deterministic synthetic observatory scenario
(:func:`repro.observatory.build_synthetic_archive`, scaled up with
``--days``), then times:

* ``ingest``        — full archive → event-store ingest, records/s
* ``resume``        — kill after half the stream and resume to completion
* ``query_http``    — ``/outbreaks`` + ``/zombies`` + ``/resurrections``
  round-trips against a live :class:`ObservatoryServer` (per-query
  latency)
* ``query_store``   — the same scans straight off ``EventStore.events``

Usage::

    PYTHONPATH=src python scripts/bench_observatory.py [--days 6]
        [--rounds 3] [--queries 50] [--out BENCH_observatory.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import (  # noqa: E402
    EventStore,
    ObservatoryClient,
    ObservatoryIngest,
    ObservatoryServer,
    build_synthetic_archive,
    load_scenario,
)
from repro.ris import Archive  # noqa: E402


def make_ingest(built, config, store_dir, checkpoint):
    return ObservatoryIngest(
        Archive(built.root), EventStore(store_dir), checkpoint,
        config["intervals"], config["start"], config["end"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=6,
                        help="campaign days in the synthetic scenario")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per leg; best is kept")
    parser.add_argument("--queries", type=int, default=50,
                        help="HTTP round-trips per endpoint")
    parser.add_argument("--out", default="BENCH_observatory.json")
    args = parser.parse_args(argv)

    results: dict = {
        "host": {"cpu_count": os.cpu_count()},
        "rounds": args.rounds,
        "legs": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_observatory_") as tmp:
        root = Path(tmp)
        built = build_synthetic_archive(root / "archive", days=args.days)
        config = load_scenario(built.scenario_path)
        results["workload"] = {
            "days": args.days,
            "records": built.record_count,
            "intervals": len(built.intervals),
            "window_seconds": built.end - built.start,
        }

        # --- ingest: full archive -> event store, best of N rounds ----
        best = float("inf")
        ingest = None
        for round_index in range(args.rounds):
            store_dir = root / f"store-{round_index}"
            t0 = time.perf_counter()
            ingest = make_ingest(built, config, store_dir,
                                 root / f"ckpt-{round_index}.json")
            ingest.run()
            ingest.finish()
            best = min(best, time.perf_counter() - t0)
        records = ingest.records_ingested
        events = ingest.store.next_seq
        results["legs"]["ingest"] = {
            "seconds": round(best, 6),
            "records": records,
            "records_per_second": round(records / best, 1),
            "events_emitted": events,
        }
        print(f"    ingest: {records:6d} records in {best * 1e3:8.1f} ms "
              f"({records / best:,.0f} rec/s, {events} events)")

        # --- resume: kill at the halfway mark, restart, finish --------
        best = float("inf")
        for round_index in range(args.rounds):
            store_dir = root / f"resume-{round_index}"
            checkpoint = root / f"resume-{round_index}.json"
            first = make_ingest(built, config, store_dir, checkpoint)
            first.run(max_records=records // 2)
            first.store.close()
            t0 = time.perf_counter()
            resumed = make_ingest(built, config, store_dir, checkpoint)
            resumed.run()
            resumed.finish()
            best = min(best, time.perf_counter() - t0)
        results["legs"]["resume"] = {
            "seconds": round(best, 6),
            "records": records - records // 2,
            "records_per_second": round((records - records // 2) / best, 1),
            "note": "restart from a mid-stream checkpoint; includes "
                    "snapshot restore and store truncation",
        }
        print(f"    resume: {records - records // 2:6d} records in "
              f"{best * 1e3:8.1f} ms")

        # --- queries ---------------------------------------------------
        store = ingest.store
        server = ObservatoryServer(store, ingest=ingest).start()
        try:
            client = ObservatoryClient(server.url)
            endpoints = {
                "outbreaks": lambda: client.outbreaks(),
                "zombies": lambda: client.zombies(),
                "resurrections": lambda: client.resurrections(),
            }
            http = {}
            for name, call in endpoints.items():
                call()  # warm up
                t0 = time.perf_counter()
                for _ in range(args.queries):
                    call()
                elapsed = time.perf_counter() - t0
                http[name] = {
                    "queries": args.queries,
                    "mean_ms": round(elapsed / args.queries * 1e3, 3),
                    "queries_per_second": round(args.queries / elapsed, 1),
                }
                print(f"{name:>10}: {http[name]['mean_ms']:7.3f} ms/query "
                      f"over HTTP")
            results["legs"]["query_http"] = http
        finally:
            server.stop()

        t0 = time.perf_counter()
        for _ in range(args.queries):
            scanned = sum(1 for _ in store.events())
        elapsed = time.perf_counter() - t0
        results["legs"]["query_store"] = {
            "queries": args.queries,
            "events_scanned": scanned,
            "mean_ms": round(elapsed / args.queries * 1e3, 3),
            "events_per_second": round(scanned * args.queries / elapsed, 1),
        }
        print(f"     store: {results['legs']['query_store']['mean_ms']:7.3f} "
              f"ms/full-scan ({scanned} events)")

        shutil.rmtree(root / "store-0", ignore_errors=True)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
