#!/usr/bin/env python
"""Measure the observatory query path and emit ``BENCH_query.json``.

Builds an event store with >= 10k ``lifespan`` events (plus outbreaks
and resurrections, the §5 lifespan-study shape), serves it, and times
repeated ``GET /zombies`` round-trips three ways:

* ``cold_scan``      — ``use_view=False``: every request re-scans every
  lifespan event in the store (the pre-view behaviour);
* ``view``           — ``use_view=True``: requests are answered from the
  incrementally maintained materialized view;
* ``not_modified``   — conditional requests (``If-None-Match``) answered
  ``304`` from the ETag, no body rendered or transferred.

The same history is then compacted two ways — ``fmt="jsonl"`` and
``fmt="columnar"`` (DESIGN.md §13) — and the format-sensitive legs run
against each:

* ``cold_scan_jsonl`` / ``cold_scan_columnar`` — the cold ``/zombies``
  scan over compacted JSONL vs binary columnar segments (both folded,
  so the delta is purely the decode path);
* ``view_rebuild``   — full ``MaterializedViews`` rebuild wall time per
  format: the cost every generation bump (truncate/compact/repair)
  imposes on the query layer.

Reports p50/p99 latency and requests/second per leg, verifies all
cold-scan bodies are byte-identical, and records the p50 speedups
(acceptance bars: view >= 10x over cold scan; columnar >= 8x over
compacted JSONL on the cold scan and >= 5x on the rebuild).

Usage::

    PYTHONPATH=src python scripts/bench_query.py [--lifespans 12000]
        [--requests 200] [--quick] [--out BENCH_query.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import (  # noqa: E402
    EventStore,
    MaterializedViews,
    ObservatoryServer,
)


def build_store(root: Path, lifespans: int) -> EventStore:
    """A deterministic store in the lifespan-study shape: cumulative
    lifespan summaries per prefix (latest wins), outbreak events, and
    update-scale resurrections."""
    store = EventStore(root, segment_max_records=2048)
    prefixes = max(1, lifespans // 20)  # ~20 cumulative updates each
    time_cursor = 1_700_000_000
    appended = 0
    while appended < lifespans:
        index = appended % prefixes
        prefix = f"2001:db8:{index // 256:x}:{index % 256:x}::/48"
        if appended < prefixes:
            store.append("outbreak", time_cursor,
                         {"prefix": prefix, "detected_at": time_cursor,
                          "peers": [["rrc00", 64500 + index % 40]]})
        store.append("lifespan", time_cursor + 10, {
            "prefix": prefix,
            "visible": index % 3 == 0,
            "started_segment": False,
            "resurrection": appended % 97 == 0,
            "peers": [["rrc00", 64500 + index % 40]],
            "withdraw_time": time_cursor - 3600,
            "first_seen": time_cursor - 7200,
            "last_seen": time_cursor,
            "duration_seconds": 7200 + appended,
            "segment_count": 1 + index % 3,
            "resurrection_count": appended % 97 == 0 and 1 or 0,
        })
        appended += 1
        if index % 11 == 0:
            store.append("resurrection", time_cursor + 20,
                         {"prefix": prefix, "resurrected_at": time_cursor})
        time_cursor += 60
    store.sync()
    return store


def percentile(latencies: list, fraction: float) -> float:
    ordered = sorted(latencies)
    return ordered[int(fraction * (len(ordered) - 1))]


def time_requests(url: str, count: int, headers=None) -> dict:
    """Per-request wall-clock over ``count`` round-trips; the last
    response body (or status) rides along for verification."""
    latencies = []
    body, status = None, None
    for _ in range(count):
        request = urllib.request.Request(url, headers=headers or {})
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(request) as response:
                body = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
            exc.read()
        latencies.append(time.perf_counter() - t0)
    total = sum(latencies)
    return {
        "requests": count,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "mean_ms": round(total / count * 1e3, 3),
        "requests_per_second": round(count / total, 1),
        "_body": body,
        "_status": status,
    }


def strip(leg: dict) -> dict:
    return {k: v for k, v in leg.items() if not k.startswith("_")}


def cold_scan_leg(root: Path, requests: int) -> dict:
    """Serve one store without the view and time cold ``/zombies``."""
    store = EventStore(root, segment_max_records=2048)
    server = ObservatoryServer(store, use_view=False).start()
    try:
        return time_requests(server.url + "/zombies", requests)
    finally:
        server.stop()
        store.close()


def rebuild_leg(root: Path, rounds: int) -> dict:
    """Full view-rebuild wall time over one store (fresh
    ``MaterializedViews`` per round — the generation-bump cost)."""
    store = EventStore(root, segment_max_records=2048, readonly=True)
    times = []
    folded = 0
    try:
        for _ in range(rounds):
            views = MaterializedViews(store)
            views.refresh()
            times.append(views.stats()["last_rebuild_seconds"])
            folded = views.events_folded
    finally:
        store.close()
    return {
        "rounds": rounds,
        "events_folded": folded,
        "p50_ms": round(percentile(times, 0.50) * 1e3, 3),
        "min_ms": round(min(times) * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lifespans", type=int, default=12000,
                        help="lifespan events in the store (>= 10k for "
                             "the acceptance run)")
    parser.add_argument("--requests", type=int, default=200,
                        help="round-trips per hot leg (cold scan uses "
                             "a quarter of this)")
    parser.add_argument("--quick", action="store_true",
                        help="small store and few requests (CI smoke)")
    parser.add_argument("--out", default="BENCH_query.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.lifespans = min(args.lifespans, 1500)
        args.requests = min(args.requests, 30)

    results: dict = {"host": {"cpu_count": os.cpu_count()},
                     "quick": args.quick, "legs": {}}
    with tempfile.TemporaryDirectory(prefix="bench_query_") as tmp:
        store = build_store(Path(tmp) / "store", args.lifespans)
        stats = store.stats()

        # The same history compacted both ways: the format-sensitive
        # legs then differ only in the on-disk decode path.
        jsonl_root = Path(tmp) / "store_jsonl"
        columnar_root = Path(tmp) / "store_columnar"
        compacted = {}
        for fmt, root in (("jsonl", jsonl_root), ("columnar", columnar_root)):
            shutil.copytree(Path(tmp) / "store", root)
            variant = EventStore(root, segment_max_records=2048)
            variant.compact(fmt=fmt)
            compacted[fmt] = variant.stats()
            variant.close()

        results["workload"] = {
            "lifespan_events": stats["by_kind"]["lifespan"],
            "events_total": stats["next_seq"],
            "segments": stats["segments"],
            "zombie_prefixes": len({
                e["prefix"] for e in store.events(kinds=("lifespan",))}),
            "segment_formats": {
                "baseline": stats["by_format"],
                "compacted_jsonl": compacted["jsonl"]["by_format"],
                "compacted_columnar": compacted["columnar"]["by_format"],
            },
            "compacted_events": compacted["columnar"]["events"],
        }
        print(f"store: {stats['next_seq']} events "
              f"({stats['by_kind']['lifespan']} lifespans, "
              f"{stats['segments']} segments)")

        cold_requests = max(10, args.requests // 4)
        cold_server = ObservatoryServer(store, use_view=False).start()
        try:
            cold = time_requests(cold_server.url + "/zombies", cold_requests)
        finally:
            cold_server.stop()
        print(f" cold_scan: p50 {cold['p50_ms']:8.3f} ms  "
              f"p99 {cold['p99_ms']:8.3f} ms  "
              f"{cold['requests_per_second']:7.1f} req/s")

        view_server = ObservatoryServer(store, use_view=True).start()
        try:
            time_requests(view_server.url + "/zombies", 1)  # build the view
            view = time_requests(view_server.url + "/zombies", args.requests)
            assert view["_body"] == cold["_body"], \
                "view-backed /zombies body differs from the cold scan"
            with urllib.request.urlopen(view_server.url + "/zombies") \
                    as response:
                etag = response.headers["ETag"]
            conditional = time_requests(view_server.url + "/zombies",
                                        args.requests,
                                        headers={"If-None-Match": etag})
            assert conditional["_status"] == 304, \
                f"expected 304s, got {conditional['_status']}"
        finally:
            view_server.stop()
        print(f"      view: p50 {view['p50_ms']:8.3f} ms  "
              f"p99 {view['p99_ms']:8.3f} ms  "
              f"{view['requests_per_second']:7.1f} req/s")
        print(f"       304: p50 {conditional['p50_ms']:8.3f} ms  "
              f"p99 {conditional['p99_ms']:8.3f} ms  "
              f"{conditional['requests_per_second']:7.1f} req/s")

        cold_jsonl = cold_scan_leg(jsonl_root, cold_requests)
        cold_columnar = cold_scan_leg(columnar_root, cold_requests)
        assert cold_jsonl["_body"] == cold["_body"], \
            "compacted-JSONL /zombies body differs from the baseline"
        assert cold_columnar["_body"] == cold["_body"], \
            "columnar /zombies body differs from the baseline"
        print(f"cold_jsonl: p50 {cold_jsonl['p50_ms']:8.3f} ms  "
              f"p99 {cold_jsonl['p99_ms']:8.3f} ms  "
              f"{cold_jsonl['requests_per_second']:7.1f} req/s")
        print(f"  cold_col: p50 {cold_columnar['p50_ms']:8.3f} ms  "
              f"p99 {cold_columnar['p99_ms']:8.3f} ms  "
              f"{cold_columnar['requests_per_second']:7.1f} req/s")

        rebuild_rounds = 3 if args.quick else 7
        rebuild_baseline = rebuild_leg(Path(tmp) / "store", rebuild_rounds)
        rebuild_jsonl = rebuild_leg(jsonl_root, rebuild_rounds)
        rebuild_columnar = rebuild_leg(columnar_root, rebuild_rounds)
        assert rebuild_jsonl["events_folded"] == \
            rebuild_columnar["events_folded"], "rebuilds folded different " \
            "event counts across formats"
        print(f"   rebuild: baseline p50 {rebuild_baseline['p50_ms']:.3f} ms"
              f"  jsonl p50 {rebuild_jsonl['p50_ms']:.3f} ms  "
              f"columnar p50 {rebuild_columnar['p50_ms']:.3f} ms "
              f"({rebuild_jsonl['events_folded']} events compacted)")

    results["legs"]["cold_scan"] = strip(cold)
    results["legs"]["view"] = strip(view)
    results["legs"]["not_modified"] = strip(conditional)
    results["legs"]["cold_scan_jsonl"] = strip(cold_jsonl)
    results["legs"]["cold_scan_columnar"] = strip(cold_columnar)
    results["legs"]["view_rebuild"] = {
        "baseline": rebuild_baseline,
        "jsonl": rebuild_jsonl,
        "columnar": rebuild_columnar,
    }
    results["speedup"] = {
        "view_vs_cold_p50": round(cold["p50_ms"] / view["p50_ms"], 1),
        "not_modified_vs_cold_p50": round(
            cold["p50_ms"] / conditional["p50_ms"], 1),
        "columnar_vs_jsonl_cold_scan_p50": round(
            cold_jsonl["p50_ms"] / cold_columnar["p50_ms"], 1),
        "columnar_vs_baseline_cold_scan_p50": round(
            cold["p50_ms"] / cold_columnar["p50_ms"], 1),
        "columnar_vs_jsonl_view_rebuild_p50": round(
            rebuild_jsonl["p50_ms"] / rebuild_columnar["p50_ms"], 1),
        "columnar_vs_baseline_view_rebuild_p50": round(
            rebuild_baseline["p50_ms"] / rebuild_columnar["p50_ms"], 1),
    }
    print(f"speedup (p50): view {results['speedup']['view_vs_cold_p50']}x, "
          f"304 {results['speedup']['not_modified_vs_cold_p50']}x, "
          f"columnar cold scan "
          f"{results['speedup']['columnar_vs_jsonl_cold_scan_p50']}x, "
          f"columnar rebuild "
          f"{results['speedup']['columnar_vs_jsonl_view_rebuild_p50']}x")

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
