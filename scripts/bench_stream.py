#!/usr/bin/env python
"""Measure the streaming subsystem and emit ``BENCH_stream.json``.

Three legs:

* ``plain_query``      — the BENCH_query view workload (``GET
  /zombies`` over a lifespan-study store) served by the threaded
  engine vs the asyncio engine, sequential and at 8-way concurrency.
  The threaded server is HTTP/1.0 (a connection and a handler thread
  per request); the async engine holds HTTP/1.1 keep-alive
  connections, so repeat queries skip the connect + thread-spawn tax.
  Acceptance bar: async >= 2x threaded req/s.
* ``append_to_deliver`` — end-to-end push latency: wall time from
  ``store.append()`` returning to a live SSE subscriber holding the
  event's frame.  Floored by the hub's store-poll interval.
* ``fanout``           — one live ingest, 1 / 10 / 100 SSE
  subscribers: aggregate delivered events/second and wall time until
  every subscriber holds every event (exactly-once is asserted, not
  assumed).

Usage::

    PYTHONPATH=src python scripts/bench_stream.py [--lifespans 12000]
        [--requests 200] [--events 200] [--quick]
        [--out BENCH_stream.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import selectors
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_query import build_store, percentile  # noqa: E402

from repro.observatory import (  # noqa: E402
    AsyncObservatoryServer,
    EventStore,
    ObservatoryServer,
)

POLL_INTERVAL = 0.02  # hub store-poll cadence used by every stream leg


# -- plain-query legs -----------------------------------------------------

def query_worker(server, requests: int, keep_alive: bool,
                 latencies: list) -> None:
    """One client: ``requests`` round-trips of ``GET /zombies``.

    ``keep_alive=True`` holds a single persistent connection (what the
    async engine enables); ``keep_alive=False`` reconnects per request
    (all the HTTP/1.0 threaded engine supports)."""
    conn = None
    for _ in range(requests):
        t0 = time.perf_counter()
        if conn is None:
            conn = http.client.HTTPConnection(server.host, server.port,
                                              timeout=30)
        conn.request("GET", "/zombies")
        response = conn.getresponse()
        response.read()
        assert response.status == 200
        if not keep_alive:
            conn.close()
            conn = None
        latencies.append(time.perf_counter() - t0)
    if conn is not None:
        conn.close()


def query_leg(server, requests: int, concurrency: int,
              keep_alive: bool) -> dict:
    query_worker(server, 5, keep_alive, [])  # warm the view + caches
    latencies: list = []
    threads = [threading.Thread(target=query_worker,
                                args=(server, requests, keep_alive,
                                      latencies))
               for _ in range(concurrency)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    return {
        "requests": requests * concurrency,
        "concurrency": concurrency,
        "keep_alive": keep_alive,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "requests_per_second": round(requests * concurrency / elapsed, 1),
    }


# -- stream legs ----------------------------------------------------------

def sse_socket(server, path: str) -> socket.socket:
    """A raw subscribed SSE socket, headers consumed."""
    sock = socket.create_connection((server.host, server.port), timeout=30)
    sock.sendall(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
                 .encode("ascii"))
    head = b""
    while b"\r\n\r\n" not in head:
        head += sock.recv(4096)
    status = head.split(b"\r\n", 1)[0]
    assert b"200" in status, status
    return sock


def latency_leg(store, server, events: int) -> dict:
    """Append one event at a time; clock until the frame arrives."""
    sock = sse_socket(server, "/stream/events")
    sock.settimeout(30)
    base = store.position()[1]
    latencies = []
    buf = b""
    for n in range(events):
        t0 = time.perf_counter()
        store.append("outbreak", 1_800_000_000 + n,
                     {"n": base + n, "bench": "latency"})
        while buf.count(b"data: ") < n + 1:
            buf += sock.recv(65536)
        latencies.append(time.perf_counter() - t0)
    sock.close()
    return {
        "events": events,
        "poll_interval_ms": POLL_INTERVAL * 1e3,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
    }


def fanout_leg(store, server, subscribers: int, events: int) -> dict:
    """``subscribers`` live tails, one burst of ``events`` appends:
    wall time until everyone holds everything, exactly once."""
    selector = selectors.DefaultSelector()
    sockets = []
    for _ in range(subscribers):
        sock = sse_socket(server, "/stream/events")
        sock.setblocking(False)
        sockets.append(sock)
        selector.register(sock, selectors.EVENT_READ,
                          {"buffer": b"", "frames": 0})
    base = store.position()[1]
    t0 = time.perf_counter()
    for n in range(events):
        store.append("outbreak", 1_810_000_000 + n,
                     {"n": base + n, "bench": "fanout"})
    pending = set(sockets)
    deadline = time.monotonic() + 120
    while pending:
        assert time.monotonic() < deadline, \
            f"fan-out stalled with {len(pending)} subscriber(s) behind"
        for key, _ in selector.select(timeout=1.0):
            state = key.data
            try:
                chunk = key.fileobj.recv(262144)
            except BlockingIOError:
                continue
            state["buffer"] += chunk
            state["frames"] = state["buffer"].count(b"data: ")
            if state["frames"] >= events and key.fileobj in pending:
                pending.discard(key.fileobj)
    elapsed = time.perf_counter() - t0
    delivered = 0
    for sock in sockets:
        state = selector.get_key(sock).data
        seqs = [json.loads(line[len(b"data: "):])["seq"]
                for line in state["buffer"].split(b"\n")
                if line.startswith(b"data: ")]
        assert seqs == sorted(set(seqs)), "duplicate or out-of-order frames"
        delivered += len([s for s in seqs if s >= base])
        selector.unregister(sock)
        sock.close()
    selector.close()
    assert delivered == subscribers * events, \
        f"delivered {delivered}, expected {subscribers * events}"
    return {
        "subscribers": subscribers,
        "events": events,
        "wall_seconds": round(elapsed, 3),
        "delivered_events_per_second": round(delivered / elapsed, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lifespans", type=int, default=12000,
                        help="lifespan events in the query-leg store "
                             "(matches BENCH_query)")
    parser.add_argument("--requests", type=int, default=200,
                        help="round-trips per query-leg client")
    parser.add_argument("--events", type=int, default=200,
                        help="events per stream leg")
    parser.add_argument("--quick", action="store_true",
                        help="small store and few requests (CI smoke)")
    parser.add_argument("--out", default="BENCH_stream.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.lifespans = min(args.lifespans, 1500)
        args.requests = min(args.requests, 40)
        args.events = min(args.events, 40)

    results: dict = {"host": {"cpu_count": os.cpu_count()},
                     "quick": args.quick, "legs": {}}
    with tempfile.TemporaryDirectory(prefix="bench_stream_") as tmp:
        store = build_store(Path(tmp) / "store", args.lifespans)
        stats = store.stats()
        results["workload"] = {
            "lifespan_events": stats["by_kind"]["lifespan"],
            "events_total": stats["next_seq"],
            "segments": stats["segments"],
            "poll_interval_ms": POLL_INTERVAL * 1e3,
        }
        print(f"store: {stats['next_seq']} events, "
              f"{stats['segments']} segments")

        plain: dict = {}
        threaded = ObservatoryServer(store, use_view=True).start()
        try:
            plain["threaded"] = query_leg(threaded, args.requests, 1,
                                          keep_alive=False)
            plain["threaded_c8"] = query_leg(threaded, args.requests, 8,
                                             keep_alive=False)
        finally:
            threaded.stop()
        asynced = AsyncObservatoryServer(store, use_view=True,
                                         poll_interval=POLL_INTERVAL).start()
        try:
            plain["async"] = query_leg(asynced, args.requests, 1,
                                       keep_alive=True)
            plain["async_c8"] = query_leg(asynced, args.requests, 8,
                                          keep_alive=True)
        finally:
            asynced.stop()
        for name in ("threaded", "async", "threaded_c8", "async_c8"):
            leg = plain[name]
            print(f"{name:>12}: p50 {leg['p50_ms']:7.3f} ms  "
                  f"{leg['requests_per_second']:8.1f} req/s")
        plain["speedup_sequential"] = round(
            plain["async"]["requests_per_second"]
            / plain["threaded"]["requests_per_second"], 2)
        plain["speedup_c8"] = round(
            plain["async_c8"]["requests_per_second"]
            / plain["threaded_c8"]["requests_per_second"], 2)
        results["legs"]["plain_query"] = plain
        print(f"async-vs-threaded: {plain['speedup_sequential']}x "
              f"sequential, {plain['speedup_c8']}x at c=8")
        if not args.quick:
            assert plain["speedup_c8"] >= 2.0, \
                "acceptance bar: async >= 2x threaded view-path req/s"

        server = AsyncObservatoryServer(store,
                                        poll_interval=POLL_INTERVAL).start()
        try:
            latency = latency_leg(store, server, args.events)
            results["legs"]["append_to_deliver"] = latency
            print(f"append->deliver: p50 {latency['p50_ms']:.1f} ms  "
                  f"p99 {latency['p99_ms']:.1f} ms "
                  f"(poll {latency['poll_interval_ms']:.0f} ms)")
            fanout = []
            for subscribers in (1, 10, 100):
                leg = fanout_leg(store, server, subscribers, args.events)
                fanout.append(leg)
                print(f"fan-out x{subscribers:<3}: "
                      f"{leg['delivered_events_per_second']:9.1f} "
                      f"delivered events/s over {leg['wall_seconds']}s")
            results["legs"]["fanout"] = fanout
        finally:
            server.stop()
        store.close()

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
