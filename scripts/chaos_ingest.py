#!/usr/bin/env python
"""Chaos harness: corrupt an archive mid-ingest and prove convergence.

The resilience contract this script asserts end to end:

    supervised tolerant ingest of a corrupted archive produces a
    byte-identical event store to a clean ingest of the same archive
    with the destroyed records removed — and the store passes
    ``observatory doctor`` afterwards.

The run:

1. builds the deterministic synthetic campaign archive and ingests it
   once, clean, for the baseline;
2. copies it and corrupts the *first half* of the window up front
   (seeded byte flips inside records, garbage runs between records,
   mid-record truncation of file tails);
3. starts a supervised ingest with a tolerant error policy; when the
   ingest crosses the window midpoint, the ``on_batch`` hook corrupts
   the *second half* (files strictly ahead of the watermark, so no
   already-consumed bytes change) and then raises once, forcing a
   crash + checkpoint-restart through the supervisor;
4. rebuilds the reference archive (clean minus exactly the destroyed
   records), ingests it clean, and compares the two stores byte for
   byte;
5. runs the store fsck and reports everything.

Exit status 0 only if the stores match, the decoder skipped at least
the destroyed record count's worth of poison, and the doctor finds the
chaos store clean.

Usage::

    PYTHONPATH=src python scripts/chaos_ingest.py [--days 2] [--seed 0]
        [--rate 0.05] [--garbage-rate 0.03] [--truncate-rate 0.1]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observatory import (  # noqa: E402
    EventStore,
    ObservatoryIngest,
    ObservatorySupervisor,
    build_synthetic_archive,
    fsck,
)
from repro.ris import Archive  # noqa: E402
from repro.ris.archive import _parse_file_stamp  # noqa: E402
from repro.ris.chaos import (  # noqa: E402
    ChaosReport,
    build_reference_archive,
    corrupt_archive,
)


def ingest_all(archive_root: Path, store_dir: Path, scen,
               error_policy=None) -> EventStore:
    store = EventStore(store_dir)
    ingest = ObservatoryIngest(
        Archive(archive_root, error_policy=error_policy), store,
        store_dir / "checkpoint.json", scen.intervals,
        scen.start, scen.end)
    ingest.finish()
    store.close()
    return store


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=2,
                        help="beacon days in the synthetic scenario")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=0.05,
                        help="per-record destruction probability")
    parser.add_argument("--garbage-rate", type=float, default=0.03,
                        help="per-record garbage-run probability")
    parser.add_argument("--truncate-rate", type=float, default=0.1,
                        help="per-file mid-record truncation probability")
    parser.add_argument("--on-error", choices=["skip", "quarantine"],
                        default="quarantine",
                        help="tolerant policy for the chaos ingest")
    parser.add_argument("--keep", default=None, metavar="DIR",
                        help="keep the working tree here for inspection")
    args = parser.parse_args(argv)

    work = Path(args.keep) if args.keep else Path(tempfile.mkdtemp())
    work.mkdir(parents=True, exist_ok=True)
    clean = work / "archive-clean"
    dirty = work / "archive-chaos"
    scen = build_synthetic_archive(clean, days=args.days)
    shutil.copytree(clean, dirty)
    midpoint = (scen.start + scen.end) // 2

    report = ChaosReport()
    report.merge(corrupt_archive(
        dirty, rate=args.rate, garbage_rate=args.garbage_rate,
        truncate_rate=args.truncate_rate, seed=args.seed,
        predicate=lambda p: _parse_file_stamp(p.name) < midpoint))
    print(f"upfront corruption (first half): "
          f"{report.records_destroyed} records destroyed, "
          f"{report.garbage_runs} garbage runs, "
          f"{report.truncations} truncations "
          f"across {report.files_corrupted} file(s)")

    chaos_store_dir = work / "store-chaos"
    store = EventStore(chaos_store_dir)

    def make_ingest() -> ObservatoryIngest:
        return ObservatoryIngest(
            Archive(dirty, error_policy=args.on_error), store,
            chaos_store_dir / "checkpoint.json", scen.intervals,
            scen.start, scen.end, checkpoint_every=100)

    fired = {"done": False}

    def mid_run_chaos(ingest: ObservatoryIngest) -> None:
        if fired["done"]:
            return
        watermark = ingest._updates_watermark
        if watermark is None or watermark < midpoint:
            return
        fired["done"] = True
        # Damage only files strictly ahead of the watermark: nothing
        # the ingest already consumed changes under its feet.
        late = corrupt_archive(
            dirty, rate=args.rate, garbage_rate=args.garbage_rate,
            truncate_rate=args.truncate_rate, seed=args.seed + 1,
            predicate=lambda p: _parse_file_stamp(p.name) > watermark)
        report.merge(late)
        print(f"mid-run corruption (past watermark {watermark}): "
              f"{late.records_destroyed} records destroyed in "
              f"{late.files_corrupted} file(s); forcing a crash")
        raise RuntimeError("chaos: injected mid-ingest crash")

    supervisor = ObservatorySupervisor(make_ingest, batch_records=50,
                                       sleep=lambda s: None, seed=args.seed)
    ok = supervisor.run(on_batch=mid_run_chaos)
    store.close()
    sup = supervisor.stats()
    print(f"supervised ingest: state={sup['state']} "
          f"restarts={sup['restarts']} "
          f"records_skipped={sup['records_skipped']} "
          f"bytes_quarantined={sup['bytes_quarantined']}")
    total = max(1, report.records_total)
    print(f"total damage: {report.records_destroyed}/{report.records_total} "
          f"records destroyed ({report.records_destroyed / total:.1%})")

    reference = build_reference_archive(clean, work / "archive-reference",
                                        report.destroyed)
    ingest_all(reference, work / "store-reference", scen)

    chaos_bytes = EventStore(chaos_store_dir, readonly=True).raw_bytes()
    reference_bytes = EventStore(work / "store-reference",
                                 readonly=True).raw_bytes()
    converged = chaos_bytes == reference_bytes
    print(f"store convergence: chaos == clean-minus-destroyed: {converged}")

    doctor = fsck(chaos_store_dir)
    print(f"doctor: clean={doctor.clean} "
          f"({doctor.segments_checked} segments, "
          f"{doctor.events_checked} events)")
    for issue in doctor.issues:
        print(f"  ISSUE: {issue}", file=sys.stderr)

    flips = report.records_destroyed - report.truncations
    skipped_enough = sup["records_skipped"] >= flips
    if not skipped_enough:
        print(f"FAIL: decoder skipped {sup['records_skipped']} records, "
              f"expected at least {flips}", file=sys.stderr)
    failed = not (ok and converged and doctor.clean and skipped_enough)
    if not args.keep:
        shutil.rmtree(work)
    print("CHAOS:", "FAIL" if failed else "PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
