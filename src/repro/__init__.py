"""repro — reproduction of "A First Look into Long-lived BGP Zombies" (IMC 2025).

The package is organised bottom-up:

* :mod:`repro.net`, :mod:`repro.bgp` — protocol primitives.
* :mod:`repro.mrt`, :mod:`repro.ris`, :mod:`repro.bgpstream` — the RIPE RIS
  raw-data substrate (binary MRT archives plus a pybgpstream-style reader).
* :mod:`repro.topology`, :mod:`repro.simulator` — a synthetic AS-level
  Internet with BGP propagation and zombie fault injection.
* :mod:`repro.beacons` — the RIS beacon schedule and the paper's new
  beaconing methodology (prefix clocks, recycling).
* :mod:`repro.core` — the paper's contribution: revised zombie detection
  (state reconstruction, double-count elimination, noisy-peer filtering),
  lifespan tracking, resurrection detection, root-cause inference, and
  the legacy (previous-study) baseline.
* :mod:`repro.analysis`, :mod:`repro.experiments` — statistics and the
  table/figure builders of the evaluation.

Extensions implementing the paper's §6 / future work:

* :mod:`repro.dataplane` — FIBs and packet walks (the Fig. 1 loop).
* :mod:`repro.realtime` — streaming detection with alert sinks.
* :mod:`repro.routeviews` — RouteViews archives and merged feeds.
* :mod:`repro.core.wild` — zombie detection without beacons.
* :mod:`repro.beacons.ipv4_clock` / :mod:`repro.beacons.service` — the
  compact IPv4 clock and the long-term beacon service.
* :mod:`repro.cli` — ``python -m repro {report,campaign,replication,detect}``.
"""

__version__ = "1.0.0"

from repro.net import Prefix

__all__ = ["Prefix", "__version__"]
