"""Statistics used by the evaluation figures and tables."""

from repro.analysis.cdf import ECDF
from repro.analysis.compare import ComparisonCounts, PipelineComparison, compare_results
from repro.analysis.concurrency import ConcurrencyStats, concurrent_outbreaks
from repro.analysis.emergence import EmergenceStats, emergence_rates
from repro.analysis.pathlen import PathLengthStats, path_length_analysis
from repro.analysis.suspects import (
    SuspectProfile,
    characterize_suspects,
    inference_confidence,
)

__all__ = [
    "ECDF",
    "ComparisonCounts",
    "PipelineComparison",
    "compare_results",
    "ConcurrencyStats",
    "concurrent_outbreaks",
    "EmergenceStats",
    "emergence_rates",
    "PathLengthStats",
    "path_length_analysis",
    "SuspectProfile",
    "characterize_suspects",
    "inference_confidence",
]
