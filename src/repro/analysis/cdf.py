"""Empirical CDF helper used by every figure builder."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ECDF"]


@dataclass(frozen=True)
class ECDF:
    """An empirical cumulative distribution function.

    >>> cdf = ECDF.from_values([1, 2, 2, 4])
    >>> cdf.at(2)
    0.75
    >>> cdf.quantile(0.5)
    2.0
    """

    xs: tuple[float, ...]
    ps: tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "ECDF":
        data = sorted(float(v) for v in values)
        if not data:
            return cls((), ())
        n = len(data)
        xs: list[float] = []
        ps: list[float] = []
        for index, value in enumerate(data, start=1):
            if xs and xs[-1] == value:
                ps[-1] = index / n
            else:
                xs.append(value)
                ps.append(index / n)
        return cls(tuple(xs), tuple(ps))

    @property
    def n_points(self) -> int:
        return len(self.xs)

    @property
    def is_empty(self) -> bool:
        return not self.xs

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if self.is_empty:
            return 0.0
        index = bisect.bisect_right(self.xs, x)
        return self.ps[index - 1] if index else 0.0

    def quantile(self, p: float) -> float:
        """Smallest x with CDF(x) >= p."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if self.is_empty:
            raise ValueError("empty ECDF has no quantiles")
        index = bisect.bisect_left(self.ps, p)
        return self.xs[min(index, len(self.xs) - 1)]

    def mean(self) -> float:
        if self.is_empty:
            raise ValueError("empty ECDF has no mean")
        weights = np.diff(np.concatenate(([0.0], np.asarray(self.ps))))
        return float(np.dot(self.xs, weights))

    def series(self) -> list[tuple[float, float]]:
        """(x, p) pairs suitable for plotting/printing."""
        return list(zip(self.xs, self.ps))
