"""Cross-pipeline comparison (paper Table 3, Appendix B.1).

The paper diffs its revised results against the previous study's
published data at two granularities: **zombie routes** (interval,
prefix, peer router) and **zombie outbreaks** (interval, prefix).  Each
side "misses" items the other reports; this module computes both
directions, split by address family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import DetectionResult
from repro.core.state import PeerKey
from repro.net.prefix import Prefix

__all__ = ["ComparisonCounts", "PipelineComparison", "compare_results"]

RouteKey = tuple[str, int, PeerKey]       # (prefix, announce_time, peer)
OutbreakKey = tuple[str, int]             # (prefix, announce_time)


@dataclass(frozen=True)
class ComparisonCounts:
    """Missing-item counts in one direction, split by family."""

    routes_v4: int
    routes_v6: int
    outbreaks_v4: int
    outbreaks_v6: int

    @property
    def routes_total(self) -> int:
        return self.routes_v4 + self.routes_v6

    @property
    def outbreaks_total(self) -> int:
        return self.outbreaks_v4 + self.outbreaks_v6


@dataclass(frozen=True)
class PipelineComparison:
    """Both directions of a Table 3 style comparison.

    ``missing_in_a`` counts items present in B's results but absent from
    A's (i.e. what pipeline A *misses*), and vice versa.
    """

    missing_in_a: ComparisonCounts
    missing_in_b: ComparisonCounts


def _route_keys(result: DetectionResult) -> set[RouteKey]:
    keys: set[RouteKey] = set()
    for outbreak in result.outbreaks:
        for route in outbreak.routes:
            keys.add((str(outbreak.prefix), outbreak.interval.announce_time,
                      route.peer))
    return keys


def _outbreak_keys(result: DetectionResult) -> set[OutbreakKey]:
    return {(str(o.prefix), o.interval.announce_time) for o in result.outbreaks}


def _count(keys: set, family_of) -> tuple[int, int]:
    v4 = sum(1 for key in keys if family_of(key))
    return v4, len(keys) - v4


def compare_results(result_a: DetectionResult,
                    result_b: DetectionResult) -> PipelineComparison:
    """Diff two detection runs over the same period."""
    routes_a, routes_b = _route_keys(result_a), _route_keys(result_b)
    outbreaks_a, outbreaks_b = _outbreak_keys(result_a), _outbreak_keys(result_b)

    def is_v4(key) -> bool:
        return Prefix(key[0]).is_ipv4

    a_missing_routes = routes_b - routes_a
    b_missing_routes = routes_a - routes_b
    a_missing_outbreaks = outbreaks_b - outbreaks_a
    b_missing_outbreaks = outbreaks_a - outbreaks_b

    ar_v4, ar_v6 = _count(a_missing_routes, is_v4)
    br_v4, br_v6 = _count(b_missing_routes, is_v4)
    ao_v4, ao_v6 = _count(a_missing_outbreaks, is_v4)
    bo_v4, bo_v6 = _count(b_missing_outbreaks, is_v4)

    return PipelineComparison(
        missing_in_a=ComparisonCounts(ar_v4, ar_v6, ao_v4, ao_v6),
        missing_in_b=ComparisonCounts(br_v4, br_v6, bo_v4, bo_v6),
    )
