"""Concurrent zombie outbreaks (paper Fig. 7).

How many beacon prefixes suffer a zombie outbreak *in the same beacon
slot*?  Outbreaks are grouped by announcement time; Fig. 7 plots the
CDF of the group sizes per address family.  The paper's observation:
a third of outbreaks occur singly, but a sizeable share of IPv4
outbreaks hit all beacons simultaneously (collector-side events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.cdf import ECDF
from repro.core.outbreaks import ZombieOutbreak

__all__ = ["ConcurrencyStats", "concurrent_outbreaks"]


@dataclass(frozen=True)
class ConcurrencyStats:
    """Fig. 7's distributions."""

    cdf_v4: ECDF
    cdf_v6: ECDF
    #: fraction of outbreaks that occurred alone in their slot.
    single_fraction_v4: float
    single_fraction_v6: float


def concurrent_outbreaks(outbreaks: Iterable[ZombieOutbreak]) -> ConcurrencyStats:
    """Group outbreaks by announcement slot and measure concurrency.

    Every outbreak is annotated with the number of same-family outbreaks
    in its slot (including itself); the CDF runs over outbreaks.
    """
    slots_v4: dict[int, int] = {}
    slots_v6: dict[int, int] = {}
    items: list[tuple[bool, int]] = []
    for outbreak in outbreaks:
        slot = outbreak.interval.announce_time
        is_v4 = outbreak.prefix.is_ipv4
        table = slots_v4 if is_v4 else slots_v6
        table[slot] = table.get(slot, 0) + 1
        items.append((is_v4, slot))

    counts_v4 = [slots_v4[slot] for is_v4, slot in items if is_v4]
    counts_v6 = [slots_v6[slot] for is_v4, slot in items if not is_v4]

    def single_fraction(counts: list[int]) -> float:
        return (sum(1 for c in counts if c == 1) / len(counts)) if counts else 0.0

    return ConcurrencyStats(
        cdf_v4=ECDF.from_values(counts_v4),
        cdf_v6=ECDF.from_values(counts_v6),
        single_fraction_v4=single_fraction(counts_v4),
        single_fraction_v6=single_fraction(counts_v6),
    )
