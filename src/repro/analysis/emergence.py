"""Zombie emergence rate (paper Fig. 5, Appendix B.2).

For every ⟨beacon prefix, peer AS⟩ pair, the emergence rate is the
likelihood that an announcement of that beacon ends up stuck at that
peer AS: zombies(pair) / visible(pair).  Fig. 5 plots the CDF of that
likelihood over all pairs, per address family, with and without
double-counting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import ECDF
from repro.core.detector import DetectionResult
from repro.net.prefix import Prefix

__all__ = ["EmergenceStats", "emergence_rates"]


@dataclass(frozen=True)
class EmergenceStats:
    """Per-family emergence-rate distributions plus headline numbers."""

    cdf_v4: ECDF
    cdf_v6: ECDF
    #: fraction of pairs with zero zombie occurrences.
    zero_fraction: float
    #: median emergence likelihood over all pairs.
    median_rate: float
    #: average rate per family (the paper's 0.88 % / 1.82 % style figures).
    mean_rate_v4: float
    mean_rate_v6: float


def emergence_rates(result: DetectionResult) -> EmergenceStats:
    """Compute Fig. 5's distributions from one detection run."""
    rates_v4: list[float] = []
    rates_v6: list[float] = []
    for pair, visible in sorted(result.visible_pairs.items(),
                                key=lambda item: (str(item[0][0]), item[0][1])):
        prefix, _asn = pair
        zombies = result.zombie_pairs.get(pair, 0)
        rate = zombies / visible if visible else 0.0
        (rates_v4 if prefix.is_ipv4 else rates_v6).append(rate)

    all_rates = rates_v4 + rates_v6
    zero_fraction = (sum(1 for r in all_rates if r == 0.0) / len(all_rates)
                     if all_rates else 0.0)
    median_rate = sorted(all_rates)[len(all_rates) // 2] if all_rates else 0.0
    return EmergenceStats(
        cdf_v4=ECDF.from_values(rates_v4),
        cdf_v6=ECDF.from_values(rates_v6),
        zero_fraction=zero_fraction,
        median_rate=median_rate,
        mean_rate_v4=(sum(rates_v4) / len(rates_v4)) if rates_v4 else 0.0,
        mean_rate_v6=(sum(rates_v6) / len(rates_v6)) if rates_v6 else 0.0,
    )
