"""AS-path length analysis (paper Fig. 6, Appendix B.2).

Compares three distributions:

* **normal path (normal peer)** — the path a peer held just before the
  beacon withdrawal, at peers that withdrew correctly;
* **normal path (zombie peer)** — the pre-withdrawal path at peers that
  got stuck;
* **zombie path** — the stuck path at detection time.

The paper's finding: zombie paths are longer (they emerge from path
hunting, i.e. routes BGP had *not* initially selected), and most zombie
paths differ from the pre-withdrawal path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.cdf import ECDF
from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record, UpdateRecord
from repro.core.detector import DetectionResult
from repro.core.state import PeerKey, StateReconstructor

__all__ = ["PathLengthStats", "path_length_analysis"]


@dataclass(frozen=True)
class PathLengthStats:
    """Fig. 6's three CDFs plus the changed-path fraction."""

    normal_at_normal_peers: ECDF
    normal_at_zombie_peers: ECDF
    zombie_paths: ECDF
    #: fraction of zombie routes whose stuck path differs from the
    #: pre-withdrawal path at the same peer (the paper's 96.1 % / 90.03 %).
    changed_path_fraction: float


def path_length_analysis(records: Sequence[Record],
                         result: DetectionResult) -> PathLengthStats:
    """Build Fig. 6's distributions for one detection run.

    ``records`` must be the same stream the detector consumed (the
    pre-withdrawal paths are reconstructed from it).
    """
    by_prefix: dict = {}
    for record in records:
        if isinstance(record, UpdateRecord):
            by_prefix.setdefault(record.prefix, []).append(record)

    zombie_peers_by_interval: dict[BeaconInterval, dict[PeerKey, int]] = {}
    for outbreak in result.outbreaks:
        zombie_peers_by_interval[outbreak.interval] = {
            route.peer: len(route.zombie_path) if route.zombie_path else 0
            for route in outbreak.routes}

    normal_normal: list[int] = []
    normal_zombie: list[int] = []
    zombie_lengths: list[int] = []
    changed = 0
    total_zombies = 0

    for interval in result.visible_intervals:
        window = [r for r in by_prefix.get(interval.prefix, ())
                  if interval.announce_time <= r.timestamp
                  <= interval.withdraw_time]
        state = StateReconstructor(window)
        zombie_peers = zombie_peers_by_interval.get(interval, {})
        for key in state.peers():
            announcement = state.last_announcement(key, interval.prefix,
                                                   interval.withdraw_time)
            if announcement is None:
                continue
            normal_len = len(announcement.attributes.as_path)
            if key in zombie_peers:
                normal_zombie.append(normal_len)
            else:
                normal_normal.append(normal_len)

    for outbreak in result.outbreaks:
        window = [r for r in by_prefix.get(outbreak.prefix, ())
                  if outbreak.interval.announce_time <= r.timestamp
                  <= outbreak.interval.withdraw_time]
        state = StateReconstructor(window)
        for route in outbreak.routes:
            path = route.zombie_path
            if path is None:
                continue
            total_zombies += 1
            zombie_lengths.append(len(path))
            normal = state.last_announcement(route.peer, outbreak.prefix,
                                             outbreak.interval.withdraw_time)
            if normal is None or normal.attributes.as_path != path:
                changed += 1

    return PathLengthStats(
        normal_at_normal_peers=ECDF.from_values(normal_normal),
        normal_at_zombie_peers=ECDF.from_values(normal_zombie),
        zombie_paths=ECDF.from_values(zombie_lengths),
        changed_path_fraction=(changed / total_zombies) if total_zombies else 0.0,
    )
