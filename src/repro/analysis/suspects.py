"""Root-cause AS characterization (the paper's stated future work:
"the improvement of the root cause AS inference algorithm and the
characterization of root cause ASes").

Aggregates palm-tree inferences across many outbreaks into per-suspect
profiles: how often an AS is implicated, how many peers/prefixes it
affected, how large its customer cone is (the paper's impact proxy),
and a confidence score reflecting how unambiguous the inference was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.outbreaks import ZombieOutbreak
from repro.core.rootcause import RootCauseInference, infer_root_cause
from repro.net.prefix import Prefix
from repro.topology.graph import ASTopology

__all__ = ["SuspectProfile", "characterize_suspects", "inference_confidence"]


def inference_confidence(inference: RootCauseInference) -> float:
    """How trustworthy one palm-tree inference is, in [0, 1].

    Heuristics follow the paper's caveats: confidence grows with the
    number of independent zombie paths agreeing on the trunk, and drops
    when the trunk is trivial (branching right at the origin — nothing
    to blame) or when only one path exists (the "previous AS may be the
    real culprit" ambiguity)."""
    if inference.suspect is None:
        return 0.0
    paths = inference.outbreak.zombie_paths()
    n_paths = len(paths)
    if n_paths == 0:
        return 0.0
    agreeing = sum(1 for path in paths
                   if path.has_subpath(inference.tree.trunk[::-1]))
    agreement = agreeing / n_paths
    multiplicity = min(1.0, n_paths / 4.0)  # 4+ witnesses ≈ full weight
    return agreement * (0.5 + 0.5 * multiplicity)


@dataclass
class SuspectProfile:
    """Aggregate behaviour of one suspected root-cause AS."""

    asn: int
    outbreak_count: int = 0
    prefixes: set[Prefix] = field(default_factory=set)
    affected_peer_asns: set[int] = field(default_factory=set)
    total_zombie_routes: int = 0
    confidence_sum: float = 0.0
    customer_cone_size: int = 0
    is_stub: bool = False

    @property
    def mean_confidence(self) -> float:
        return (self.confidence_sum / self.outbreak_count
                if self.outbreak_count else 0.0)

    @property
    def impact_score(self) -> float:
        """The paper's impact framing: repeat offenders with large cones
        affecting many peers score highest."""
        return (self.outbreak_count
                * max(1, len(self.affected_peer_asns))
                * max(1, self.customer_cone_size))

    def __str__(self) -> str:
        return (f"AS{self.asn}: {self.outbreak_count} outbreaks, "
                f"{len(self.prefixes)} prefixes, "
                f"{len(self.affected_peer_asns)} peer ASes affected, "
                f"cone {self.customer_cone_size}, "
                f"confidence {self.mean_confidence:.2f}")


def characterize_suspects(outbreaks: Iterable[ZombieOutbreak],
                          origin_asn: int,
                          topology: Optional[ASTopology] = None
                          ) -> list[SuspectProfile]:
    """Profile every suspected root-cause AS over a set of outbreaks,
    ranked by impact score (descending)."""
    profiles: dict[int, SuspectProfile] = {}
    for outbreak in outbreaks:
        inference = infer_root_cause(outbreak, origin_asn)
        suspect = inference.suspect
        if suspect is None:
            continue
        profile = profiles.get(suspect)
        if profile is None:
            profile = profiles[suspect] = SuspectProfile(asn=suspect)
            if topology is not None and suspect in topology:
                profile.customer_cone_size = topology.customer_cone_size(suspect)
                profile.is_stub = topology.is_stub(suspect)
        profile.outbreak_count += 1
        profile.prefixes.add(outbreak.prefix)
        profile.affected_peer_asns.update(outbreak.peer_asns)
        profile.total_zombie_routes += outbreak.size
        profile.confidence_sum += inference_confidence(inference)
    return sorted(profiles.values(),
                  key=lambda p: (-p.impact_score, p.asn))
