"""Beacon methodologies: RIS 4-hour beacons and the paper's new beacons."""

from repro.beacons.aggregator import AggregatorClock
from repro.beacons.ipv4_clock import IPv4BeaconClock, IPv4BeaconSchedule
from repro.beacons.service import BeaconService, BeaconServiceConfig
from repro.beacons.ris_beacons import (
    RIS_BEACON_ASN,
    RISBeacon,
    RISBeaconSchedule,
    ris_beacons_2018,
)
from repro.beacons.schedule import BeaconAction, BeaconEvent, BeaconInterval, BeaconSchedule
from repro.beacons.zombie_beacons import (
    BEACON_ORIGIN_ASN,
    BEACON_SUPER_PREFIX,
    HOLD_TIME,
    SLOT_PERIOD,
    PaperCampaign,
    RecycleApproach,
    ZombieBeaconSchedule,
    slot_prefix,
)

__all__ = [
    "AggregatorClock",
    "IPv4BeaconClock",
    "IPv4BeaconSchedule",
    "BeaconService",
    "BeaconServiceConfig",
    "RISBeacon",
    "RISBeaconSchedule",
    "RIS_BEACON_ASN",
    "ris_beacons_2018",
    "BeaconAction",
    "BeaconEvent",
    "BeaconInterval",
    "BeaconSchedule",
    "BEACON_ORIGIN_ASN",
    "BEACON_SUPER_PREFIX",
    "HOLD_TIME",
    "SLOT_PERIOD",
    "PaperCampaign",
    "RecycleApproach",
    "ZombieBeaconSchedule",
    "slot_prefix",
]
