"""The RIPE RIS beacon "Aggregator clock".

RIS beacon announcements carry an AGGREGATOR attribute whose IPv4
address field is ``10.x.y.z``, where ``(x<<16)|(y<<8)|z`` is the number
of seconds between midnight UTC on the 1st day of the month and the time
the announcement was *originated*.  The revised methodology decodes this
to recognise stuck routes that belong to a previous announcement and so
eliminate double-counting (paper §3.1).

The clock is ambiguous across months (paper footnote 1): decoding uses
the "best case scenario" — the most recent month start that puts the
decoded origin at or before the observation time.
"""

from __future__ import annotations

import ipaddress

from repro.utils.timeutil import month_start, previous_month_start, seconds_into_month

__all__ = ["AggregatorClock"]

_MAX_COUNT = 2 ** 24 - 1


class AggregatorClock:
    """Codec for the ``10.x.y.z`` seconds-since-month-start convention."""

    PREFIX_OCTET = 10

    @classmethod
    def encode(cls, origin_time: int) -> str:
        """Encode an announcement origin time as an Aggregator address.

        >>> from repro.utils.timeutil import ts
        >>> AggregatorClock.encode(ts(2018, 7, 15, 12))
        '10.19.29.192'
        """
        count = seconds_into_month(origin_time)
        if count > _MAX_COUNT:
            raise ValueError(f"{count} seconds does not fit in 24 bits")
        return f"10.{(count >> 16) & 0xFF}.{(count >> 8) & 0xFF}.{count & 0xFF}"

    @classmethod
    def seconds(cls, address: str) -> int:
        """Extract the 24-bit seconds count from a clock address."""
        ip = ipaddress.IPv4Address(address)
        packed = ip.packed
        if packed[0] != cls.PREFIX_OCTET:
            raise ValueError(f"not an Aggregator clock address: {address}")
        return (packed[1] << 16) | (packed[2] << 8) | packed[3]

    @classmethod
    def decode(cls, address: str, observed_at: int) -> int:
        """Best-case origin time of the announcement carrying ``address``.

        Returns the most recent timestamp ``T`` such that ``T`` is
        ``seconds(address)`` into *some* month and ``T <= observed_at``.

        >>> from repro.utils.timeutil import ts
        >>> AggregatorClock.decode("10.19.29.192", ts(2018, 7, 19, 2, 0, 2)) \
            == ts(2018, 7, 15, 12)
        True
        """
        count = cls.seconds(address)
        candidate = month_start(observed_at) + count
        while candidate > observed_at:
            candidate = previous_month_start(candidate - count) + count
        return candidate

    @classmethod
    def is_clock_address(cls, address: str) -> bool:
        """True if ``address`` is in ``10.0.0.0/8`` (a plausible clock)."""
        try:
            return ipaddress.IPv4Address(address).packed[0] == cls.PREFIX_OCTET
        except (ValueError, ipaddress.AddressValueError):
            return False
