"""Compact IPv4 beacon clock (paper §6).

IPv6 beacons can spell the announcement time directly in prefix digits
(``2a0d:3dc1:1145::/48``); IPv4 cannot — a /16 offers only 256 /24
more-specifics, i.e. 8 bits.  The paper notes that "a compact encoding
schema of the announcement time is necessary to maximize space
utilization".  This module implements that schema:

the /24 index is the slot counter modulo the pool size, so a /16 pool
with 15-minute slots recycles every 256 × 15 min = 64 h.  Decoding is
modular: given an approximate observation time, the most recent matching
slot is recovered (mirroring the Aggregator clock's best-case rule).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator

from repro.beacons.schedule import BeaconInterval, BeaconSchedule
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE, align_up

__all__ = ["IPv4BeaconClock", "IPv4BeaconSchedule"]


@dataclass(frozen=True)
class IPv4BeaconClock:
    """Slot-counter ↔ /24 mapping inside an IPv4 pool.

    >>> clock = IPv4BeaconClock(Prefix("192.0.0.0/16"))
    >>> clock.capacity
    256
    >>> clock.recycle_seconds
    230400
    """

    pool: Prefix
    slot_period: int = 15 * MINUTE
    beacon_prefixlen: int = 24

    def __post_init__(self):
        if not self.pool.is_ipv4:
            raise ValueError("IPv4 clock needs an IPv4 pool")
        if self.beacon_prefixlen <= self.pool.prefixlen:
            raise ValueError("beacon prefixes must be more specific than "
                             "the pool")
        if self.beacon_prefixlen > 24:
            raise ValueError("prefixes longer than /24 are not globally "
                             "routable (paper §6)")
        if self.slot_period <= 0:
            raise ValueError("slot period must be positive")

    @property
    def index_bits(self) -> int:
        return self.beacon_prefixlen - self.pool.prefixlen

    @property
    def capacity(self) -> int:
        """Number of distinct beacon prefixes in the pool."""
        return 1 << self.index_bits

    @property
    def recycle_seconds(self) -> int:
        """Time before a prefix is reused."""
        return self.capacity * self.slot_period

    def slot_index(self, slot_time: int) -> int:
        if slot_time % self.slot_period:
            raise ValueError(f"{slot_time} is not aligned to the "
                             f"{self.slot_period}s slot grid")
        return (slot_time // self.slot_period) % self.capacity

    def encode(self, slot_time: int) -> Prefix:
        """The beacon prefix announced at ``slot_time``."""
        index = self.slot_index(slot_time)
        base = int(ipaddress.IPv4Address(self.pool.network_address))
        shift = 32 - self.beacon_prefixlen
        address = ipaddress.IPv4Address(base | (index << shift))
        return Prefix(f"{address}/{self.beacon_prefixlen}")

    def decode(self, prefix: Prefix, observed_at: int) -> int:
        """Most recent slot time <= ``observed_at`` that maps to
        ``prefix`` (modular best-case, like the Aggregator clock)."""
        if prefix.prefixlen != self.beacon_prefixlen \
                or not self.pool.contains(prefix):
            raise ValueError(f"{prefix} is not a beacon of pool {self.pool}")
        base = int(ipaddress.IPv4Address(self.pool.network_address))
        value = int(ipaddress.IPv4Address(prefix.network_address))
        index = (value - base) >> (32 - self.beacon_prefixlen)
        observed_slot = observed_at // self.slot_period
        # Largest slot counter <= observed_slot congruent to index.
        remainder = observed_slot % self.capacity
        delta = (remainder - index) % self.capacity
        return (observed_slot - delta) * self.slot_period


class IPv4BeaconSchedule(BeaconSchedule):
    """A beacon schedule over an IPv4 pool with the compact clock."""

    def __init__(self, clock: IPv4BeaconClock, origin_asn: int,
                 hold_time: int = 15 * MINUTE):
        if hold_time > clock.recycle_seconds - clock.slot_period:
            raise ValueError("hold time exceeds the recycle budget")
        self.clock = clock
        self.origin_asn = origin_asn
        self.hold_time = hold_time

    def intervals(self, start: int, end: int) -> Iterator[BeaconInterval]:
        slot = align_up(start, self.clock.slot_period)
        while slot < end:
            yield BeaconInterval(
                prefix=self.clock.encode(slot),
                announce_time=slot,
                withdraw_time=slot + self.hold_time,
                origin_asn=self.origin_asn)
            slot += self.clock.slot_period
