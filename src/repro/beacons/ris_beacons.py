"""The RIPE RIS routing beacons.

Every RIS beacon prefix is announced at 00:00, 04:00, ... (every four
hours) and withdrawn two hours later, from the collector's own AS
(AS12654).  At the time of the Fontugne et al. experiments the set was
13 IPv4 and 14 IPv6 prefixes; the registry below follows the real
addressing plan (``84.205.<64+N>.0/24`` and ``2001:7fb:feNN::/48`` for
collector ``rrcNN``).

Announcements carry the Aggregator clock (:class:`AggregatorClock`),
which is what makes double-count elimination possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.beacons.schedule import BeaconInterval, BeaconSchedule
from repro.net.prefix import Prefix
from repro.utils.timeutil import HOUR, align_up

__all__ = ["RISBeacon", "RISBeaconSchedule", "ris_beacons_2018", "RIS_BEACON_ASN"]

RIS_BEACON_ASN = 12654

ANNOUNCE_PERIOD = 4 * HOUR
WITHDRAW_OFFSET = 2 * HOUR


@dataclass(frozen=True)
class RISBeacon:
    """One RIS beacon prefix, tied to its announcing collector."""

    collector: str
    prefix: Prefix

    @property
    def afi_name(self) -> str:
        return "IPv4" if self.prefix.is_ipv4 else "IPv6"


def ris_beacons_2018() -> list[RISBeacon]:
    """The beacon set during the paper's replication periods: 13 IPv4 and
    14 IPv6 prefixes across collectors rrc00–rrc15 (minus retired ones)."""
    beacons: list[RISBeacon] = []
    v4_collectors = [0, 1, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15]
    v6_collectors = [0, 1, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16]
    for index in v4_collectors:
        beacons.append(RISBeacon(f"rrc{index:02d}",
                                 Prefix(f"84.205.{64 + index}.0/24")))
    for index in v6_collectors:
        beacons.append(RISBeacon(f"rrc{index:02d}",
                                 Prefix(f"2001:7fb:fe{index:02x}::/48")))
    return beacons


class RISBeaconSchedule(BeaconSchedule):
    """The 4-hour RIS announce/withdraw cycle for a beacon set."""

    def __init__(self, beacons: Optional[Sequence[RISBeacon]] = None,
                 origin_asn: int = RIS_BEACON_ASN):
        self.beacons = list(beacons) if beacons is not None else ris_beacons_2018()
        self.origin_asn = origin_asn

    def intervals(self, start: int, end: int) -> Iterator[BeaconInterval]:
        slot = align_up(start, ANNOUNCE_PERIOD)
        while slot < end:
            for beacon in self.beacons:
                yield BeaconInterval(
                    prefix=beacon.prefix,
                    announce_time=slot,
                    withdraw_time=slot + WITHDRAW_OFFSET,
                    origin_asn=self.origin_asn,
                )
            slot += ANNOUNCE_PERIOD

    def beacon_for_prefix(self, prefix: Prefix) -> Optional[RISBeacon]:
        for beacon in self.beacons:
            if beacon.prefix == prefix:
                return beacon
        return None
