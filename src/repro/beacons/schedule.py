"""Generic beacon scheduling primitives.

A *beacon schedule* is a deterministic plan of prefix announcements and
withdrawals.  Schedules generate :class:`BeaconEvent` streams that the
simulator executes and that the detector uses as ground truth (we know
exactly when each prefix was announced and withdrawn — the property that
makes beacons the right instrument for zombie studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Optional

from repro.net.prefix import Prefix

__all__ = ["BeaconAction", "BeaconEvent", "BeaconInterval", "BeaconSchedule"]


class BeaconAction(Enum):
    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True)
class BeaconEvent:
    """One scheduled action on one beacon prefix.

    ``origin_time`` is the announcement-origination time encoded into the
    Aggregator clock (equals ``time`` for fresh announcements).
    ``discarded`` marks events the analysis must ignore (approach-B
    prefix collisions, paper footnote 3).
    """

    time: int
    action: BeaconAction
    prefix: Prefix
    origin_asn: int
    origin_time: Optional[int] = None
    discarded: bool = False

    @property
    def is_announce(self) -> bool:
        return self.action is BeaconAction.ANNOUNCE

    @property
    def is_withdraw(self) -> bool:
        return self.action is BeaconAction.WITHDRAW


@dataclass(frozen=True)
class BeaconInterval:
    """One announce→withdraw cycle of one prefix: the unit over which
    zombie outbreaks are defined."""

    prefix: Prefix
    announce_time: int
    withdraw_time: int
    origin_asn: int
    discarded: bool = False

    @property
    def duration(self) -> int:
        return self.withdraw_time - self.announce_time

    def __post_init__(self):
        if self.withdraw_time <= self.announce_time:
            raise ValueError("withdrawal must come after announcement")


class BeaconSchedule:
    """Base class: concrete schedules implement :meth:`intervals`."""

    def intervals(self, start: int, end: int) -> Iterator[BeaconInterval]:
        """Announce/withdraw cycles whose announcement falls in [start, end)."""
        raise NotImplementedError

    def events(self, start: int, end: int) -> Iterator[BeaconEvent]:
        """Flatten intervals into a time-ordered event stream."""
        pending: list[BeaconEvent] = []
        for interval in self.intervals(start, end):
            pending.append(BeaconEvent(interval.announce_time,
                                       BeaconAction.ANNOUNCE, interval.prefix,
                                       interval.origin_asn,
                                       origin_time=interval.announce_time,
                                       discarded=interval.discarded))
            pending.append(BeaconEvent(interval.withdraw_time,
                                       BeaconAction.WITHDRAW, interval.prefix,
                                       interval.origin_asn,
                                       discarded=interval.discarded))
        pending.sort(key=lambda e: (e.time, e.action is BeaconAction.ANNOUNCE,
                                    str(e.prefix)))
        yield from pending

    def prefixes(self, start: int, end: int) -> set[Prefix]:
        """Every prefix the schedule touches in the window."""
        return {interval.prefix for interval in self.intervals(start, end)}
