"""The long-term beacon service (paper §6).

Operators asked for "continued operation of our beacons"; this module
plans such a service: a combined IPv6 + IPv4 schedule with the RPKI
ROAs the announcements need, ground-truth lookup for detectors, and a
coverage self-check (no two live beacons may share a prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.beacons.ipv4_clock import IPv4BeaconClock, IPv4BeaconSchedule
from repro.beacons.schedule import BeaconInterval, BeaconSchedule
from repro.beacons.zombie_beacons import (
    BEACON_ORIGIN_ASN,
    BEACON_SUPER_PREFIX,
    RecycleApproach,
    ZombieBeaconSchedule,
)
from repro.net.prefix import Prefix
from repro.simulator.rpki import ROA

__all__ = ["BeaconServiceConfig", "BeaconService"]


@dataclass(frozen=True)
class BeaconServiceConfig:
    """What the service announces."""

    origin_asn: int = BEACON_ORIGIN_ASN
    v6_pool: Prefix = BEACON_SUPER_PREFIX
    v6_approach: RecycleApproach = RecycleApproach.FIFTEEN_DAYS
    #: optional IPv4 pool (None: IPv6-only, as the paper had to run).
    v4_pool: Optional[Prefix] = None

    def __post_init__(self):
        if not self.v6_pool.is_ipv6:
            raise ValueError("v6_pool must be IPv6")
        if self.v4_pool is not None and not self.v4_pool.is_ipv4:
            raise ValueError("v4_pool must be IPv4")


class BeaconService(BeaconSchedule):
    """A combined, ROA-backed, long-running beacon schedule."""

    def __init__(self, config: Optional[BeaconServiceConfig] = None):
        self.config = config or BeaconServiceConfig()
        self._v6 = ZombieBeaconSchedule(self.config.v6_approach,
                                        self.config.origin_asn)
        self._v4: Optional[IPv4BeaconSchedule] = None
        if self.config.v4_pool is not None:
            clock = IPv4BeaconClock(self.config.v4_pool)
            self._v4 = IPv4BeaconSchedule(clock, self.config.origin_asn)

    # -- schedule --------------------------------------------------------

    def intervals(self, start: int, end: int) -> Iterator[BeaconInterval]:
        merged = list(self._v6.intervals(start, end))
        if self._v4 is not None:
            merged.extend(self._v4.intervals(start, end))
        merged.sort(key=lambda i: (i.announce_time, str(i.prefix)))
        yield from merged

    # -- RPKI ------------------------------------------------------------------

    def required_roas(self, valid_from: int = 0) -> list[ROA]:
        """The ROAs that keep every beacon announcement RPKI-valid."""
        roas = [ROA(self.config.v6_pool, self.config.origin_asn,
                    max_length=48, valid_from=valid_from)]
        if self._v4 is not None:
            roas.append(ROA(self.config.v4_pool, self.config.origin_asn,
                            max_length=self._v4.clock.beacon_prefixlen,
                            valid_from=valid_from))
        return roas

    # -- ground truth -----------------------------------------------------------

    def final_withdrawals(self, start: int, end: int) -> dict[Prefix, int]:
        """Prefix → last scheduled withdrawal in the window (the lifespan
        tracker's ground-truth input)."""
        out: dict[Prefix, int] = {}
        for interval in self.intervals(start, end):
            current = out.get(interval.prefix, 0)
            out[interval.prefix] = max(current, interval.withdraw_time)
        return out

    def validate_window(self, start: int, end: int) -> list[str]:
        """Self-check over a window: no two *kept* intervals of the same
        prefix may overlap (they would corrupt lifespan ground truth)."""
        problems = []
        by_prefix: dict[Prefix, list[BeaconInterval]] = {}
        for interval in self.intervals(start, end):
            if not interval.discarded:
                by_prefix.setdefault(interval.prefix, []).append(interval)
        for prefix, intervals in by_prefix.items():
            intervals.sort(key=lambda i: i.announce_time)
            for earlier, later in zip(intervals, intervals[1:]):
                if later.announce_time < earlier.withdraw_time:
                    problems.append(
                        f"{prefix}: overlapping intervals at "
                        f"{earlier.announce_time} and {later.announce_time}")
        return problems
