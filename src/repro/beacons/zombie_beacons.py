"""The paper's new beaconing methodology (§4).

Every 15 minutes (:00, :15, :30, :45) a different /48 from
``2a0d:3dc1::/32`` is announced by AS210312 and withdrawn 15 minutes
later.  The announcement timestamp is encoded in the prefix bits (a
"BGP clock"), with two recycling approaches:

* **Approach A** (24-hour recycle, 2024-06-04 11:45 → 2024-06-10 09:30):
  hextet ``HHMM`` — e.g. 11:45 → ``2a0d:3dc1:1145::/48``.  96 distinct
  prefixes per day, reused every day.
* **Approach B** (15-day recycle, 2024-06-10 11:30 → 2024-06-22 17:30):
  hextet ``(HH)(minute + day%15)`` — e.g. 18:45 on a day with
  ``day%15 == 6`` → ``2a0d:3dc1:1851::/48``.

Approach B carries the paper's documented bug (footnote 3): because the
remainder is concatenated without padding, some days map two slots to
the same prefix (e.g. 2024-06-15: 00:30 and 03:00 both give
``2a0d:3dc1:30::/48``).  As in the paper, the *earlier* colliding slot
is marked ``discarded`` and excluded from analysis.

Decimal digits are written directly as hextet characters, so "11:45"
becomes the hex value 0x1145 — exactly how the real beacon prefixes
read in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional

from repro.beacons.schedule import BeaconInterval, BeaconSchedule
from repro.net.prefix import Prefix
from repro.utils.timeutil import DAY, MINUTE, align_up, from_iso, to_datetime

__all__ = [
    "RecycleApproach",
    "ZombieBeaconSchedule",
    "PaperCampaign",
    "slot_prefix",
    "BEACON_ORIGIN_ASN",
    "BEACON_SUPER_PREFIX",
    "SLOT_PERIOD",
    "HOLD_TIME",
]

BEACON_ORIGIN_ASN = 210312
BEACON_SUPER_PREFIX = Prefix("2a0d:3dc1::/32")

SLOT_PERIOD = 15 * MINUTE
HOLD_TIME = 15 * MINUTE

#: Paper campaign windows (§4).
APPROACH_A_START = from_iso("2024-06-04 11:45")
APPROACH_A_END = from_iso("2024-06-10 09:30")
APPROACH_B_START = from_iso("2024-06-10 11:30")
APPROACH_B_END = from_iso("2024-06-22 17:30")


class RecycleApproach(Enum):
    """How often a beacon prefix is reused."""

    DAILY = "24h"
    FIFTEEN_DAYS = "15d"

    @property
    def recycle_seconds(self) -> int:
        return DAY if self is RecycleApproach.DAILY else 15 * DAY


def _hextet_from_digits(digits: str) -> int:
    """Interpret a decimal-digit string as hextet characters (0x1145 for
    "1145").  Raises if the value would not fit in 16 bits."""
    value = int(digits, 16)
    if value > 0xFFFF:
        raise ValueError(f"clock digits {digits!r} overflow a hextet")
    return value


def slot_prefix(slot_time: int, approach: RecycleApproach) -> Prefix:
    """The beacon prefix announced at ``slot_time`` under ``approach``."""
    dt = to_datetime(slot_time)
    if dt.minute % 15 or dt.second:
        raise ValueError(f"{dt} is not a :00/:15/:30/:45 slot")
    if approach is RecycleApproach.DAILY:
        digits = f"{dt.hour:02d}{dt.minute:02d}"
    else:
        digits = f"{dt.hour:02d}{dt.minute + dt.day % 15}"
    return Prefix(f"2a0d:3dc1:{_hextet_from_digits(digits):x}::/48")


def decode_slot_a(prefix: Prefix, day_start: int) -> int:
    """Invert approach-A encoding for a given UTC day; returns slot time."""
    hextet = int(str(prefix.network.network_address).split(":")[2] or "0", 16)
    digits = f"{hextet:04x}"
    hour, minute = int(digits[:2]), int(digits[2:])
    if hour > 23 or minute not in (0, 15, 30, 45):
        raise ValueError(f"{prefix} is not an approach-A beacon prefix")
    return day_start + hour * 3600 + minute * 60


@dataclass(frozen=True)
class _Slot:
    time: int
    prefix: Prefix


class ZombieBeaconSchedule(BeaconSchedule):
    """15-minute beacon slots under one recycling approach."""

    def __init__(self, approach: RecycleApproach,
                 origin_asn: int = BEACON_ORIGIN_ASN):
        self.approach = approach
        self.origin_asn = origin_asn

    def _slots(self, start: int, end: int) -> Iterator[_Slot]:
        slot = align_up(start, SLOT_PERIOD)
        while slot < end:
            yield _Slot(slot, slot_prefix(slot, self.approach))
            slot += SLOT_PERIOD

    def intervals(self, start: int, end: int) -> Iterator[BeaconInterval]:
        """Announce/withdraw cycles, with approach-B collisions flagged.

        A collision exists when two slots inside one recycle window map
        to the same prefix; the earlier slot is marked ``discarded``
        (paper footnote 3 studies only the latter).
        """
        slots = list(self._slots(start, end))
        discarded: set[int] = set()
        if self.approach is RecycleApproach.FIFTEEN_DAYS:
            by_day_prefix: dict[tuple[int, Prefix], list[_Slot]] = {}
            for slot in slots:
                day = to_datetime(slot.time).toordinal()
                by_day_prefix.setdefault((day, slot.prefix), []).append(slot)
            for group in by_day_prefix.values():
                for earlier in group[:-1]:
                    discarded.add(earlier.time)
        for slot in slots:
            yield BeaconInterval(
                prefix=slot.prefix,
                announce_time=slot.time,
                withdraw_time=slot.time + HOLD_TIME,
                origin_asn=self.origin_asn,
                discarded=slot.time in discarded,
            )

    def collisions(self, start: int, end: int) -> list[tuple[BeaconInterval, BeaconInterval]]:
        """(discarded, kept) interval pairs that share a prefix and day."""
        intervals = list(self.intervals(start, end))
        pairs = []
        kept = {(i.prefix, to_datetime(i.announce_time).toordinal()): i
                for i in intervals if not i.discarded}
        for interval in intervals:
            if interval.discarded:
                key = (interval.prefix, to_datetime(interval.announce_time).toordinal())
                pairs.append((interval, kept[key]))
        return pairs


class PaperCampaign(BeaconSchedule):
    """The full 18-day 2024 campaign: approach A then approach B, with
    the paper's exact start/end instants."""

    def __init__(self, origin_asn: int = BEACON_ORIGIN_ASN):
        self.origin_asn = origin_asn
        self.approach_a = ZombieBeaconSchedule(RecycleApproach.DAILY, origin_asn)
        self.approach_b = ZombieBeaconSchedule(RecycleApproach.FIFTEEN_DAYS, origin_asn)

    @property
    def start(self) -> int:
        return APPROACH_A_START

    @property
    def end(self) -> int:
        return APPROACH_B_END

    def intervals(self, start: Optional[int] = None,
                  end: Optional[int] = None) -> Iterator[BeaconInterval]:
        start = self.start if start is None else start
        end = self.end if end is None else end
        a_lo, a_hi = max(start, APPROACH_A_START), min(end, APPROACH_A_END)
        if a_lo < a_hi:
            yield from self.approach_a.intervals(a_lo, a_hi)
        b_lo, b_hi = max(start, APPROACH_B_START), min(end, APPROACH_B_END)
        if b_lo < b_hi:
            yield from self.approach_b.intervals(b_lo, b_hi)
