"""BGP protocol model: attributes, messages, RIBs and policy."""

from repro.bgp.attributes import Aggregator, ASPath, Origin, PathAttributes
from repro.bgp.messages import (
    Announcement,
    PeerState,
    Record,
    StateRecord,
    UpdateRecord,
    Withdrawal,
    record_sort_key,
)
from repro.bgp.policy import Relationship, compare_routes, preference_rank, should_export
from repro.bgp.rib import AdjRIB, Route

__all__ = [
    "Aggregator",
    "ASPath",
    "Origin",
    "PathAttributes",
    "Announcement",
    "Withdrawal",
    "PeerState",
    "UpdateRecord",
    "StateRecord",
    "Record",
    "record_sort_key",
    "Relationship",
    "preference_rank",
    "should_export",
    "compare_routes",
    "AdjRIB",
    "Route",
]
