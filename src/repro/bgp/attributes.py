"""BGP path attributes (RFC 4271 subset used by the pipeline).

Only the attributes that matter for zombie detection are modelled in
full: AS_PATH (for path-length analysis and root-cause inference),
AGGREGATOR (whose IP address field carries the RIPE RIS beacon "clock"
that the double-counting filter decodes), plus ORIGIN / NEXT_HOP /
COMMUNITIES for fidelity of the MRT round trip.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.net.asn import validate_asn

__all__ = [
    "Origin",
    "ASPath",
    "Aggregator",
    "PathAttributes",
    "ATTR_ORIGIN",
    "ATTR_AS_PATH",
    "ATTR_NEXT_HOP",
    "ATTR_AGGREGATOR",
    "ATTR_COMMUNITIES",
    "ATTR_MP_REACH_NLRI",
    "ATTR_MP_UNREACH_NLRI",
]

# Attribute type codes (RFC 4271 / 4760 / 1997).
ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_AGGREGATOR = 7
ATTR_COMMUNITIES = 8
ATTR_MP_REACH_NLRI = 14
ATTR_MP_UNREACH_NLRI = 15


class Origin:
    """ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2

    _NAMES = {0: "IGP", 1: "EGP", 2: "INCOMPLETE"}

    @classmethod
    def name(cls, value: int) -> str:
        return cls._NAMES.get(value, f"UNKNOWN({value})")


@dataclass(frozen=True)
class ASPath:
    """An AS_PATH as a flat AS_SEQUENCE (AS_SETs are not produced by the
    simulator; the decoder flattens them if encountered).

    >>> ASPath.from_string("4637 1299 25091 8298 210312").origin_as
    210312
    """

    asns: tuple[int, ...]

    def __post_init__(self):
        for asn in self.asns:
            validate_asn(asn)

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse a space-separated AS path string."""
        return cls(tuple(int(token) for token in text.split()))

    @classmethod
    def of(cls, *asns: int) -> "ASPath":
        return cls(tuple(asns))

    @property
    def origin_as(self) -> int:
        """The rightmost AS — the route's originator."""
        if not self.asns:
            raise ValueError("empty AS path has no origin")
        return self.asns[-1]

    @property
    def head(self) -> int:
        """The leftmost AS — the neighbour that sent the route."""
        if not self.asns:
            raise ValueError("empty AS path has no head")
        return self.asns[0]

    def prepend(self, asn: int) -> "ASPath":
        """Return a new path with ``asn`` prepended (as done at export)."""
        validate_asn(asn)
        return ASPath((asn,) + self.asns)

    def contains(self, asn: int) -> bool:
        """Loop check: is ``asn`` already in the path?"""
        return asn in self.asns

    def has_subpath(self, sub: Sequence[int]) -> bool:
        """True if ``sub`` occurs as a contiguous subsequence.

        The paper groups zombie routes by "common subpath" (e.g.
        ``4637 1299 25091 8298 210312``); this implements that test.
        """
        sub = tuple(sub)
        if not sub:
            return True
        n, m = len(self.asns), len(sub)
        return any(self.asns[i:i + m] == sub for i in range(n - m + 1))

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self):
        return iter(self.asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self.asns)


@dataclass(frozen=True)
class Aggregator:
    """AGGREGATOR attribute: (ASN, IPv4 address).

    RIPE RIS beacons abuse the address field as a clock: ``10.x.y.z``
    where ``(x << 16) | (y << 8) | z`` is the number of seconds since
    midnight UTC on the 1st of the month of the announcement.  The codec
    for that convention lives in :mod:`repro.beacons.aggregator`; this
    class is the plain protocol attribute.
    """

    asn: int
    address: str

    def __post_init__(self):
        validate_asn(self.asn)
        ipaddress.IPv4Address(self.address)  # validates

    def address_bytes(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_bytes(cls, asn: int, data: bytes) -> "Aggregator":
        return cls(asn, str(ipaddress.IPv4Address(data)))

    def __str__(self) -> str:
        return f"{self.asn} {self.address}"


@dataclass(frozen=True)
class PathAttributes:
    """The attribute bundle attached to an announcement."""

    as_path: ASPath
    next_hop: str = "::"
    origin: int = Origin.IGP
    aggregator: Optional[Aggregator] = None
    communities: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self):
        ipaddress.ip_address(self.next_hop)  # validates v4 or v6
        if self.origin not in (Origin.IGP, Origin.EGP, Origin.INCOMPLETE):
            raise ValueError(f"invalid ORIGIN value {self.origin}")
        for high, low in self.communities:
            if not (0 <= high <= 0xFFFF and 0 <= low <= 0xFFFF):
                raise ValueError(f"invalid community {high}:{low}")

    @property
    def origin_as(self) -> int:
        return self.as_path.origin_as

    def with_prepended(self, asn: int, next_hop: Optional[str] = None) -> "PathAttributes":
        """Attributes as re-exported by ``asn`` (path prepended, next hop
        rewritten to the exporter's address when provided)."""
        return PathAttributes(
            as_path=self.as_path.prepend(asn),
            next_hop=next_hop if next_hop is not None else self.next_hop,
            origin=self.origin,
            aggregator=self.aggregator,
            communities=self.communities,
        )

    def community_strings(self) -> list[str]:
        return [f"{high}:{low}" for high, low in self.communities]
