"""JSON (de)serialisation of collected records and path attributes.

MRT is the archive wire format; this module is the *state* wire format:
checkpoints and detector snapshots (:mod:`repro.observatory`) need to
persist individual records — most importantly the "last announcement"
that makes a zombie route PRESENT — inside JSON documents.  The mapping
is lossless for every field the pipeline models, so a record survives a
``record_to_json``/``record_from_json`` round trip unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bgp.attributes import Aggregator, ASPath, PathAttributes
from repro.bgp.messages import (
    Announcement,
    PeerState,
    Record,
    StateRecord,
    UpdateRecord,
    Withdrawal,
)
from repro.net.prefix import Prefix

__all__ = ["attributes_to_json", "attributes_from_json",
           "record_to_json", "record_from_json"]


def attributes_to_json(attributes: PathAttributes) -> dict[str, Any]:
    """A JSON-safe dict capturing every modelled attribute field."""
    payload: dict[str, Any] = {
        "as_path": list(attributes.as_path.asns),
        "next_hop": attributes.next_hop,
        "origin": attributes.origin,
    }
    if attributes.aggregator is not None:
        payload["aggregator"] = {"asn": attributes.aggregator.asn,
                                 "address": attributes.aggregator.address}
    if attributes.communities:
        payload["communities"] = [list(pair) for pair in attributes.communities]
    return payload


def attributes_from_json(payload: dict[str, Any]) -> PathAttributes:
    aggregator: Optional[Aggregator] = None
    if payload.get("aggregator") is not None:
        aggregator = Aggregator(payload["aggregator"]["asn"],
                                payload["aggregator"]["address"])
    communities = tuple((int(high), int(low))
                        for high, low in payload.get("communities", ()))
    return PathAttributes(
        as_path=ASPath.of(*payload["as_path"]),
        next_hop=payload["next_hop"],
        origin=payload["origin"],
        aggregator=aggregator,
        communities=communities,
    )


def record_to_json(record: Record) -> dict[str, Any]:
    """Serialise an :class:`UpdateRecord` or :class:`StateRecord`."""
    base = {
        "timestamp": record.timestamp,
        "collector": record.collector,
        "peer_address": record.peer_address,
        "peer_asn": record.peer_asn,
    }
    if isinstance(record, StateRecord):
        base["kind"] = "state"
        base["old_state"] = record.old_state.value
        base["new_state"] = record.new_state.value
        return base
    assert isinstance(record, UpdateRecord)
    base["prefix"] = str(record.prefix)
    if record.is_announcement:
        base["kind"] = "announce"
        base["attributes"] = attributes_to_json(record.message.attributes)
    else:
        base["kind"] = "withdraw"
    return base


def record_from_json(payload: dict[str, Any]) -> Record:
    """Inverse of :func:`record_to_json`."""
    kind = payload["kind"]
    if kind == "state":
        return StateRecord(
            payload["timestamp"], payload["collector"],
            payload["peer_address"], payload["peer_asn"],
            PeerState(payload["old_state"]), PeerState(payload["new_state"]))
    prefix = Prefix(payload["prefix"])
    if kind == "announce":
        message = Announcement(prefix, attributes_from_json(payload["attributes"]))
    elif kind == "withdraw":
        message = Withdrawal(prefix)
    else:
        raise ValueError(f"unknown record kind: {kind!r}")
    return UpdateRecord(payload["timestamp"], payload["collector"],
                        payload["peer_address"], payload["peer_asn"], message)
