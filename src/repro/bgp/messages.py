"""BGP message and collected-record model.

Two layers are distinguished:

* *Protocol messages* — :class:`Announcement`, :class:`Withdrawal` — what
  a BGP speaker sends to a neighbour.  They carry no timestamp; timing is
  a property of observation.
* *Collected records* — :class:`UpdateRecord`, :class:`StateRecord` — a
  protocol message (or session state change) as observed by a route
  collector from a specific peer at a specific time.  These are what MRT
  files serialise and what the detection pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.bgp.attributes import PathAttributes
from repro.net.prefix import Prefix

__all__ = [
    "Announcement",
    "Withdrawal",
    "PeerState",
    "UpdateRecord",
    "StateRecord",
    "Record",
]


@dataclass(frozen=True)
class Announcement:
    """A reachability announcement for one prefix."""

    prefix: Prefix
    attributes: PathAttributes

    @property
    def origin_as(self) -> int:
        return self.attributes.origin_as

    def __str__(self) -> str:
        return f"A {self.prefix} path[{self.attributes.as_path}]"


@dataclass(frozen=True)
class Withdrawal:
    """A withdrawal of one prefix."""

    prefix: Prefix

    def __str__(self) -> str:
        return f"W {self.prefix}"


Message = Union[Announcement, Withdrawal]


class PeerState(Enum):
    """BGP FSM states relevant to collector STATE messages (RFC 4271 §8)."""

    IDLE = 1
    CONNECT = 2
    ACTIVE = 3
    OPENSENT = 4
    OPENCONFIRM = 5
    ESTABLISHED = 6


@dataclass(frozen=True)
class UpdateRecord:
    """A BGP UPDATE observed by a collector.

    ``peer_address``/``peer_asn`` identify the RIS peer *router* that sent
    the update to the collector.  A peer AS may contribute several peer
    routers (distinct addresses), as with the paper's noisy peer AS211509.
    """

    timestamp: int
    collector: str
    peer_address: str
    peer_asn: int
    message: Message

    @property
    def is_withdrawal(self) -> bool:
        return isinstance(self.message, Withdrawal)

    @property
    def is_announcement(self) -> bool:
        return isinstance(self.message, Announcement)

    @property
    def prefix(self) -> Prefix:
        return self.message.prefix

    @property
    def attributes(self) -> Optional[PathAttributes]:
        if isinstance(self.message, Announcement):
            return self.message.attributes
        return None

    def __str__(self) -> str:
        kind = "W" if self.is_withdrawal else "A"
        return (f"{self.timestamp} {self.collector} {self.peer_address} "
                f"(AS{self.peer_asn}) {kind} {self.prefix}")


@dataclass(frozen=True)
class StateRecord:
    """A collector/peer BGP session state change (MRT BGP4MP_STATE_CHANGE).

    A transition *out of* ESTABLISHED invalidates everything previously
    learned from the peer; a transition back *into* ESTABLISHED means the
    peer re-announces its table.  The state reconstructor uses these to
    avoid counting stale knowledge across session resets.
    """

    timestamp: int
    collector: str
    peer_address: str
    peer_asn: int
    old_state: PeerState
    new_state: PeerState

    @property
    def is_session_down(self) -> bool:
        return (self.old_state == PeerState.ESTABLISHED
                and self.new_state != PeerState.ESTABLISHED)

    @property
    def is_session_up(self) -> bool:
        return (self.new_state == PeerState.ESTABLISHED
                and self.old_state != PeerState.ESTABLISHED)

    def __str__(self) -> str:
        return (f"{self.timestamp} {self.collector} {self.peer_address} "
                f"(AS{self.peer_asn}) STATE {self.old_state.name}->"
                f"{self.new_state.name}")


Record = Union[UpdateRecord, StateRecord]


def record_sort_key(record: Record) -> tuple:
    """Stable ordering for mixed record streams: by time, then peer, and
    STATE records before UPDATE records at the same instant (a session
    must be up before updates flow on it)."""
    is_update = isinstance(record, UpdateRecord)
    return (record.timestamp, record.collector, record.peer_address, is_update)
