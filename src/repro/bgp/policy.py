"""Inter-domain routing policy: Gao-Rexford model.

ASes prefer customer routes over peer routes over provider routes
(economics), and export valley-free: routes learned from a peer or a
provider are re-exported only to customers.  The simulator's route
selection uses :func:`preference_rank` first, then AS-path length, then a
deterministic tiebreak, mirroring the BGP decision process closely enough
for withdrawal/path-hunting dynamics to emerge.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.bgp.attributes import PathAttributes

__all__ = ["Relationship", "preference_rank", "should_export", "compare_routes"]


class Relationship(Enum):
    """The business relationship of a neighbour, from the local AS's view."""

    CUSTOMER = "customer"   # neighbour pays us
    PEER = "peer"           # settlement-free
    PROVIDER = "provider"   # we pay the neighbour

    @property
    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Lower rank is more preferred (maps to LOCAL_PREF ordering).
_PREFERENCE = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


def preference_rank(relationship: Relationship) -> int:
    """Gao-Rexford local preference rank; lower wins."""
    return _PREFERENCE[relationship]


def should_export(learned_from: Optional[Relationship],
                  export_to: Relationship) -> bool:
    """Valley-free export rule.

    ``learned_from`` is ``None`` for locally originated routes, which are
    exported to everyone.  Routes learned from customers are exported to
    everyone; routes learned from peers/providers go only to customers.
    """
    if learned_from is None or learned_from is Relationship.CUSTOMER:
        return True
    return export_to is Relationship.CUSTOMER


def compare_routes(rel_a: Optional[Relationship], attrs_a: PathAttributes,
                   rel_b: Optional[Relationship], attrs_b: PathAttributes,
                   tiebreak_a: int, tiebreak_b: int) -> int:
    """BGP decision process over two candidate routes.

    Returns a negative number if route *a* wins, positive if *b* wins.
    Order: local preference (relationship), AS-path length, then the
    caller-supplied deterministic tiebreak (lowest neighbour id, standing
    in for lowest router-id).  Locally originated routes (``rel`` None)
    always beat learned routes.
    """
    pref_a = -1 if rel_a is None else preference_rank(rel_a)
    pref_b = -1 if rel_b is None else preference_rank(rel_b)
    if pref_a != pref_b:
        return pref_a - pref_b
    if len(attrs_a.as_path) != len(attrs_b.as_path):
        return len(attrs_a.as_path) - len(attrs_b.as_path)
    return tiebreak_a - tiebreak_b
