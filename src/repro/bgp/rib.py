"""Routing Information Base structures.

:class:`Route` is the value stored against a prefix; :class:`AdjRIB`
models a single Adj-RIB-In (one per neighbour inside a simulated router,
and one per RIS peer inside the collector tap that produces the 8-hourly
``bview`` dumps the lifespan analysis consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.bgp.attributes import PathAttributes
from repro.net.prefix import Prefix

__all__ = ["Route", "AdjRIB"]


@dataclass(frozen=True)
class Route:
    """A route as installed in a RIB: prefix + attributes + install time."""

    prefix: Prefix
    attributes: PathAttributes
    installed_at: int

    @property
    def as_path(self):
        return self.attributes.as_path

    @property
    def origin_as(self) -> int:
        return self.attributes.origin_as

    def __str__(self) -> str:
        return f"{self.prefix} via [{self.attributes.as_path}] @{self.installed_at}"


class AdjRIB:
    """A per-neighbour RIB: the set of routes currently learned from one
    BGP neighbour, with last-modification bookkeeping.

    >>> rib = AdjRIB()
    >>> rib.is_empty
    True
    """

    def __init__(self):
        self._routes: dict[Prefix, Route] = {}

    @property
    def is_empty(self) -> bool:
        return not self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def get(self, prefix: Prefix) -> Optional[Route]:
        return self._routes.get(prefix)

    def install(self, route: Route) -> Optional[Route]:
        """Install/replace the route for its prefix; returns the evicted
        route, if any (implicit withdrawal semantics)."""
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return previous

    def remove(self, prefix: Prefix) -> Optional[Route]:
        """Remove and return the route for ``prefix`` (None if absent)."""
        return self._routes.pop(prefix, None)

    def clear(self) -> list[Route]:
        """Drop every route (session went down); returns what was lost."""
        lost = list(self._routes.values())
        self._routes.clear()
        return lost

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._routes.keys())

    def routes(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def snapshot(self) -> dict[Prefix, Route]:
        """A shallow copy of the current table (for RIB dumps)."""
        return dict(self._routes)
