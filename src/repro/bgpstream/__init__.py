"""pybgpstream-compatible stream facade over the RIS archive."""

from repro.bgpstream.stream import BGPElem, BGPStream, FilterError

__all__ = ["BGPStream", "BGPElem", "FilterError"]
