"""pybgpstream-compatible stream facade over the RIS archive."""

from repro.bgpstream.stream import BGPElem, BGPStream, FilterError, compile_filter

__all__ = ["BGPStream", "BGPElem", "FilterError", "compile_filter"]
