"""pybgpstream-compatible facade over :class:`repro.ris.Archive`.

The paper's pipeline is what a real deployment would write against
pybgpstream; this module provides the same element interface so the
detection code ports to live BGPStream unchanged:

>>> stream = BGPStream(archive, from_time="2024-06-04 00:00",
...                    until_time="2024-06-05 00:00",
...                    record_type="updates",
...                    filter="prefix more 2a0d:3dc1::/32")   # doctest: +SKIP
>>> for elem in stream: ...                                   # doctest: +SKIP

Supported filter terms (a practical subset of the BGPStream filter
language): ``prefix exact P``, ``prefix more P`` (P and more specifics),
``peer A``, ``collector C``, ``ipversion 4|6``, ``type updates|withdrawals
|announcements``, joined by ``and``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Optional, Sequence, Union

from repro.bgp.messages import StateRecord, UpdateRecord
from repro.net.prefix import Prefix
from repro.ris.archive import Archive
from repro.ris.pushdown import RecordFilter
from repro.utils.timeutil import from_iso

__all__ = ["BGPStream", "BGPElem", "FilterError", "compile_filter"]


class FilterError(ValueError):
    """The filter string could not be parsed."""


@lru_cache(maxsize=8192)
def _parse_prefix(text: str) -> Prefix:
    """Parse-once prefix cache: element streams repeat the same prefix
    strings thousands of times, and :class:`Prefix` is immutable."""
    return Prefix(text)


@dataclass(frozen=True)
class BGPElem:
    """One stream element, mirroring pybgpstream's ``BGPElem``.

    ``type`` is ``"A"`` (announcement), ``"W"`` (withdrawal), ``"S"``
    (peer state change) or ``"R"`` (RIB row).  Route details live in
    ``fields`` under pybgpstream's key names (``prefix``, ``as-path``,
    ``next-hop``, ``communities``).
    """

    type: str
    time: int
    collector: str
    peer_asn: int
    peer_address: str
    fields: dict = field(default_factory=dict)

    @property
    def prefix(self) -> Optional[Prefix]:
        raw = self.fields.get("prefix")
        return _parse_prefix(raw) if raw is not None else None

    @property
    def as_path(self) -> Optional[str]:
        return self.fields.get("as-path")


class _Filter:
    """Parsed filter string."""

    def __init__(self, text: Optional[str]):
        self.prefix_exact: Optional[Prefix] = None
        self.prefix_more: Optional[Prefix] = None
        self.peers: set[int] = set()
        self.collectors: set[str] = set()
        self.ipversion: Optional[int] = None
        self.elem_types: set[str] = set()
        if text:
            self._parse(text)

    def _parse(self, text: str) -> None:
        for clause in text.split(" and "):
            tokens = clause.split()
            if not tokens:
                continue
            keyword = tokens[0]
            try:
                if keyword == "prefix":
                    mode, value = tokens[1], tokens[2]
                    if mode == "exact":
                        self.prefix_exact = Prefix(value)
                    elif mode == "more":
                        self.prefix_more = Prefix(value)
                    else:
                        raise FilterError(f"unknown prefix mode {mode!r}")
                elif keyword == "peer":
                    if len(tokens) < 2:
                        raise FilterError(f"clause {clause!r} needs a value")
                    self.peers.update(int(t) for t in tokens[1:])
                elif keyword == "collector":
                    if len(tokens) < 2:
                        raise FilterError(f"clause {clause!r} needs a value")
                    self.collectors.update(tokens[1:])
                elif keyword == "ipversion":
                    self.ipversion = int(tokens[1])
                elif keyword == "type":
                    mapping = {"updates": {"A", "W"}, "announcements": {"A"},
                               "withdrawals": {"W"}}
                    self.elem_types.update(mapping[tokens[1]])
                else:
                    raise FilterError(f"unknown filter keyword {keyword!r}")
            except (IndexError, ValueError, KeyError) as exc:
                if isinstance(exc, FilterError):
                    raise
                raise FilterError(f"cannot parse clause {clause!r}") from exc

    def match_prefix(self, prefix: Prefix) -> bool:
        if self.ipversion == 4 and not prefix.is_ipv4:
            return False
        if self.ipversion == 6 and not prefix.is_ipv6:
            return False
        if self.prefix_exact is not None and prefix != self.prefix_exact:
            return False
        if self.prefix_more is not None and not self.prefix_more.contains(prefix):
            return False
        return True

    def match_elem(self, elem: BGPElem) -> bool:
        if self.elem_types and elem.type not in self.elem_types:
            return False
        if self.peers and elem.peer_asn not in self.peers:
            return False
        if self.collectors and elem.collector not in self.collectors:
            return False
        if elem.type in ("A", "W", "R"):
            return self.match_prefix(_parse_prefix(elem.fields["prefix"]))
        # State elems carry no prefix: they cannot match a prefix clause.
        has_prefix_clause = (self.prefix_exact is not None
                             or self.prefix_more is not None
                             or self.ipversion is not None)
        return not has_prefix_clause

    def to_record_filter(self) -> RecordFilter:
        """The archive-side push-down equivalent of this filter."""
        return RecordFilter(
            peers=frozenset(self.peers),
            collectors=frozenset(self.collectors),
            ipversion=self.ipversion,
            elem_types=frozenset(self.elem_types),
            prefix_exact=self.prefix_exact,
            prefix_more=self.prefix_more,
        )


def compile_filter(text: Optional[str]) -> RecordFilter:
    """Compile a BGPStream filter string into a pushed-down
    :class:`~repro.ris.pushdown.RecordFilter` usable directly with
    :meth:`repro.ris.Archive.iter_updates`."""
    return _Filter(text).to_record_filter()


class BGPStream:
    """Iterate archive data as :class:`BGPElem` objects."""

    def __init__(self, archive: Union[Archive, str],
                 from_time: Union[int, str],
                 until_time: Union[int, str],
                 collectors: Optional[Sequence[str]] = None,
                 record_type: str = "updates",
                 filter: Optional[str] = None,
                 workers: int = 1):
        self.archive = (archive if isinstance(archive, Archive)
                        else Archive(archive, workers=workers))
        self.from_time = from_time if isinstance(from_time, int) else from_iso(from_time)
        self.until_time = until_time if isinstance(until_time, int) else from_iso(until_time)
        if record_type not in ("updates", "ribs"):
            raise ValueError(f"record_type must be 'updates' or 'ribs', got {record_type!r}")
        self.record_type = record_type
        self.collectors = list(collectors) if collectors else None
        self._filter = _Filter(filter)
        if self.collectors is None and self._filter.collectors:
            self.collectors = sorted(self._filter.collectors)

    def __iter__(self) -> Iterator[BGPElem]:
        if self.record_type == "updates":
            yield from self._iter_updates()
        else:
            yield from self._iter_ribs()

    def _iter_updates(self) -> Iterator[BGPElem]:
        # Filter clauses are pushed down into the archive read path
        # (file-index skipping, NLRI prematch, record-level match), so
        # every record that comes back is already a match.
        record_filter = self._filter.to_record_filter()
        try:
            records = self.archive.iter_updates(
                self.from_time, self.until_time, self.collectors,
                record_filter=record_filter)
        except TypeError:
            # Substrate without push-down support (duck-typed archive):
            # fall back to element-level filtering.
            for record in self.archive.iter_updates(
                    self.from_time, self.until_time, self.collectors):
                elem = _record_to_elem(record)
                if self._filter.match_elem(elem):
                    yield elem
            return
        for record in records:
            yield _record_to_elem(record)

    def _iter_ribs(self) -> Iterator[BGPElem]:
        for dump in self.archive.iter_ribs(self.from_time, self.until_time,
                                           self.collectors):
            for prefix in sorted(dump.entries.keys()):
                for peer, entry in dump.routes_for(prefix):
                    elem = BGPElem(
                        type="R",
                        time=dump.timestamp,
                        collector=dump.collector,
                        peer_asn=peer.asn,
                        peer_address=peer.address,
                        fields={
                            "prefix": str(prefix),
                            "as-path": str(entry.attributes.as_path),
                            "next-hop": entry.attributes.next_hop,
                            "originated": entry.originated_time,
                        },
                    )
                    if self._filter.match_elem(elem):
                        yield elem


def _record_to_elem(record) -> BGPElem:
    if isinstance(record, StateRecord):
        return BGPElem(
            type="S",
            time=record.timestamp,
            collector=record.collector,
            peer_asn=record.peer_asn,
            peer_address=record.peer_address,
            fields={"old-state": record.old_state.name.lower(),
                    "new-state": record.new_state.name.lower()},
        )
    assert isinstance(record, UpdateRecord)
    fields = {"prefix": str(record.prefix)}
    if record.is_announcement:
        attrs = record.attributes
        fields["as-path"] = str(attrs.as_path)
        fields["next-hop"] = attrs.next_hop
        if attrs.communities:
            fields["communities"] = attrs.community_strings()
        if attrs.aggregator is not None:
            fields["aggregator"] = str(attrs.aggregator)
    return BGPElem(
        type="A" if record.is_announcement else "W",
        time=record.timestamp,
        collector=record.collector,
        peer_asn=record.peer_asn,
        peer_address=record.peer_address,
        fields=fields,
    )
