"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``report``       regenerate every table/figure (paper-vs-measured text)
``campaign``     run the 2024 beacon campaign and print §5 results
``replication``  run the §3 replication periods and print Tables 1-4
``detect``       run the revised detector over an on-disk RIS archive
``index``        write sidecar file indexes for an existing archive
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A First Look into Long-lived BGP "
                    "Zombies' (IMC 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate all tables/figures")
    report.add_argument("--quick", action="store_true",
                        help="small world and short windows (~30 s)")
    report.add_argument("--days", type=int, default=6,
                        help="days per replication period (default 6)")

    campaign = sub.add_parser("campaign", help="2024 beacon campaign (§5)")
    campaign.add_argument("--full", action="store_true",
                          help="full 18-day campaign at paper scale")

    replication = sub.add_parser("replication",
                                 help="replication of the previous study (§3)")
    replication.add_argument("--days", type=int, default=5)
    replication.add_argument("--period", choices=["2018", "2017-oct",
                                                  "2017-mar", "all"],
                             default="all")

    detect = sub.add_parser(
        "detect", help="detect zombies in an on-disk RIS archive")
    detect.add_argument("archive", help="archive root directory")
    detect.add_argument("--from-time", required=True,
                        help="window start, e.g. '2024-06-04 00:00'")
    detect.add_argument("--until-time", required=True)
    detect.add_argument("--beacons", choices=["ris", "zombie-24h",
                                              "zombie-15d", "campaign"],
                        default="campaign",
                        help="which beacon schedule defines the intervals")
    detect.add_argument("--threshold-minutes", type=int, default=90)
    detect.add_argument("--no-dedup", action="store_true",
                        help="disable Aggregator double-count elimination")
    detect.add_argument("--workers", type=int, default=1,
                        help="decode archive files on N worker processes")
    detect.add_argument("--filter", default=None,
                        help="BGPStream filter pushed down into the read "
                             "path, e.g. 'peer 25091 and ipversion 6'")

    index = sub.add_parser(
        "index", help="write sidecar file indexes for an existing archive")
    index.add_argument("archive", help="archive root directory")
    index.add_argument("--rebuild", action="store_true",
                       help="rewrite sidecars even when fresh ones exist")
    return parser


def _cmd_report(args) -> int:
    from repro.reporting import generate

    generate(quick=args.quick, days=args.days)
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiments import (
        build_figure2,
        build_figure3,
        build_table5,
        campaign_run,
        render_figure2,
        render_figure3,
        render_table5,
    )

    run = campaign_run(quick=not args.full)
    print(f"{run.announcement_count} announcements, "
          f"{len(run.records)} records")
    print(render_figure2(build_figure2(
        run, thresholds_minutes=(90, 120, 150, 170, 175, 180))))
    print(render_table5(build_table5(run)))
    print(render_figure3(build_figure3(run)))
    return 0


def _cmd_replication(args) -> int:
    from repro.experiments import (
        build_table1,
        build_table2,
        build_table4,
        render_table1,
        render_table2,
        render_table4,
        replication_run,
        replication_runs,
    )

    if args.period == "all":
        runs = replication_runs(days=args.days)
    else:
        runs = [replication_run(args.period, days=args.days)]
    print(render_table1(build_table1(runs)))
    print(render_table2(build_table2(runs)))
    for run in runs:
        if run.config.name == "2018":
            print(render_table4(build_table4(run)))
    return 0


def _cmd_detect(args) -> int:
    from repro.beacons import (
        PaperCampaign,
        RecycleApproach,
        RISBeaconSchedule,
        ZombieBeaconSchedule,
    )
    from repro.core import DetectorConfig, ZombieDetector
    from repro.ris import Archive
    from repro.utils.timeutil import MINUTE, from_iso

    start = from_iso(args.from_time)
    end = from_iso(args.until_time)
    schedules = {
        "ris": RISBeaconSchedule(),
        "zombie-24h": ZombieBeaconSchedule(RecycleApproach.DAILY),
        "zombie-15d": ZombieBeaconSchedule(RecycleApproach.FIFTEEN_DAYS),
        "campaign": PaperCampaign(),
    }
    schedule = schedules[args.beacons]
    intervals = list(schedule.intervals(start, end))
    if not intervals:
        print("no beacon intervals in the window", file=sys.stderr)
        return 1
    record_filter = None
    if args.filter:
        from repro.bgpstream import FilterError, compile_filter

        try:
            record_filter = compile_filter(args.filter)
        except FilterError as exc:
            print(f"bad --filter: {exc}", file=sys.stderr)
            return 2
    archive = Archive(args.archive, workers=args.workers)
    records = list(archive.iter_updates(
        start, end + args.threshold_minutes * MINUTE + 3600,
        record_filter=record_filter))
    config = DetectorConfig(threshold=args.threshold_minutes * MINUTE,
                            dedup=not args.no_dedup)
    result = ZombieDetector(config).detect(records, intervals)
    print(f"intervals: {len(intervals)}, visible: {result.visible_count}, "
          f"outbreaks: {result.outbreak_count} "
          f"({result.outbreak_fraction():.2%})")
    for outbreak in result.outbreaks:
        subpath = " ".join(str(a) for a in outbreak.common_subpath())
        print(f"  {outbreak} | common subpath [{subpath}]")
    return 0


def _cmd_index(args) -> int:
    from repro.ris import reindex_archive

    try:
        written = reindex_archive(args.archive, rebuild=args.rebuild)
    except FileNotFoundError:
        print(f"archive root does not exist: {args.archive}", file=sys.stderr)
        return 2
    print(f"indexed {written} update file(s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "report": _cmd_report,
        "campaign": _cmd_campaign,
        "replication": _cmd_replication,
        "detect": _cmd_detect,
        "index": _cmd_index,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
