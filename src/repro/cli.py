"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``report``       regenerate every table/figure (paper-vs-measured text)
``campaign``     run the 2024 beacon campaign and print §5 results
``replication``  run the §3 replication periods and print Tables 1-4
``detect``       run the revised detector over an on-disk RIS archive
``index``        write sidecar file indexes for an existing archive
``observatory``  the long-running detection service (§6):
                 ``synth`` / ``ingest`` / ``serve`` / ``tail`` /
                 ``query`` / ``compact`` / ``doctor`` /
                 ``fleet {serve,status,worker}``
``mirror``       the archive transport layer:
                 ``serve`` / ``sync`` / ``watch`` / ``verify`` / ``proxy``

Anticipated operator errors (missing paths, malformed times, bad
filters) exit with code 2 and a one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A First Look into Long-lived BGP "
                    "Zombies' (IMC 2025)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate all tables/figures")
    report.add_argument("--quick", action="store_true",
                        help="small world and short windows (~30 s)")
    report.add_argument("--days", type=int, default=6,
                        help="days per replication period (default 6)")

    campaign = sub.add_parser("campaign", help="2024 beacon campaign (§5)")
    campaign.add_argument("--full", action="store_true",
                          help="full 18-day campaign at paper scale")

    replication = sub.add_parser("replication",
                                 help="replication of the previous study (§3)")
    replication.add_argument("--days", type=int, default=5)
    replication.add_argument("--period", choices=["2018", "2017-oct",
                                                  "2017-mar", "all"],
                             default="all")

    detect = sub.add_parser(
        "detect", help="detect zombies in an on-disk RIS archive")
    detect.add_argument("archive", help="archive root directory")
    detect.add_argument("--from-time", required=True,
                        help="window start, e.g. '2024-06-04 00:00'")
    detect.add_argument("--until-time", required=True)
    detect.add_argument("--beacons", choices=["ris", "zombie-24h",
                                              "zombie-15d", "campaign"],
                        default="campaign",
                        help="which beacon schedule defines the intervals")
    detect.add_argument("--threshold-minutes", type=int, default=90)
    detect.add_argument("--no-dedup", action="store_true",
                        help="disable Aggregator double-count elimination")
    detect.add_argument("--workers", type=int, default=1,
                        help="decode archive files on N worker processes")
    detect.add_argument("--filter", default=None,
                        help="BGPStream filter pushed down into the read "
                             "path, e.g. 'peer 25091 and ipversion 6'")
    detect.add_argument("--on-error", choices=["strict", "skip", "quarantine"],
                        default=None,
                        help="poison-record policy: fail fast, skip and "
                             "count, or skip and preserve raw bytes in a "
                             ".quarantine sidecar")

    index = sub.add_parser(
        "index", help="write sidecar file indexes for an existing archive")
    index.add_argument("archive", help="archive root directory")
    index.add_argument("--rebuild", action="store_true",
                       help="rewrite sidecars even when fresh ones exist")

    observatory = sub.add_parser(
        "observatory", help="long-running zombie detection service (§6)")
    obs = observatory.add_subparsers(dest="observatory_command", required=True)

    synth = obs.add_parser(
        "synth", help="build a scripted synthetic campaign archive")
    synth.add_argument("archive", help="archive root directory to create")
    synth.add_argument("--days", type=int, default=2,
                       help="beacon days to script (default 2)")

    ingest = obs.add_parser(
        "ingest", help="tail an archive into the event store (resumable)")
    ingest.add_argument("archive", help="archive root directory")
    ingest.add_argument("store", help="event store directory")
    ingest.add_argument("--checkpoint", default=None,
                        help="checkpoint file (default <store>/checkpoint.json)")
    ingest.add_argument("--scenario", default=None,
                        help="scenario.json describing window + intervals "
                             "(default <archive>/scenario.json)")
    ingest.add_argument("--checkpoint-every", type=int, default=1000,
                        help="records between periodic checkpoints")
    ingest.add_argument("--max-records", type=int, default=None,
                        help="stop after N records (resume later)")
    ingest.add_argument("--workers", type=int, default=1,
                        help="decode archive files on N worker processes")
    ingest.add_argument("--on-error",
                        choices=["strict", "skip", "quarantine"],
                        default=None,
                        help="poison-record policy for the decode path")
    ingest.add_argument("--supervise", action="store_true",
                        help="run under the crash-restarting supervisor "
                             "(restores from the checkpoint after a crash)")
    ingest.add_argument("--batch-records", type=int, default=500,
                        help="records per supervised batch (heartbeat unit)")
    ingest.add_argument("--max-restarts", type=int, default=5,
                        help="consecutive crashes tolerated before the "
                             "supervisor gives up")
    ingest.add_argument("--serve-port", type=int, default=None,
                        help="with --supervise: also serve /healthz and "
                             "/metrics on this port while ingesting")

    doctor = obs.add_parser(
        "doctor", help="fsck an event store: verify and repair segments "
                       "(a fleet root fans out over every shard store)")
    doctor.add_argument("store", help="event store directory, or a fleet "
                                      "root holding shard-NN stores")
    doctor.add_argument("--check", action="store_true",
                        help="report only; do not repair anything")

    serve = obs.add_parser(
        "serve", help="serve the JSON/metrics API over an event store")
    serve.add_argument("store", help="event store directory")
    serve.add_argument("--archive", default=None,
                       help="archive root (adds read-path metrics)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8480)
    serve.add_argument("--view", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="serve queries from incrementally maintained "
                            "materialized views (--no-view: full store "
                            "scan per request)")
    serve.add_argument("--engine", choices=["async", "threaded"],
                       default="async",
                       help="HTTP engine: the asyncio selector-loop "
                            "server with /stream/* SSE endpoints "
                            "(default), or the legacy thread-per-"
                            "connection server")

    tail = obs.add_parser(
        "tail", help="follow a served observatory's live event stream")
    tail.add_argument("url", help="observatory base URL (async engine)")
    tail.add_argument("--what", choices=["events", "outbreaks",
                                         "resurrections"],
                      default="events",
                      help="which stream to follow (default events)")
    tail.add_argument("--cursor", default=None,
                      help="resume token '<generation>:<next_seq>' from "
                           "a previous run")
    tail.add_argument("--from-seq", type=int, default=None,
                      help="replay history from this seq before going "
                           "live (default: live tail only)")
    tail.add_argument("--max-events", type=int, default=None,
                      help="exit after printing N events")
    tail.add_argument("--state", default=None,
                      help="persist the resume token to this file after "
                           "every event; an existing file resumes the "
                           "stream exactly where the last run stopped")
    tail.add_argument("--no-reconnect", action="store_true",
                      help="exit at the first disconnect instead of "
                           "resuming with the last token")
    tail.add_argument("--idle-timeout", type=float, default=60.0,
                      help="declare the server dead after this many "
                           "seconds without frames (heartbeats count)")

    query = obs.add_parser("query", help="query an event store directly")
    query.add_argument("store", help="event store directory")
    query.add_argument("what", choices=["outbreaks", "resurrections",
                                        "zombies", "events"])
    query.add_argument("--prefix", default=None)
    query.add_argument("--since", type=int, default=None)
    query.add_argument("--until", type=int, default=None)
    query.add_argument("--limit", type=int, default=None,
                       help="print at most N rows; a resume cursor goes "
                            "to stderr when more remain")
    query.add_argument("--cursor", default=None,
                       help="resume strictly after this cursor (from a "
                            "previous --limit run)")

    forensics = obs.add_parser(
        "forensics", help="the pre-outbreak snapshot for one outbreak: "
                          "per-peer last paths, aggregator clock decode, "
                          "suspect AS")
    forensics.add_argument("target",
                           help="observatory base URL (http://...) — "
                                "monolith or federated — or an event "
                                "store directory")
    forensics.add_argument("outbreak",
                           help="outbreak ID (the 'id' field of an "
                                "/outbreaks row)")

    compact = obs.add_parser(
        "compact", help="fold superseded lifespan events in a store")
    compact.add_argument("store", help="event store directory")
    compact.add_argument("--format", dest="fmt",
                         choices=["columnar", "jsonl"], default="columnar",
                         help="rewrite sealed history in this segment "
                              "format (default: columnar — binary "
                              "mmap-read .colseg files)")

    fleet = obs.add_parser(
        "fleet", help="sharded observatory: a supervised shard fleet plus "
                      "a fault-tolerant federated query tier")
    flt = fleet.add_subparsers(dest="fleet_command", required=True)

    fserve = flt.add_parser(
        "serve", help="partition a store over N shard workers and serve "
                      "the federated scatter-gather API in front of them")
    fserve.add_argument("store", help="source event store to shard")
    fserve.add_argument("fleet_root",
                        help="directory for shard stores and worker logs")
    fserve.add_argument("--shards", type=int, default=3)
    fserve.add_argument("--host", default="127.0.0.1")
    fserve.add_argument("--port", type=int, default=8490,
                        help="federated query port (shard worker ports "
                             "are OS-assigned)")
    fserve.add_argument("--deadline", type=float, default=2.0,
                        help="per-shard scatter deadline in seconds")
    fserve.add_argument("--retries", type=int, default=1,
                        help="extra connect attempts per shard request")
    fserve.add_argument("--hedge-after", type=float, default=None,
                        help="race a hedged second request against a "
                             "shard slower than this many seconds")
    fserve.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive failures before a shard's "
                             "circuit opens")
    fserve.add_argument("--breaker-open-seconds", type=float, default=5.0,
                        help="seconds an open circuit refuses requests "
                             "before its half-open probe")
    fserve.add_argument("--max-restarts", type=int, default=5,
                        help="consecutive crashes tolerated per shard "
                             "before the supervisor gives up on it")
    fserve.add_argument("--restart-backoff", type=float, default=0.2,
                        help="base delay before respawning a dead shard "
                             "(doubles per consecutive crash)")
    fserve.add_argument("--poll-interval", type=float, default=0.05,
                        help="shard workers' source-store poll cadence")

    fstatus = flt.add_parser(
        "status", help="fleet-wide health of a running federated server")
    fstatus.add_argument("url", help="federated observatory base URL")

    fworker = flt.add_parser(
        "worker", help="one shard worker (normally spawned by the fleet "
                       "supervisor, not by hand)")
    fworker.add_argument("store", help="source event store")
    fworker.add_argument("shard_root", help="this shard's store directory")
    fworker.add_argument("--index", type=int, required=True)
    fworker.add_argument("--count", type=int, required=True)
    fworker.add_argument("--host", default="127.0.0.1")
    fworker.add_argument("--port", type=int, default=0)
    fworker.add_argument("--poll-interval", type=float, default=0.05)

    mirror = sub.add_parser(
        "mirror", help="HTTP archive transport (serve / sync / verify)")
    mir = mirror.add_subparsers(dest="mirror_command", required=True)

    mserve = mir.add_parser(
        "serve", help="serve an archive root over HTTP (RIS-style)")
    mserve.add_argument("archive", help="archive root directory")
    mserve.add_argument("--host", default="127.0.0.1")
    mserve.add_argument("--port", type=int, default=8470)
    mserve.add_argument("--key", default=None,
                        help="manifest signing key (default: built-in)")

    msync = mir.add_parser(
        "sync", help="mirror a served archive into a local directory")
    msync.add_argument("url", help="archive server base URL")
    msync.add_argument("dest", help="local mirror directory")
    msync.add_argument("--workers", type=int, default=4,
                       help="concurrent collector-month downloads")
    msync.add_argument("--timeout", type=float, default=10.0,
                       help="per-request timeout in seconds")
    msync.add_argument("--retries", type=int, default=4,
                       help="extra attempts per request")
    msync.add_argument("--collectors", default=None,
                       help="comma-separated collector subset, e.g. rrc00,rrc01")
    msync.add_argument("--key", default=None,
                       help="manifest signing key (default: built-in)")
    msync.add_argument("--strict", action="store_true",
                       help="exit non-zero when any file failed to sync")

    mwatch = mir.add_parser(
        "watch", help="continuously re-sync a mirror on an interval")
    mwatch.add_argument("url", help="archive server base URL")
    mwatch.add_argument("dest", help="local mirror directory")
    mwatch.add_argument("--interval", type=float, default=60.0,
                        help="seconds between sync passes")
    mwatch.add_argument("--cycles", type=int, default=None,
                        help="stop after N passes (default: forever)")
    mwatch.add_argument("--workers", type=int, default=4)
    mwatch.add_argument("--timeout", type=float, default=10.0)
    mwatch.add_argument("--retries", type=int, default=4)
    mwatch.add_argument("--key", default=None)

    mverify = mir.add_parser(
        "verify", help="re-hash a mirror against its cached manifests")
    mverify.add_argument("dest", help="local mirror directory")
    mverify.add_argument("--repair", action="store_true",
                         help="quarantine corrupt files so the next sync "
                              "refetches them")

    mproxy = mir.add_parser(
        "proxy", help="fault-injecting proxy in front of an archive server")
    mproxy.add_argument("upstream", help="upstream archive server URL")
    mproxy.add_argument("--host", default="127.0.0.1")
    mproxy.add_argument("--port", type=int, default=8471)
    mproxy.add_argument("--drop", type=float, default=0.0)
    mproxy.add_argument("--error", type=float, default=0.0)
    mproxy.add_argument("--stall", type=float, default=0.0)
    mproxy.add_argument("--truncate", type=float, default=0.0)
    mproxy.add_argument("--corrupt", type=float, default=0.0)
    mproxy.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_report(args) -> int:
    from repro.reporting import generate

    generate(quick=args.quick, days=args.days)
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiments import (
        build_figure2,
        build_figure3,
        build_table5,
        campaign_run,
        render_figure2,
        render_figure3,
        render_table5,
    )

    run = campaign_run(quick=not args.full)
    print(f"{run.announcement_count} announcements, "
          f"{len(run.records)} records")
    print(render_figure2(build_figure2(
        run, thresholds_minutes=(90, 120, 150, 170, 175, 180))))
    print(render_table5(build_table5(run)))
    print(render_figure3(build_figure3(run)))
    return 0


def _cmd_replication(args) -> int:
    from repro.experiments import (
        build_table1,
        build_table2,
        build_table4,
        render_table1,
        render_table2,
        render_table4,
        replication_run,
        replication_runs,
    )

    if args.period == "all":
        runs = replication_runs(days=args.days)
    else:
        runs = [replication_run(args.period, days=args.days)]
    print(render_table1(build_table1(runs)))
    print(render_table2(build_table2(runs)))
    for run in runs:
        if run.config.name == "2018":
            print(render_table4(build_table4(run)))
    return 0


def _cmd_detect(args) -> int:
    from repro.beacons import (
        PaperCampaign,
        RecycleApproach,
        RISBeaconSchedule,
        ZombieBeaconSchedule,
    )
    from repro.core import DetectorConfig, ZombieDetector
    from repro.ris import Archive
    from repro.utils.timeutil import MINUTE, from_iso

    start = from_iso(args.from_time)
    end = from_iso(args.until_time)
    schedules = {
        "ris": RISBeaconSchedule(),
        "zombie-24h": ZombieBeaconSchedule(RecycleApproach.DAILY),
        "zombie-15d": ZombieBeaconSchedule(RecycleApproach.FIFTEEN_DAYS),
        "campaign": PaperCampaign(),
    }
    schedule = schedules[args.beacons]
    intervals = list(schedule.intervals(start, end))
    if not intervals:
        print("no beacon intervals in the window", file=sys.stderr)
        return 1
    record_filter = None
    if args.filter:
        from repro.bgpstream import FilterError, compile_filter

        try:
            record_filter = compile_filter(args.filter)
        except FilterError as exc:
            print(f"bad --filter: {exc}", file=sys.stderr)
            return 2
    archive = Archive(args.archive, workers=args.workers,
                      error_policy=args.on_error)
    records = list(archive.iter_updates(
        start, end + args.threshold_minutes * MINUTE + 3600,
        record_filter=record_filter))
    decode = archive.decode_stats
    if not decode.clean:
        print(f"decode: {decode.records_skipped} record(s) skipped, "
              f"{decode.bytes_quarantined} byte(s) quarantined, "
              f"{decode.files_with_errors} file(s) with errors",
              file=sys.stderr)
    config = DetectorConfig(threshold=args.threshold_minutes * MINUTE,
                            dedup=not args.no_dedup)
    result = ZombieDetector(config).detect(records, intervals)
    print(f"intervals: {len(intervals)}, visible: {result.visible_count}, "
          f"outbreaks: {result.outbreak_count} "
          f"({result.outbreak_fraction():.2%})")
    for outbreak in result.outbreaks:
        subpath = " ".join(str(a) for a in outbreak.common_subpath())
        print(f"  {outbreak} | common subpath [{subpath}]")
    return 0


def _cmd_index(args) -> int:
    from repro.ris import reindex_archive

    try:
        written = reindex_archive(args.archive, rebuild=args.rebuild)
    except FileNotFoundError:
        print(f"archive root does not exist: {args.archive}", file=sys.stderr)
        return 2
    print(f"indexed {written} update file(s)")
    return 0


def _cmd_observatory(args) -> int:
    handlers = {
        "synth": _cmd_observatory_synth,
        "ingest": _cmd_observatory_ingest,
        "serve": _cmd_observatory_serve,
        "tail": _cmd_observatory_tail,
        "query": _cmd_observatory_query,
        "forensics": _cmd_observatory_forensics,
        "compact": _cmd_observatory_compact,
        "doctor": _cmd_observatory_doctor,
        "fleet": _cmd_observatory_fleet,
    }
    return handlers[args.observatory_command](args)


def _cmd_observatory_synth(args) -> int:
    from repro.observatory import build_synthetic_archive

    scenario = build_synthetic_archive(args.archive, days=args.days)
    print(f"wrote {scenario.record_count} records, "
          f"{len(scenario.intervals)} beacon intervals under {scenario.root}")
    print(f"scenario: {scenario.scenario_path}")
    for name, prefix in sorted(scenario.scripted.items()):
        print(f"  scripted {name}: {prefix}")
    return 0


def _load_scenario_for(args):
    from pathlib import Path

    from repro.observatory import load_scenario

    path = Path(args.scenario) if args.scenario \
        else Path(args.archive) / "scenario.json"
    if not path.exists():
        raise FileNotFoundError(f"no scenario file at {path} "
                                f"(pass --scenario explicitly)")
    return load_scenario(path)


def _cmd_observatory_ingest(args) -> int:
    from pathlib import Path

    from repro.observatory import EventStore, ObservatoryIngest
    from repro.ris import Archive

    scenario = _load_scenario_for(args)
    checkpoint = Path(args.checkpoint) if args.checkpoint \
        else Path(args.store) / "checkpoint.json"
    store = EventStore(args.store)

    def make_ingest() -> ObservatoryIngest:
        return ObservatoryIngest(
            Archive(args.archive, workers=args.workers,
                    error_policy=args.on_error),
            store, checkpoint, scenario["intervals"],
            scenario["start"], scenario["end"],
            threshold=scenario.get("threshold", 90 * 60),
            quiet=scenario.get("quiet", 120 * 60),
            excluded_peers=scenario.get("excluded_peers", frozenset()),
            checkpoint_every=args.checkpoint_every)

    if args.supervise:
        return _run_supervised(args, store, make_ingest)
    ingest = make_ingest()
    ingested = ingest.run(max_records=args.max_records)
    if args.max_records is None:
        ingest.finish()
    else:
        ingest.checkpoint()
    store.close()
    stats = ingest.stats()
    print(f"ingested {ingested} records this run "
          f"({stats['records_ingested']} total, "
          f"{stats['dumps_ingested']} dumps); "
          f"{stats['events_appended']} events in store; "
          f"finished={stats['finished']}")
    _print_decode_stats(ingest.archive)
    return 0


def _print_decode_stats(archive) -> None:
    decode = archive.decode_stats
    if not decode.clean:
        print(f"decode: {decode.records_skipped} record(s) skipped, "
              f"{decode.bytes_quarantined} byte(s) quarantined, "
              f"{decode.resyncs} resync(s), "
              f"{decode.files_with_errors} file(s) with errors",
              file=sys.stderr)


def _run_supervised(args, store, make_ingest) -> int:
    from repro.observatory import ObservatorySupervisor
    from repro.observatory.asyncserver import AsyncObservatoryServer

    supervisor = ObservatorySupervisor(
        make_ingest, batch_records=args.batch_records,
        max_restarts=args.max_restarts)
    server = None
    if args.serve_port is not None:
        # The async engine: /healthz + /metrics as before, plus live
        # /stream/* of exactly what this supervised ingest appends.
        server = AsyncObservatoryServer(store, port=args.serve_port,
                                        supervisor=supervisor).start()
        print(f"observatory daemon serving on {server.url}")
    try:
        ok = supervisor.run()
    finally:
        if server is not None:
            server.stop()
        store.close()
    stats = supervisor.stats()
    print(f"supervised ingest: state={stats['state']} "
          f"restarts={stats['restarts']} batches={stats['batches']} "
          f"records_skipped={stats['records_skipped']} "
          f"bytes_quarantined={stats['bytes_quarantined']} "
          f"finished={stats['finished']}")
    if stats["last_error"]:
        print(f"last error: {stats['last_error']}", file=sys.stderr)
    if supervisor.ingest is not None:
        _print_decode_stats(supervisor.ingest.archive)
    return 0 if ok else 1


def _doctor_exit(report, check: bool, label: str = "store") -> int:
    """Print one fsck report and return its exit code."""
    mode = "check" if check else "repair"
    print(f"doctor ({mode}): {report.segments_checked} segment(s), "
          f"{report.events_checked} event(s) checked"
          + (f" [{label}]" if label != "store" else ""))
    for issue in report.issues:
        print(f"  ISSUE: {issue}", file=sys.stderr)
    for action in report.actions:
        print(f"  fixed: {action}")
    if report.clean:
        print(f"{label} is clean")
        return 0
    if report.unrecoverable:
        print(f"unrecoverable damage: {report.events_lost} event(s) lost",
              file=sys.stderr)
        return 1
    # Issues found; in repair mode they were all fixed without loss —
    # unless nothing could be done at all (e.g. the path is not a store).
    return 1 if check or not report.actions else 0


def _cmd_observatory_doctor(args) -> int:
    from pathlib import Path

    from repro.observatory import fsck, fsck_fleet
    from repro.observatory.doctor import fleet_shard_roots

    root = Path(args.store)
    if not (root / "manifest.json").exists() and fleet_shard_roots(root):
        # A fleet root: fan the fsck out over every shard store; the
        # exit code is the worst of the per-shard verdicts.
        reports = fsck_fleet(root, repair=not args.check)
        worst = 0
        for name, report in sorted(reports.items()):
            worst = max(worst, _doctor_exit(report, args.check, label=name))
        print(f"fleet: {len(reports)} shard store(s) checked")
        return worst
    return _doctor_exit(fsck(args.store, repair=not args.check), args.check)


def _cmd_observatory_serve(args) -> int:
    import signal

    from repro.observatory import EventStore, ObservatoryServer
    from repro.observatory.asyncserver import AsyncObservatoryServer
    from repro.ris import Archive

    store = EventStore(args.store, readonly=True)
    archive = Archive(args.archive) if args.archive else None
    if args.engine == "threaded":
        server = ObservatoryServer(store, host=args.host, port=args.port,
                                   archive=archive, use_view=args.view)
        print(f"observatory listening on {server.url} (threaded)",
              flush=True)
        # Graceful SIGTERM: stop accepting, finish in-flight handlers
        # (non-daemon handler threads are joined by stop()), exit 0.
        try:
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: server.request_shutdown())
        except ValueError:
            pass  # not on the main thread (embedded use)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        server.stop()
    else:
        server = AsyncObservatoryServer(store, host=args.host,
                                        port=args.port, archive=archive,
                                        use_view=args.view)
        print(f"observatory listening on http://{args.host}:{args.port} "
              f"(async, streaming on /stream/*)", flush=True)
        try:
            # Installs SIGTERM/SIGINT handlers itself: on either it
            # drains in-flight requests, sends SSE subscribers a final
            # frame, and returns.
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_observatory_fleet(args) -> int:
    handlers = {
        "serve": _cmd_observatory_fleet_serve,
        "status": _cmd_observatory_fleet_status,
        "worker": _cmd_observatory_fleet_worker,
    }
    return handlers[args.fleet_command](args)


def _cmd_observatory_fleet_serve(args) -> int:
    from repro.observatory.federation import FederatedObservatoryServer
    from repro.observatory.fleet import ShardFleet

    fleet = ShardFleet(args.store, args.fleet_root, shards=args.shards,
                       host=args.host, poll_interval=args.poll_interval,
                       max_restarts=args.max_restarts,
                       backoff=args.restart_backoff,
                       backoff_cap=max(5.0, args.restart_backoff))
    fleet.start()
    print(f"fleet: {args.shards} shard worker(s) under {args.fleet_root}",
          flush=True)
    server = FederatedObservatoryServer(
        fleet.shard_urls(), host=args.host, port=args.port,
        deadline=args.deadline, retries=args.retries,
        hedge_after=args.hedge_after,
        breaker_threshold=args.breaker_threshold,
        breaker_open_seconds=args.breaker_open_seconds, fleet=fleet)
    print(f"federated observatory listening on "
          f"http://{args.host}:{args.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        fleet.stop()
    return 0


def _cmd_observatory_fleet_status(args) -> int:
    import json

    from repro.observatory import ObservatoryClient

    client = ObservatoryClient(args.url)
    body = client.healthz()
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0 if body.get("status") == "ok" else 1


def _cmd_observatory_fleet_worker(args) -> int:
    from repro.observatory.fleet import ShardWorker

    worker = ShardWorker(args.store, args.shard_root, args.index,
                         args.count, host=args.host, port=args.port,
                         poll_interval=args.poll_interval)
    return worker.run_forever()


def _cmd_observatory_tail(args) -> int:
    import json

    from repro.observatory import (ObservatoryClient, ObservatoryError,
                                   ObservatoryUnreachable)

    cursor = args.cursor
    state_path = None
    if args.state is not None:
        from pathlib import Path

        state_path = Path(args.state)
        if cursor is None and state_path.exists():
            cursor = state_path.read_text().strip() or None
    client = ObservatoryClient(args.url)
    if args.max_events is not None and args.max_events <= 0:
        return 0  # nothing to wait for
    printed = 0
    try:
        for event in client.stream(args.what, cursor=cursor,
                                   from_seq=args.from_seq,
                                   reconnect=not args.no_reconnect,
                                   idle_timeout=args.idle_timeout):
            if event.get("kind") == "reset":
                # History behind us was rewritten (truncate/compact):
                # flag it out-of-band so stdout stays a pure event feed.
                print(f"reset: generation={event['generation']} "
                      f"next_seq={event['next_seq']}", file=sys.stderr)
            else:
                print(json.dumps(event, sort_keys=True), flush=True)
                printed += 1
            if state_path is not None and client.stream_token is not None:
                tmp = state_path.with_suffix(state_path.suffix + ".tmp")
                tmp.write_text(client.stream_token)
                tmp.replace(state_path)
            if args.max_events is not None and printed >= args.max_events:
                break
    except KeyboardInterrupt:
        pass
    except (ObservatoryError, ObservatoryUnreachable) as exc:
        print(f"tail: {exc}", file=sys.stderr)
        return 2
    if client.stream_token is not None:
        print(f"resume token: {client.stream_token}", file=sys.stderr)
    return 0


def _cmd_observatory_query(args) -> int:
    import json

    from repro.observatory import EventStore
    from repro.observatory.views import CursorError, paginate, seq_cursor

    if args.limit is not None and args.limit <= 0:
        print("--limit must be a positive integer", file=sys.stderr)
        return 2
    store = EventStore(args.store, readonly=True)
    kinds = {"outbreaks": ("outbreak",), "resurrections": ("resurrection",),
             "zombies": ("lifespan",), "events": None}[args.what]
    if args.what == "zombies":
        latest = {}
        for event in store.events(kinds=kinds, prefix=args.prefix,
                                  since=args.since, until=args.until):
            latest[event["prefix"]] = event
        rows = [latest[prefix] for prefix in sorted(latest)
                if latest[prefix]["segment_count"] > 0]
        key = lambda e: e["prefix"]  # noqa: E731 - tiny sort-key pair
        cursor = args.cursor
    else:
        try:
            min_seq = seq_cursor(args.cursor) + 1 if args.cursor else None
        except CursorError as exc:
            print(f"--cursor: {exc}", file=sys.stderr)
            return 2
        rows = list(store.events(kinds=kinds, prefix=args.prefix,
                                 since=args.since, until=args.until,
                                 min_seq=min_seq))
        key = lambda e: e["seq"]  # noqa: E731
        cursor = None  # already applied via min_seq push-down
    page, next_cursor = paginate(rows, key=key, cursor=cursor,
                                 limit=args.limit)
    for row in page:
        print(json.dumps(row, sort_keys=True))
    if next_cursor is not None:
        print(f"next cursor: {next_cursor}", file=sys.stderr)
    return 0


def _cmd_observatory_forensics(args) -> int:
    import json

    if args.target.startswith(("http://", "https://")):
        from repro.observatory import (ObservatoryClient, ObservatoryError,
                                       ObservatoryUnreachable)

        client = ObservatoryClient(args.target)
        try:
            body = client.forensics(args.outbreak)
        except (ObservatoryError, ObservatoryUnreachable) as exc:
            print(f"forensics: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.observatory import EventStore, render_forensics
        from repro.observatory.forensics import outbreak_prefix

        store = EventStore(args.target, readonly=True)
        try:
            event = None
            prefix = outbreak_prefix(args.outbreak) or None
            for candidate in store.events(kinds=("forensics",),
                                          prefix=prefix):
                if candidate["outbreak_id"] == args.outbreak:
                    event = candidate  # seq order: last one wins
        finally:
            store.close()
        if event is None:
            print(f"forensics: no such outbreak: {args.outbreak}",
                  file=sys.stderr)
            return 2
        body = render_forensics(event)
    print(json.dumps(body, sort_keys=True))
    return 0


def _cmd_observatory_compact(args) -> int:
    from repro.observatory import EventStore

    store = EventStore(args.store)
    result = store.compact(fmt=args.fmt)
    formats = store.stats()["by_format"]
    store.close()
    mix = ", ".join(f"{count} {fmt}" for fmt, count in sorted(formats.items()))
    print(f"compacted: kept {result['kept']}, dropped {result['dropped']} "
          f"superseded lifespan event(s); segments: {mix or 'none'}")
    return 0


def _mirror_key(args) -> bytes:
    from repro.transport import DEFAULT_KEY

    return args.key.encode() if getattr(args, "key", None) else DEFAULT_KEY


def _cmd_mirror(args) -> int:
    handlers = {
        "serve": _cmd_mirror_serve,
        "sync": _cmd_mirror_sync,
        "watch": _cmd_mirror_watch,
        "verify": _cmd_mirror_verify,
        "proxy": _cmd_mirror_proxy,
    }
    return handlers[args.mirror_command](args)


def _cmd_mirror_serve(args) -> int:
    from repro.transport import ArchiveServer

    server = ArchiveServer(args.archive, host=args.host, port=args.port,
                           key=_mirror_key(args))
    print(f"archive server listening on {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def _make_mirror(args):
    from repro.transport import ArchiveMirror

    collectors = None
    if getattr(args, "collectors", None):
        collectors = [c.strip() for c in args.collectors.split(",") if c.strip()]
    return ArchiveMirror(args.url, args.dest, workers=args.workers,
                         timeout=args.timeout, retries=args.retries,
                         key=_mirror_key(args), collectors=collectors)


def _print_report(report) -> None:
    print(f"synced {report.months_synced} collector-month(s): "
          f"{report.files_downloaded} downloaded "
          f"({report.bytes_downloaded} bytes, "
          f"{report.bytes_resumed} resumed), "
          f"{report.files_skipped} unchanged, "
          f"{report.retries} retries, "
          f"{report.quarantined} quarantined, "
          f"{len(report.failures)} failure(s)")
    for failure in report.failures:
        print(f"  FAILED: {failure}", file=sys.stderr)


def _cmd_mirror_sync(args) -> int:
    from repro.transport import TransportError

    mirror = _make_mirror(args)
    try:
        report = mirror.sync()
    except TransportError as exc:
        print(f"sync failed: {exc}", file=sys.stderr)
        return 1
    _print_report(report)
    return 0 if (report.ok or not args.strict) else 1


def _cmd_mirror_watch(args) -> int:
    from repro.transport import TransportError

    mirror = _make_mirror(args)
    try:
        mirror.watch(args.interval, cycles=args.cycles,
                     on_report=_print_report)
    except KeyboardInterrupt:
        pass
    except TransportError as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_mirror_verify(args) -> int:
    from repro.transport import ArchiveMirror

    mirror = ArchiveMirror("http://unused", args.dest)
    result = mirror.verify(repair=args.repair)
    print(f"verified {len(result['verified'])} file(s), "
          f"{len(result['missing'])} missing, "
          f"{len(result['corrupt'])} corrupt")
    for rel in result["missing"]:
        print(f"  MISSING: {rel}", file=sys.stderr)
    for rel in result["corrupt"]:
        print(f"  CORRUPT: {rel}", file=sys.stderr)
    return 0 if not result["missing"] and not result["corrupt"] else 1


def _cmd_mirror_proxy(args) -> int:
    from repro.transport import FaultPlan, FaultyProxy

    rates = {kind: getattr(args, kind)
             for kind in ("drop", "error", "stall", "truncate", "corrupt")
             if getattr(args, kind) > 0}
    proxy = FaultyProxy(args.upstream, FaultPlan(rates=rates, seed=args.seed),
                        host=args.host, port=args.port)
    print(f"faulty proxy for {args.upstream} listening on {proxy.url} "
          f"(rates: {rates or 'none'})")
    try:
        proxy.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "report": _cmd_report,
        "campaign": _cmd_campaign,
        "replication": _cmd_replication,
        "detect": _cmd_detect,
        "index": _cmd_index,
        "observatory": _cmd_observatory,
        "mirror": _cmd_mirror,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (`... | head`): exit quietly, and
        # hand stdout a dead fd so the interpreter's shutdown flush
        # doesn't print its own traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention


if __name__ == "__main__":
    raise SystemExit(main())
