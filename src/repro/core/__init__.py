"""The paper's contribution: revised zombie detection and analyses."""

from repro.core.detector import (
    DEFAULT_THRESHOLD,
    DetectionResult,
    DetectorConfig,
    ZombieDetector,
)
from repro.core.legacy import LegacyDetector
from repro.core.lifespan import (
    LifespanDelta,
    LifespanSession,
    LifespanTracker,
    PresenceSegment,
    ZombieLifespan,
)
from repro.core.noisy import NoisyPeerDetector, NoisyPeerReport, PeerStat
from repro.core.outbreaks import ZombieOutbreak, ZombieRoute
from repro.core.resurrection import (
    LateAnnouncement,
    ResurrectionEvent,
    find_late_announcements,
    find_resurrections,
)
from repro.core.rootcause import (
    PalmTree,
    RootCauseInference,
    infer_root_cause,
    infer_root_causes,
)
from repro.core.state import PeerKey, PrefixState, StateReconstructor
from repro.core.wild import (
    WildConfig,
    WildWithdrawal,
    detect_wild_zombies,
    find_complete_withdrawals,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "DetectionResult",
    "DetectorConfig",
    "ZombieDetector",
    "LegacyDetector",
    "LifespanDelta",
    "LifespanSession",
    "LifespanTracker",
    "PresenceSegment",
    "ZombieLifespan",
    "NoisyPeerDetector",
    "NoisyPeerReport",
    "PeerStat",
    "ZombieOutbreak",
    "ZombieRoute",
    "LateAnnouncement",
    "ResurrectionEvent",
    "find_late_announcements",
    "find_resurrections",
    "PalmTree",
    "RootCauseInference",
    "infer_root_cause",
    "infer_root_causes",
    "PeerKey",
    "PrefixState",
    "StateReconstructor",
    "WildConfig",
    "WildWithdrawal",
    "detect_wild_zombies",
    "find_complete_withdrawals",
]
