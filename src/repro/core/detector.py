"""The revised zombie detection methodology (paper §3.1 and §5).

For every beacon interval:

1. collect the interval's records for the beacon prefix (**interval
   isolation** — no knowledge from earlier intervals leaks in);
2. reconstruct each peer router's state at the evaluation instant
   ``withdraw_time + threshold`` (default 90 minutes, as in all prior
   work);
3. a peer whose state is PRESENT holds a **zombie route**;
4. decode the Aggregator clock of the stuck announcement: if it
   pre-dates this interval's announcement, the zombie is *old* and is
   dropped (**double-count elimination**) when ``dedup`` is on;
5. peers in ``excluded_peers`` (noisy peers, §3.2) are ignored.

The detector also tracks per-interval *visibility* (did any peer see the
announcement at all), which the tables and Fig. 2 use as denominators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.beacons.aggregator import AggregatorClock
from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record, UpdateRecord
from repro.core.outbreaks import ZombieOutbreak, ZombieRoute
from repro.core.state import PeerKey, StateReconstructor
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE

__all__ = ["DetectorConfig", "DetectionResult", "ZombieDetector",
           "DEFAULT_THRESHOLD"]

DEFAULT_THRESHOLD = 90 * MINUTE


@dataclass(frozen=True)
class DetectorConfig:
    """Detection knobs.

    ``dedup`` toggles Aggregator-based double-count elimination ("without
    double-counting" in Tables 1-2).  ``excluded_peers`` removes noisy
    peer routers; ``excluded_peer_asns`` removes whole peer ASes.
    """

    threshold: int = DEFAULT_THRESHOLD
    dedup: bool = True
    excluded_peers: frozenset[PeerKey] = frozenset()
    excluded_peer_asns: frozenset[int] = frozenset()

    def excludes(self, key: PeerKey, asn: int) -> bool:
        return key in self.excluded_peers or asn in self.excluded_peer_asns


@dataclass
class DetectionResult:
    """Everything one detection run produces."""

    config: DetectorConfig
    outbreaks: list[ZombieOutbreak]
    #: intervals whose announcement was visible at >= 1 peer.
    visible_intervals: list[BeaconInterval]
    #: (interval, peer) pairs that saw the announcement — emergence-rate
    #: denominators.
    visible_pairs: dict[tuple[Prefix, int], int] = field(default_factory=dict)
    #: zombie-route counts per (prefix, peer ASN) — emergence-rate numerators.
    zombie_pairs: dict[tuple[Prefix, int], int] = field(default_factory=dict)
    #: per peer-router visibility/zombie counts (noisy-peer statistics).
    router_visible: dict[PeerKey, int] = field(default_factory=dict)
    router_zombies: dict[PeerKey, int] = field(default_factory=dict)

    @property
    def outbreak_count(self) -> int:
        return len(self.outbreaks)

    @property
    def zombie_route_count(self) -> int:
        return sum(o.size for o in self.outbreaks)

    @property
    def visible_count(self) -> int:
        return len(self.visible_intervals)

    def outbreak_fraction(self) -> float:
        """Fraction of visible beacon announcements that led to a zombie
        outbreak (left axis of Fig. 2)."""
        if not self.visible_intervals:
            return 0.0
        return len(self.outbreaks) / len(self.visible_intervals)

    def outbreaks_for(self, prefix: Prefix) -> list[ZombieOutbreak]:
        return [o for o in self.outbreaks if o.prefix == prefix]

    def split_by_family(self) -> tuple[list[ZombieOutbreak], list[ZombieOutbreak]]:
        """(IPv4 outbreaks, IPv6 outbreaks)."""
        v4 = [o for o in self.outbreaks if o.prefix.is_ipv4]
        v6 = [o for o in self.outbreaks if o.prefix.is_ipv6]
        return v4, v6


class ZombieDetector:
    """Run the revised methodology over a record stream."""

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()

    def detect(self, records: Sequence[Record],
               intervals: Iterable[BeaconInterval]) -> DetectionResult:
        """Detect zombie outbreaks for every non-discarded interval.

        ``records`` must cover the intervals' evaluation windows; they
        are indexed by prefix once, then each interval is processed in
        isolation.
        """
        intervals = [i for i in intervals if not i.discarded]
        by_prefix = self._index_by_prefix(records)
        result = DetectionResult(self.config, [], [])

        # A prefix's interval ends where its next announcement begins:
        # records past that instant belong to the next interval and must
        # not leak in, even under long thresholds.
        announce_times: dict[Prefix, list[int]] = {}
        for interval in intervals:
            announce_times.setdefault(interval.prefix, []).append(
                interval.announce_time)
        for times in announce_times.values():
            times.sort()

        for interval in sorted(intervals, key=lambda i: (i.announce_time,
                                                         str(i.prefix))):
            times = announce_times[interval.prefix]
            position = times.index(interval.announce_time)
            next_announce = (times[position + 1] if position + 1 < len(times)
                             else None)
            self._process_interval(interval, by_prefix, result, next_announce)
        return result

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _index_by_prefix(records: Sequence[Record]) -> dict:
        """Prefix -> its update records; None key -> state records
        (which affect every prefix)."""
        index: dict = {None: []}
        for record in records:
            if isinstance(record, UpdateRecord):
                index.setdefault(record.prefix, []).append(record)
            else:
                index[None].append(record)
        return index

    def _interval_records(self, interval: BeaconInterval, by_prefix: dict,
                          eval_time: int) -> list[Record]:
        window = [r for r in by_prefix.get(interval.prefix, ())
                  if interval.announce_time <= r.timestamp <= eval_time]
        window += [r for r in by_prefix[None]
                   if interval.announce_time <= r.timestamp <= eval_time]
        return window

    def _process_interval(self, interval: BeaconInterval, by_prefix: dict,
                          result: DetectionResult,
                          next_announce: Optional[int] = None) -> None:
        config = self.config
        eval_time = interval.withdraw_time + config.threshold
        window_end = eval_time
        if next_announce is not None:
            window_end = min(window_end, next_announce - 1)
        window = self._interval_records(interval, by_prefix, window_end)
        state = StateReconstructor(window)

        visible_anywhere = False
        routes: list[ZombieRoute] = []
        for key, asn in sorted(state.peers().items()):
            if config.excludes(key, asn):
                continue
            if not state.ever_announced(interval.prefix, key):
                continue
            visible_anywhere = True
            pair = (interval.prefix, asn)
            result.visible_pairs[pair] = result.visible_pairs.get(pair, 0) + 1
            result.router_visible[key] = result.router_visible.get(key, 0) + 1

            announcement = state.last_announcement(key, interval.prefix, eval_time)
            if announcement is None:
                continue  # withdrawn in time — healthy
            stale = self._is_stale(announcement, interval)
            if config.dedup and stale:
                continue
            routes.append(ZombieRoute(
                interval=interval, peer=key, peer_asn=asn,
                detected_at=eval_time, announcement=announcement, stale=stale))
            result.zombie_pairs[pair] = result.zombie_pairs.get(pair, 0) + 1
            result.router_zombies[key] = result.router_zombies.get(key, 0) + 1

        if visible_anywhere:
            result.visible_intervals.append(interval)
        if routes:
            result.outbreaks.append(ZombieOutbreak(interval, tuple(routes)))

    @staticmethod
    def _is_stale(announcement: UpdateRecord,
                  interval: BeaconInterval) -> bool:
        """Aggregator-clock test: does the stuck announcement pre-date
        this interval's beacon announcement? (paper §3.1, step 2)."""
        attrs = announcement.attributes
        if attrs is None or attrs.aggregator is None:
            return False
        address = attrs.aggregator.address
        if not AggregatorClock.is_clock_address(address):
            return False
        origin_time = AggregatorClock.decode(address, announcement.timestamp)
        # Allow a small slack: the clock has one-second granularity and
        # the origination may lag the scheduled slot by a moment.
        return origin_time < interval.announce_time - MINUTE
