"""The previous study's methodology (Fontugne et al., PAM'19), as the
baseline the paper replicates and revises.

Differences from :class:`repro.core.detector.ZombieDetector`:

* **Carried state**: the per-peer prefix state is computed over the whole
  measurement period, not per isolated interval — a route stuck since an
  earlier interval stays PRESENT and is counted again in every later
  interval (the double-counting the paper quantifies in Table 1).
* **Looking-glass staleness**: the original pipeline queried the
  RIPEstat looking glass, a black box whose state lags the raw feed by
  an unknown delay.  We model the lag as ``lg_delay``: the state at
  evaluation time is really the state as of ``eval - lg_delay``, which
  produces false positives when a withdrawal lands inside the lag
  window (the paper's §3.1 argument for using raw data instead).
* **No Aggregator filtering**.  Peer exclusion is configurable: the
  published study's counts show no noisy-peer explosion, so replication
  runs model its pipeline with the wedged peer excluded.

The output is the same :class:`DetectionResult` shape, so the comparison
tooling (Table 3) treats both pipelines symmetrically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record, UpdateRecord
from repro.core.detector import DEFAULT_THRESHOLD, DetectionResult, DetectorConfig
from repro.core.outbreaks import ZombieOutbreak, ZombieRoute
from repro.core.state import StateReconstructor
from repro.utils.timeutil import MINUTE

__all__ = ["LegacyDetector"]


class LegacyDetector:
    """Looking-glass-style zombie detection with carried state.

    ``miss_prob`` models the looking-glass service irregularities the
    paper documents (§3.1: RIPEstat went through updates during the
    original study [19-22]): each zombie route is independently missed
    with this probability, deterministically under ``seed``.
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 lg_delay: int = 5 * MINUTE,
                 miss_prob: float = 0.0, seed: int = 0,
                 excluded_peers: frozenset = frozenset()):
        if not 0.0 <= miss_prob < 1.0:
            raise ValueError("miss_prob must be in [0, 1)")
        self.threshold = threshold
        self.lg_delay = lg_delay
        self.miss_prob = miss_prob
        self.seed = seed
        #: The published study's counts show no noisy-peer explosion, so
        #: its pipeline is modelled as insensitive to those peers.
        self.excluded_peers = excluded_peers

    def _misses(self, interval: BeaconInterval, key) -> bool:
        if self.miss_prob == 0.0:
            return False
        rng = random.Random((self.seed, str(interval.prefix),
                             interval.announce_time, key).__repr__())
        return rng.random() < self.miss_prob

    def detect(self, records: Sequence[Record],
               intervals: Iterable[BeaconInterval]) -> DetectionResult:
        """Detect zombies the previous study's way."""
        intervals = sorted((i for i in intervals if not i.discarded),
                           key=lambda i: (i.announce_time, str(i.prefix)))
        config = DetectorConfig(threshold=self.threshold, dedup=False)
        result = DetectionResult(config, [], [])
        # One reconstructor over the entire period: state carries over.
        state = StateReconstructor(records)
        peers = sorted((key, asn) for key, asn in state.peers().items()
                       if key not in self.excluded_peers)

        for interval in intervals:
            eval_time = interval.withdraw_time + self.threshold
            lg_time = eval_time - self.lg_delay
            visible_anywhere = False
            routes: list[ZombieRoute] = []
            for key, asn in peers:
                if not self._visible(state, key, interval):
                    continue
                visible_anywhere = True
                pair = (interval.prefix, asn)
                result.visible_pairs[pair] = result.visible_pairs.get(pair, 0) + 1
                result.router_visible[key] = result.router_visible.get(key, 0) + 1

                announcement = state.last_announcement(key, interval.prefix,
                                                       lg_time)
                if announcement is None:
                    continue
                if self._misses(interval, key):
                    continue
                routes.append(ZombieRoute(
                    interval=interval, peer=key, peer_asn=asn,
                    detected_at=eval_time, announcement=announcement,
                    stale=announcement.timestamp < interval.announce_time))
                result.zombie_pairs[pair] = result.zombie_pairs.get(pair, 0) + 1
                result.router_zombies[key] = result.router_zombies.get(key, 0) + 1
            if visible_anywhere:
                result.visible_intervals.append(interval)
            if routes:
                result.outbreaks.append(ZombieOutbreak(interval, tuple(routes)))
        return result

    def _visible(self, state: StateReconstructor, key, interval) -> bool:
        """The looking-glass notion of visibility: the peer held the
        prefix at some point during the interval's announce window."""
        announce_end = min(interval.withdraw_time,
                           interval.announce_time + 2 * 3600)
        announcement = state.last_announcement(key, interval.prefix,
                                               announce_end)
        return announcement is not None
