"""Zombie lifespan tracking from 8-hourly RIB dumps (paper §5, Fig. 3-4).

Update streams answer *whether* a route got stuck; RIB dumps answer
*for how long*.  RIS publishes every peer's table every 8 hours, so we
replay the dump series and, for every beacon prefix, record in which
dumps (and at which peers) the prefix was still present after its final
withdrawal by the origin.

Presence over time forms **segments**: maximal runs of consecutive dumps
where at least one peer holds the route.  More than one segment means
the prefix disappeared from every peer and later came back — a
**resurrection** (§5.1, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.core.state import PeerKey
from repro.mrt.tabledump import RibDump
from repro.net.prefix import Prefix
from repro.utils.timeutil import DAY, MINUTE

__all__ = ["PresenceSegment", "ZombieLifespan", "LifespanTracker",
           "LifespanDelta", "LifespanSession"]

#: Session snapshot document version.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class PresenceSegment:
    """A maximal run of dump instants where the zombie was visible."""

    start: int
    end: int
    peers: frozenset[PeerKey]

    @property
    def span_days(self) -> float:
        return (self.end - self.start) / DAY


@dataclass
class ZombieLifespan:
    """The full story of one zombie prefix after its final withdrawal."""

    prefix: Prefix
    withdraw_time: int
    segments: list[PresenceSegment] = field(default_factory=list)
    #: peer router -> (first dump seen, last dump seen).
    peer_spans: dict[PeerKey, tuple[int, int]] = field(default_factory=dict)

    @property
    def is_zombie(self) -> bool:
        return bool(self.segments)

    @property
    def first_seen(self) -> Optional[int]:
        return self.segments[0].start if self.segments else None

    @property
    def last_seen(self) -> Optional[int]:
        return self.segments[-1].end if self.segments else None

    @property
    def duration_seconds(self) -> int:
        """Withdrawal → last sighting (0 when never stuck)."""
        return (self.last_seen - self.withdraw_time) if self.segments else 0

    @property
    def duration_days(self) -> float:
        return self.duration_seconds / DAY

    @property
    def resurrection_count(self) -> int:
        """Number of gaps: times the zombie vanished then reappeared."""
        return max(0, len(self.segments) - 1)

    def peer_duration_days(self, peer: PeerKey) -> float:
        span = self.peer_spans.get(peer)
        if span is None:
            return 0.0
        return (span[1] - span[0]) / DAY


@dataclass(frozen=True)
class LifespanDelta:
    """One prefix's presence change committed at one dump instant."""

    prefix: Prefix
    instant: int
    #: any (non-excluded) peer held the route at this instant.
    visible: bool
    #: this instant opened a new presence segment.
    started_segment: bool
    #: the new segment follows a gap (or a late first sighting) — the
    #: §5.1 dump-scale resurrection signal.
    resurrection: bool
    #: peers holding the route at this instant.
    peers: frozenset[PeerKey] = frozenset()


@dataclass
class _PrefixProgress:
    """Mutable per-prefix lifespan state inside a session."""

    withdraw_time: int
    segments: list[PresenceSegment] = field(default_factory=list)
    run_start: Optional[int] = None
    run_end: Optional[int] = None
    run_peers: set[PeerKey] = field(default_factory=set)
    peer_spans: dict[PeerKey, tuple[int, int]] = field(default_factory=dict)


class LifespanSession:
    """Incremental lifespan tracking over a RIB-dump stream.

    Dumps must arrive in non-decreasing timestamp order; several dumps
    (different collectors) may share one instant, so an instant is only
    *committed* when a strictly later dump arrives (or on
    :meth:`finalize`).  The session is restart-safe: :meth:`snapshot`
    captures the complete state — including the uncommitted instant
    buffer — and :meth:`from_snapshot` resumes it exactly.
    """

    def __init__(self, final_withdrawals: dict[Prefix, int],
                 excluded_peers: frozenset[PeerKey] = frozenset(),
                 min_stuck: int = 90 * MINUTE,
                 late_first_seen: int = 2 * DAY):
        self.min_stuck = min_stuck
        self.late_first_seen = late_first_seen
        self.excluded_peers = excluded_peers
        self._progress: dict[Prefix, _PrefixProgress] = {
            prefix: _PrefixProgress(withdraw_time)
            for prefix, withdraw_time in final_withdrawals.items()}
        #: instant buffered but not yet committed.
        self._pending_instant: Optional[int] = None
        self._pending: dict[Prefix, set[PeerKey]] = {}

    # -- ingestion -------------------------------------------------------

    def observe(self, dump: RibDump) -> list[LifespanDelta]:
        """Feed one dump; returns deltas for any instant this commits."""
        deltas: list[LifespanDelta] = []
        if (self._pending_instant is not None
                and dump.timestamp < self._pending_instant):
            raise ValueError(
                f"dump at {dump.timestamp} arrived after instant "
                f"{self._pending_instant} was buffered (out of order)")
        if (self._pending_instant is not None
                and dump.timestamp > self._pending_instant):
            deltas = self._commit()
        self._pending_instant = dump.timestamp
        for prefix, progress in self._progress.items():
            if dump.timestamp < progress.withdraw_time + self.min_stuck:
                continue
            holders = {(dump.collector, address)
                       for _, address in dump.peers_holding(prefix)}
            holders -= self.excluded_peers
            if holders:
                self._pending.setdefault(prefix, set()).update(holders)
        return deltas

    def finalize(self) -> list[LifespanDelta]:
        """Commit the trailing buffered instant (end of dump stream)."""
        return self._commit()

    def _commit(self) -> list[LifespanDelta]:
        if self._pending_instant is None:
            return []
        instant = self._pending_instant
        deltas: list[LifespanDelta] = []
        for prefix in sorted(self._progress, key=str):
            progress = self._progress[prefix]
            if instant < progress.withdraw_time + self.min_stuck:
                continue
            holders = self._pending.get(prefix, set())
            if holders:
                started = progress.run_start is None
                resurrection = started and (
                    bool(progress.segments)
                    or instant > progress.withdraw_time + self.late_first_seen)
                if started:
                    progress.run_start = instant
                progress.run_end = instant
                progress.run_peers.update(holders)
                for peer in holders:
                    first, _ = progress.peer_spans.get(peer, (instant, instant))
                    progress.peer_spans[peer] = (first, instant)
                deltas.append(LifespanDelta(prefix, instant, True, started,
                                            resurrection, frozenset(holders)))
            elif progress.run_start is not None:
                progress.segments.append(PresenceSegment(
                    progress.run_start, progress.run_end,
                    frozenset(progress.run_peers)))
                progress.run_start = progress.run_end = None
                progress.run_peers = set()
                deltas.append(LifespanDelta(prefix, instant, False, False,
                                            False))
        self._pending_instant = None
        self._pending = {}
        return deltas

    # -- results ---------------------------------------------------------

    def lifespans(self) -> dict[Prefix, ZombieLifespan]:
        """Current lifespans (the open run counts as a segment so far)."""
        out: dict[Prefix, ZombieLifespan] = {}
        for prefix, progress in self._progress.items():
            lifespan = ZombieLifespan(prefix, progress.withdraw_time)
            lifespan.segments = list(progress.segments)
            if progress.run_start is not None:
                lifespan.segments.append(PresenceSegment(
                    progress.run_start, progress.run_end,
                    frozenset(progress.run_peers)))
            lifespan.peer_spans = dict(progress.peer_spans)
            out[prefix] = lifespan
        return out

    def lifespan_for(self, prefix: Prefix) -> Optional[ZombieLifespan]:
        if prefix not in self._progress:
            return None
        return self.lifespans()[prefix]

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe document capturing the complete session state."""
        prefixes = {}
        for prefix, p in sorted(self._progress.items(), key=lambda kv: str(kv[0])):
            prefixes[str(prefix)] = {
                "withdraw_time": p.withdraw_time,
                "segments": [[s.start, s.end, sorted(s.peers)]
                             for s in p.segments],
                "run": ([p.run_start, p.run_end, sorted(p.run_peers)]
                        if p.run_start is not None else None),
                "peer_spans": [[c, a, first, last]
                               for (c, a), (first, last)
                               in sorted(p.peer_spans.items())],
            }
        return {
            "version": SNAPSHOT_VERSION,
            "min_stuck": self.min_stuck,
            "late_first_seen": self.late_first_seen,
            "excluded_peers": sorted([c, a] for c, a in self.excluded_peers),
            "pending_instant": self._pending_instant,
            "pending": {str(prefix): sorted([c, a] for c, a in holders)
                        for prefix, holders in sorted(self._pending.items(),
                                                      key=lambda kv: str(kv[0]))},
            "prefixes": prefixes,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "LifespanSession":
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported LifespanSession snapshot version: "
                f"{snapshot.get('version')!r}")
        session = cls({},
                      excluded_peers=frozenset(
                          (c, a) for c, a in snapshot["excluded_peers"]),
                      min_stuck=snapshot["min_stuck"],
                      late_first_seen=snapshot["late_first_seen"])
        for text, data in snapshot["prefixes"].items():
            progress = _PrefixProgress(data["withdraw_time"])
            progress.segments = [
                PresenceSegment(start, end, frozenset((c, a) for c, a in peers))
                for start, end, peers in data["segments"]]
            if data["run"] is not None:
                start, end, peers = data["run"]
                progress.run_start = start
                progress.run_end = end
                progress.run_peers = {(c, a) for c, a in peers}
            progress.peer_spans = {(c, a): (first, last)
                                   for c, a, first, last in data["peer_spans"]}
            session._progress[Prefix(text)] = progress
        session._pending_instant = snapshot["pending_instant"]
        session._pending = {Prefix(text): {(c, a) for c, a in holders}
                            for text, holders in snapshot["pending"].items()}
        return session


class LifespanTracker:
    """Replay RIB dumps and measure zombie lifespans."""

    def __init__(self, min_stuck: int = 90 * MINUTE):
        #: a dump only counts as zombie evidence when it is at least this
        #: long after the withdrawal (consistent with the 90-minute
        #: detection threshold).
        self.min_stuck = min_stuck

    def session(self, final_withdrawals: dict[Prefix, int],
                excluded_peers: frozenset[PeerKey] = frozenset(),
                late_first_seen: int = 2 * DAY) -> LifespanSession:
        """An incremental (restart-safe) tracking session."""
        return LifespanSession(final_withdrawals, excluded_peers,
                               min_stuck=self.min_stuck,
                               late_first_seen=late_first_seen)

    def track(self, dumps: Iterable[RibDump],
              final_withdrawals: dict[Prefix, int],
              excluded_peers: frozenset[PeerKey] = frozenset()
              ) -> dict[Prefix, ZombieLifespan]:
        """``final_withdrawals``: beacon prefix → the origin's last
        withdrawal time (ground truth from the schedule).  Returns one
        lifespan per prefix (non-zombies have empty segments).

        ``excluded_peers`` removes noisy peer routers, giving the
        "noisy peers excluded" line of Fig. 3."""
        session = self.session(final_withdrawals, excluded_peers)
        for dump in sorted(dumps, key=lambda d: d.timestamp):
            session.observe(dump)
        session.finalize()
        return session.lifespans()
