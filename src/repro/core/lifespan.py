"""Zombie lifespan tracking from 8-hourly RIB dumps (paper §5, Fig. 3-4).

Update streams answer *whether* a route got stuck; RIB dumps answer
*for how long*.  RIS publishes every peer's table every 8 hours, so we
replay the dump series and, for every beacon prefix, record in which
dumps (and at which peers) the prefix was still present after its final
withdrawal by the origin.

Presence over time forms **segments**: maximal runs of consecutive dumps
where at least one peer holds the route.  More than one segment means
the prefix disappeared from every peer and later came back — a
**resurrection** (§5.1, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.state import PeerKey
from repro.mrt.tabledump import RibDump
from repro.net.prefix import Prefix
from repro.utils.timeutil import DAY, MINUTE

__all__ = ["PresenceSegment", "ZombieLifespan", "LifespanTracker"]


@dataclass(frozen=True)
class PresenceSegment:
    """A maximal run of dump instants where the zombie was visible."""

    start: int
    end: int
    peers: frozenset[PeerKey]

    @property
    def span_days(self) -> float:
        return (self.end - self.start) / DAY


@dataclass
class ZombieLifespan:
    """The full story of one zombie prefix after its final withdrawal."""

    prefix: Prefix
    withdraw_time: int
    segments: list[PresenceSegment] = field(default_factory=list)
    #: peer router -> (first dump seen, last dump seen).
    peer_spans: dict[PeerKey, tuple[int, int]] = field(default_factory=dict)

    @property
    def is_zombie(self) -> bool:
        return bool(self.segments)

    @property
    def first_seen(self) -> Optional[int]:
        return self.segments[0].start if self.segments else None

    @property
    def last_seen(self) -> Optional[int]:
        return self.segments[-1].end if self.segments else None

    @property
    def duration_seconds(self) -> int:
        """Withdrawal → last sighting (0 when never stuck)."""
        return (self.last_seen - self.withdraw_time) if self.segments else 0

    @property
    def duration_days(self) -> float:
        return self.duration_seconds / DAY

    @property
    def resurrection_count(self) -> int:
        """Number of gaps: times the zombie vanished then reappeared."""
        return max(0, len(self.segments) - 1)

    def peer_duration_days(self, peer: PeerKey) -> float:
        span = self.peer_spans.get(peer)
        if span is None:
            return 0.0
        return (span[1] - span[0]) / DAY


class LifespanTracker:
    """Replay RIB dumps and measure zombie lifespans."""

    def __init__(self, min_stuck: int = 90 * MINUTE):
        #: a dump only counts as zombie evidence when it is at least this
        #: long after the withdrawal (consistent with the 90-minute
        #: detection threshold).
        self.min_stuck = min_stuck

    def track(self, dumps: Iterable[RibDump],
              final_withdrawals: dict[Prefix, int],
              excluded_peers: frozenset[PeerKey] = frozenset()
              ) -> dict[Prefix, ZombieLifespan]:
        """``final_withdrawals``: beacon prefix → the origin's last
        withdrawal time (ground truth from the schedule).  Returns one
        lifespan per prefix (non-zombies have empty segments).

        ``excluded_peers`` removes noisy peer routers, giving the
        "noisy peers excluded" line of Fig. 3."""
        presence: dict[Prefix, dict[int, set[PeerKey]]] = {
            prefix: {} for prefix in final_withdrawals}
        dump_instants: set[int] = set()

        for dump in dumps:
            dump_instants.add(dump.timestamp)
            for prefix, withdraw_time in final_withdrawals.items():
                if dump.timestamp < withdraw_time + self.min_stuck:
                    continue
                holders = {(dump.collector, address)
                           for _, address in dump.peers_holding(prefix)}
                holders -= excluded_peers
                if holders:
                    slot = presence[prefix].setdefault(dump.timestamp, set())
                    slot.update(holders)

        instants = sorted(dump_instants)
        return {
            prefix: self._build_lifespan(prefix, withdraw_time,
                                         presence[prefix], instants)
            for prefix, withdraw_time in final_withdrawals.items()
        }

    def _build_lifespan(self, prefix: Prefix, withdraw_time: int,
                        seen: dict[int, set[PeerKey]],
                        instants: list[int]) -> ZombieLifespan:
        lifespan = ZombieLifespan(prefix, withdraw_time)
        current_start: Optional[int] = None
        current_end: Optional[int] = None
        current_peers: set[PeerKey] = set()

        relevant = [t for t in instants if t >= withdraw_time + self.min_stuck]
        for instant in relevant:
            holders = seen.get(instant)
            if holders:
                if current_start is None:
                    current_start = instant
                current_end = instant
                current_peers.update(holders)
                for peer in holders:
                    first, _ = lifespan.peer_spans.get(peer, (instant, instant))
                    lifespan.peer_spans[peer] = (first, instant)
            elif current_start is not None:
                lifespan.segments.append(PresenceSegment(
                    current_start, current_end, frozenset(current_peers)))
                current_start = current_end = None
                current_peers = set()
        if current_start is not None:
            lifespan.segments.append(PresenceSegment(
                current_start, current_end, frozenset(current_peers)))
        return lifespan
