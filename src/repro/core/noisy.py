"""Noisy-peer detection (paper §3.2 and §5).

Some RIS peers are statistical outliers: they hold zombie routes for a
large fraction of beacon announcements (AS16347 @ rrc21 at ~42.8 % in
the replication; AS211509/AS211380 @ rrc25 at 7-10 % in the campaign)
while the population average is ~1.6 %.  Counting them would grossly
overestimate zombies, so the methodology flags and excludes them.

The detector computes per-peer-router zombie probabilities from a
:class:`DetectionResult` and flags outliers with a robust rule: a peer
is noisy when its probability exceeds ``ratio`` × the population median
(computed *excluding* that peer) **and** an absolute floor — mirroring
how the paper contrasts 42.8 % against the 1.58 % average.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.core.detector import DetectionResult
from repro.core.state import PeerKey

__all__ = ["PeerStat", "NoisyPeerDetector", "NoisyPeerReport"]


@dataclass(frozen=True)
class PeerStat:
    """Zombie statistics of one peer router."""

    peer: PeerKey
    asn: int
    visible: int
    zombies: int

    @property
    def probability(self) -> float:
        """P(this peer holds a zombie | it saw the beacon announcement)."""
        return self.zombies / self.visible if self.visible else 0.0


@dataclass
class NoisyPeerReport:
    """Outcome of a noisy-peer scan."""

    stats: list[PeerStat]
    noisy: list[PeerStat]

    @property
    def noisy_keys(self) -> frozenset[PeerKey]:
        return frozenset(stat.peer for stat in self.noisy)

    @property
    def noisy_asns(self) -> frozenset[int]:
        return frozenset(stat.asn for stat in self.noisy)

    def clean_mean_probability(self) -> float:
        """Average zombie probability over non-noisy peers (the paper's
        1.58 % figure)."""
        clean = [s.probability for s in self.stats if s.peer not in self.noisy_keys]
        return statistics.fmean(clean) if clean else 0.0


class NoisyPeerDetector:
    """Flag outlier peers from detection statistics."""

    def __init__(self, ratio: float = 5.0, floor: float = 0.05,
                 min_visible: int = 10):
        if ratio <= 1.0:
            raise ValueError("ratio must exceed 1")
        self.ratio = ratio
        self.floor = floor
        self.min_visible = min_visible

    def analyze(self, result: DetectionResult,
                peer_asns: Optional[dict[PeerKey, int]] = None) -> NoisyPeerReport:
        """Compute per-router stats from ``result`` and flag outliers.

        ``peer_asns`` maps router keys to ASNs; when omitted, ASNs are
        recovered from the result's outbreak routes (routers that never
        held a zombie get ASN 0 if unknown — harmless for exclusion,
        which is keyed by router).
        """
        asn_of: dict[PeerKey, int] = dict(peer_asns or {})
        for outbreak in result.outbreaks:
            for route in outbreak.routes:
                asn_of.setdefault(route.peer, route.peer_asn)

        stats = []
        for key, visible in sorted(result.router_visible.items()):
            zombies = result.router_zombies.get(key, 0)
            stats.append(PeerStat(key, asn_of.get(key, 0), visible, zombies))

        noisy = [stat for stat in stats if self._is_noisy(stat, stats)]
        return NoisyPeerReport(stats=stats, noisy=noisy)

    def _is_noisy(self, stat: PeerStat, population: list[PeerStat]) -> bool:
        if stat.visible < self.min_visible:
            return False
        if stat.probability < self.floor:
            return False
        others = [s.probability for s in population if s.peer != stat.peer]
        if not others:
            return False
        baseline = statistics.median(others)
        if baseline == 0.0:
            return True  # any probability over the floor is an outlier
        return stat.probability > self.ratio * baseline
