"""Zombie route / zombie outbreak data model.

Definitions follow Fontugne et al. and the paper: a **zombie route** is
a (prefix, peer) pair where the route remains in the peer's view after
the origin's withdrawal (+ detection threshold); a **zombie outbreak**
is the set of all zombie routes of the same prefix within the same
beacon interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.beacons.schedule import BeaconInterval
from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import UpdateRecord
from repro.core.state import PeerKey
from repro.net.prefix import Prefix

__all__ = ["ZombieRoute", "ZombieOutbreak"]


@dataclass(frozen=True)
class ZombieRoute:
    """One stuck route: a beacon still present at one RIS peer router."""

    interval: BeaconInterval
    peer: PeerKey
    peer_asn: int
    detected_at: int
    announcement: Optional[UpdateRecord]
    #: True when the Aggregator clock proves the stuck announcement was
    #: originated before this interval — i.e. an *old* zombie that the
    #: revised methodology refuses to double-count.
    stale: bool = False

    @property
    def prefix(self) -> Prefix:
        return self.interval.prefix

    @property
    def attributes(self) -> Optional[PathAttributes]:
        if self.announcement is None:
            return None
        return self.announcement.attributes

    @property
    def zombie_path(self):
        attrs = self.attributes
        return attrs.as_path if attrs is not None else None

    def __str__(self) -> str:
        collector, address = self.peer
        return (f"zombie {self.prefix} @ {collector}/{address} (AS{self.peer_asn})"
                f"{' [stale]' if self.stale else ''}")


@dataclass(frozen=True)
class ZombieOutbreak:
    """All zombie routes of one prefix in one beacon interval."""

    interval: BeaconInterval
    routes: tuple[ZombieRoute, ...]

    def __post_init__(self):
        for route in self.routes:
            if route.interval != self.interval:
                raise ValueError("route belongs to a different interval")

    @property
    def prefix(self) -> Prefix:
        return self.interval.prefix

    @property
    def size(self) -> int:
        return len(self.routes)

    @property
    def peer_asns(self) -> set[int]:
        return {route.peer_asn for route in self.routes}

    @property
    def peer_routers(self) -> set[PeerKey]:
        return {route.peer for route in self.routes}

    def zombie_paths(self) -> list:
        return [route.zombie_path for route in self.routes
                if route.zombie_path is not None]

    def common_subpath(self) -> tuple[int, ...]:
        """Longest common suffix of all zombie AS paths (ending at the
        origin) — the "common subpath" the paper reports per outbreak."""
        paths = [tuple(path.asns) for path in self.zombie_paths()]
        if not paths:
            return ()
        shortest = min(len(p) for p in paths)
        common: list[int] = []
        for offset in range(1, shortest + 1):
            candidates = {p[-offset] for p in paths}
            if len(candidates) != 1:
                break
            common.append(candidates.pop())
        return tuple(reversed(common))

    def __str__(self) -> str:
        return (f"outbreak {self.prefix} @ {self.interval.announce_time}: "
                f"{self.size} routes / {len(self.peer_asns)} peer ASes")
