"""Zombie resurrection detection (paper §5.1).

Two complementary signals:

* **Short scale** (update stream): a peer withdraws the stuck prefix,
  then receives a *new announcement* for it minutes later without any
  new beacon announcement — the Fig. 2 uptick after 160 minutes
  (common subpath ``4637 1299 25091 8298 210312``).
  → :func:`find_late_announcements`.

* **Long scale** (RIB dumps): the prefix disappears from every RIS peer
  for one or more dump rounds and then reappears — the Fig. 4 timeline
  of ``2a0d:3dc1:1851::/48``.
  → :func:`find_resurrections` over :class:`ZombieLifespan` results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.beacons.schedule import BeaconInterval
from repro.bgp.attributes import ASPath
from repro.bgp.messages import Record, UpdateRecord
from repro.core.lifespan import ZombieLifespan
from repro.core.state import PeerKey, PrefixState, StateReconstructor
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE

__all__ = [
    "LateAnnouncement",
    "ResurrectionEvent",
    "find_late_announcements",
    "find_resurrections",
]


@dataclass(frozen=True)
class LateAnnouncement:
    """A re-announcement of a withdrawn beacon at one peer."""

    interval: BeaconInterval
    peer: PeerKey
    peer_asn: int
    withdrawn_at: int
    reannounced_at: int
    path: ASPath

    @property
    def offset_minutes(self) -> float:
        """Minutes between the beacon withdrawal and the re-announcement."""
        return (self.reannounced_at - self.interval.withdraw_time) / MINUTE


@dataclass(frozen=True)
class ResurrectionEvent:
    """A dump-scale resurrection: gone from all peers, then back."""

    prefix: Prefix
    disappeared_after: int      # last dump of the previous segment
    resurrected_at: int         # first dump of the next segment
    peers: frozenset[PeerKey]   # peers of the new segment

    @property
    def gap_days(self) -> float:
        return (self.resurrected_at - self.disappeared_after) / 86400


def find_late_announcements(records: Sequence[Record],
                            intervals: Iterable[BeaconInterval],
                            min_offset: int = 120 * MINUTE,
                            max_offset: Optional[int] = None
                            ) -> list[LateAnnouncement]:
    """Scan each interval for peers that withdrew the beacon and later
    received a fresh announcement at least ``min_offset`` after the
    beacon's withdrawal."""
    by_prefix: dict[Prefix, list[UpdateRecord]] = {}
    for record in records:
        if isinstance(record, UpdateRecord):
            by_prefix.setdefault(record.prefix, []).append(record)

    events: list[LateAnnouncement] = []
    for interval in intervals:
        if interval.discarded:
            continue
        window_end = (interval.withdraw_time + max_offset
                      if max_offset is not None else None)
        prefix_records = by_prefix.get(interval.prefix, [])
        per_peer: dict[PeerKey, list[UpdateRecord]] = {}
        for record in prefix_records:
            if record.timestamp < interval.announce_time:
                continue
            if window_end is not None and record.timestamp > window_end:
                continue
            per_peer.setdefault((record.collector, record.peer_address),
                                []).append(record)
        for peer, peer_records in sorted(per_peer.items()):
            event = _scan_peer(interval, peer, peer_records, min_offset)
            if event is not None:
                events.append(event)
    return events


def _scan_peer(interval: BeaconInterval, peer: PeerKey,
               records: list[UpdateRecord],
               min_offset: int) -> Optional[LateAnnouncement]:
    records = sorted(records, key=lambda r: r.timestamp)
    withdrawn_at: Optional[int] = None
    for record in records:
        if record.is_withdrawal:
            if record.timestamp >= interval.withdraw_time:
                withdrawn_at = record.timestamp
            continue
        if (withdrawn_at is not None
                and record.timestamp >= interval.withdraw_time + min_offset):
            return LateAnnouncement(
                interval=interval, peer=peer, peer_asn=record.peer_asn,
                withdrawn_at=withdrawn_at, reannounced_at=record.timestamp,
                path=record.attributes.as_path)
    return None


def find_resurrections(lifespans: Iterable[ZombieLifespan],
                       late_first_seen: int = 2 * 86400
                       ) -> list[ResurrectionEvent]:
    """Extract resurrection events.

    Two forms count: (a) a gap between visible segments, and (b) a first
    sighting more than ``late_first_seen`` after the withdrawal — the
    route had vanished from every peer and came back (the paper's
    2a0d:3dc1:1851::/48 reappearing a week after full withdrawal)."""
    events: list[ResurrectionEvent] = []
    for lifespan in lifespans:
        segments = lifespan.segments
        if not segments:
            continue
        first = segments[0]
        if first.start > lifespan.withdraw_time + late_first_seen:
            events.append(ResurrectionEvent(
                prefix=lifespan.prefix,
                disappeared_after=lifespan.withdraw_time,
                resurrected_at=first.start,
                peers=first.peers))
        for previous, following in zip(segments, segments[1:]):
            events.append(ResurrectionEvent(
                prefix=lifespan.prefix,
                disappeared_after=previous.end,
                resurrected_at=following.start,
                peers=following.peers))
    return sorted(events, key=lambda e: (e.resurrected_at, str(e.prefix)))
