"""Root-cause AS inference via the "palm tree" heuristic (paper §5.2).

The AS graph built from an outbreak's zombie AS paths typically looks
like a palm tree: starting from the origin AS there is a single chain
of ASes which eventually branches into subtrees.  The last AS of that
single chain is the one that kept propagating the zombie route — the
*suspected* root cause (with the caveats the paper lists: the previous
AS may have failed to send it the withdrawal, and invisible IXP route
servers may hide the true culprit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.bgp.attributes import ASPath
from repro.core.outbreaks import ZombieOutbreak

__all__ = ["RootCauseInference", "infer_root_cause", "infer_root_causes",
           "build_palm_tree", "PalmTree"]


@dataclass(frozen=True)
class PalmTree:
    """The structure extracted from an outbreak's zombie paths."""

    origin: int
    #: the single chain from the origin up to (and including) the
    #: branching AS.
    trunk: tuple[int, ...]
    #: suspected root cause: last AS of the trunk.
    suspect: Optional[int]
    #: ASes seen after the branch point (the palm's fronds).
    branches: frozenset[int]
    #: how many input paths were rooted at the origin (and therefore
    #: contributed to the tree) vs how many were offered in total.
    #: ``rooted_paths == 0`` means "no evidence", which is a different
    #: verdict from "evidence, but no unique suspect".
    rooted_paths: int = 0
    total_paths: int = 0

    @property
    def verdict(self) -> str:
        """``suspect`` | ``no-suspect`` | ``no-evidence``."""
        if self.suspect is not None:
            return "suspect"
        if self.rooted_paths == 0:
            return "no-evidence"
        return "no-suspect"


@dataclass(frozen=True)
class RootCauseInference:
    """One outbreak's inference result."""

    outbreak: ZombieOutbreak
    tree: PalmTree

    @property
    def suspect(self) -> Optional[int]:
        return self.tree.suspect


def _collapse_prepending(asns: Sequence[int]) -> tuple[int, ...]:
    """Collapse consecutive duplicate ASNs (AS-path prepending).

    Prepending is traffic engineering, not topology: ``10 10 2 1`` and
    ``10 2 1`` describe the same AS-level route.  Left uncollapsed, a
    prepended RIS peer appears both as path head and mid-path, escapes
    the ``pure_observers`` guard below, and gets blamed; a prepending
    origin produces nonsense trunks like ``(1, 1, 2)``.
    """
    collapsed: list[int] = []
    for asn in asns:
        if not collapsed or collapsed[-1] != asn:
            collapsed.append(asn)
    return tuple(collapsed)


def _build_palm_tree(paths: Sequence[ASPath], origin: int) -> PalmTree:
    """Walk from the origin towards the peers while the next hop is
    unique across all paths.

    Refinement over the paper's heuristic (which it leaves as future
    work): the trunk never extends into a *pure observer* — an AS that
    only ever appears as the head (RIS peer end) of zombie paths.  Such
    an AS merely received the stale route; an AS that also appears
    mid-path demonstrably propagated it and remains blameable.
    """
    total = len(paths)
    reversed_paths = []
    for path in paths:
        asns = _collapse_prepending(tuple(path.asns))
        if not asns or asns[-1] != origin:
            continue  # not rooted at the beacon origin — skip
        reversed_paths.append(tuple(reversed(asns)))  # origin first
    if not reversed_paths:
        return PalmTree(origin, (origin,), None, frozenset(), 0, total)

    heads = {p[-1] for p in reversed_paths}
    mid_asns = {asn for p in reversed_paths for asn in p[:-1]}
    pure_observers = heads - mid_asns

    trunk = [origin]
    depth = 1
    while True:
        nexts = {p[depth] for p in reversed_paths if len(p) > depth}
        if len(nexts) != 1:
            break
        candidate = nexts.pop()
        if candidate in pure_observers:
            break
        trunk.append(candidate)
        depth += 1
        # Stop if some path terminates exactly at the trunk end: the
        # chain cannot extend past a peer that is itself on the trunk.
        if any(len(p) == depth for p in reversed_paths):
            break

    branches = set()
    for p in reversed_paths:
        branches.update(p[depth:])
    suspect = trunk[-1] if len(trunk) > 1 else None
    return PalmTree(origin, tuple(trunk), suspect, frozenset(branches),
                    len(reversed_paths), total)


def build_palm_tree(paths: Sequence[ASPath], origin: int) -> PalmTree:
    """Public entry point for callers that hold bare paths rather than
    a :class:`ZombieOutbreak` (e.g. the forensics endpoint)."""
    return _build_palm_tree(paths, origin)


def infer_root_cause(outbreak: ZombieOutbreak,
                     origin_asn: int) -> RootCauseInference:
    """Infer the suspected root-cause AS of one outbreak."""
    tree = _build_palm_tree(outbreak.zombie_paths(), origin_asn)
    return RootCauseInference(outbreak=outbreak, tree=tree)


def infer_root_causes(outbreaks: Iterable[ZombieOutbreak],
                      origin_asn: int) -> list[RootCauseInference]:
    """Batch inference, one result per outbreak."""
    return [infer_root_cause(o, origin_asn) for o in outbreaks]
