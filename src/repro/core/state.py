"""Per-peer prefix state reconstruction from RIS raw data (paper §3.1).

The revised methodology's first pillar: rather than querying the
RIPEstat looking glass, reconstruct the *present/removed* state of any
prefix at any RIS peer at any instant, at message-level granularity,
from archived BGP UPDATE messages plus STATE (session) messages.

State machine per (peer router, prefix):

* an announcement ⇒ PRESENT (remembering the announcement record);
* a withdrawal ⇒ REMOVED;
* session down ⇒ REMOVED (everything learned on the session is void);
* session up ⇒ REMOVED until the peer re-announces.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Optional

from repro.bgp.jsonio import record_from_json, record_to_json
from repro.bgp.messages import Record, StateRecord, UpdateRecord, record_sort_key
from repro.net.prefix import Prefix

__all__ = ["PrefixState", "PeerKey", "StateReconstructor"]

#: Snapshot document version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1

#: A RIS peer router identity: (collector, peer_address).
PeerKey = tuple[str, str]


class PrefixState(Enum):
    PRESENT = "present"
    REMOVED = "removed"


@dataclass(frozen=True)
class _Event:
    time: int
    order: int           # global tiebreak preserving stream order
    present: bool
    announcement: Optional[UpdateRecord]  # set when present


class StateReconstructor:
    """Replayable state index over a record stream.

    Build once over a window of records, then query
    :meth:`state_at`/:meth:`last_announcement` for any instant inside the
    window.  Interval isolation (§3.1: "we process each interval
    independently") is achieved by constructing the reconstructor from
    only that interval's records.
    """

    def __init__(self, records: Iterable[Record]):
        #: (peer, prefix) -> time-ordered events.
        self._events: dict[tuple[PeerKey, Prefix], list[_Event]] = {}
        #: prefix -> peers with an event list for it.  Per-prefix
        #: queries (``peers_with_prefix``/``ever_announced``) walk this
        #: instead of scanning every (peer, prefix) pair.
        self._peers_by_prefix: dict[Prefix, set[PeerKey]] = {}
        #: peers that ever appeared in the stream.
        self._peers: dict[PeerKey, int] = {}
        ordered = sorted(records, key=record_sort_key)
        for order, record in enumerate(ordered):
            key: PeerKey = (record.collector, record.peer_address)
            self._peers.setdefault(key, record.peer_asn)
            if isinstance(record, StateRecord):
                if record.is_session_down or record.is_session_up:
                    # Both directions void previously learned routes: on
                    # "up" the peer must re-announce before counting as
                    # present.
                    self._append_for_peer(key, record.timestamp, order)
                continue
            assert isinstance(record, UpdateRecord)
            event = _Event(record.timestamp, order,
                           present=record.is_announcement,
                           announcement=record if record.is_announcement else None)
            self._events.setdefault((key, record.prefix), []).append(event)
            self._peers_by_prefix.setdefault(record.prefix, set()).add(key)

    def _append_for_peer(self, key: PeerKey, time: int, order: int) -> None:
        """Record a session transition: a REMOVED event on every prefix
        already tracked for the peer, plus a marker so future prefixes
        are unaffected (they start REMOVED anyway)."""
        for (peer, prefix), events in self._events.items():
            if peer == key:
                events.append(_Event(time, order, present=False, announcement=None))

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe document from which :meth:`from_snapshot` rebuilds
        an equivalent reconstructor (same answers to every query).

        The checkpoint/restore path of :mod:`repro.observatory` uses this
        so a restarted process does not re-scan the window.
        """
        events = []
        for (key, prefix), items in sorted(
                self._events.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            events.append({
                "collector": key[0],
                "peer_address": key[1],
                "prefix": str(prefix),
                "events": [
                    {"time": e.time, "order": e.order, "present": e.present,
                     "announcement": (record_to_json(e.announcement)
                                      if e.announcement is not None else None)}
                    for e in items
                ],
            })
        return {
            "version": SNAPSHOT_VERSION,
            "peers": [[collector, address, asn]
                      for (collector, address), asn in sorted(self._peers.items())],
            "events": events,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "StateReconstructor":
        """Rebuild a reconstructor from a :meth:`snapshot` document."""
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported StateReconstructor snapshot version: "
                f"{snapshot.get('version')!r}")
        instance = cls(())
        for collector, address, asn in snapshot["peers"]:
            instance._peers[(collector, address)] = asn
        for entry in snapshot["events"]:
            key = ((entry["collector"], entry["peer_address"]),
                   Prefix(entry["prefix"]))
            instance._events[key] = [
                _Event(item["time"], item["order"], item["present"],
                       (record_from_json(item["announcement"])
                        if item["announcement"] is not None else None))
                for item in entry["events"]
            ]
            instance._peers_by_prefix.setdefault(key[1], set()).add(key[0])
        return instance

    # -- queries ---------------------------------------------------------

    def peers(self) -> dict[PeerKey, int]:
        """Every peer router seen, mapped to its ASN."""
        return dict(self._peers)

    def peer_asn(self, key: PeerKey) -> Optional[int]:
        return self._peers.get(key)

    def prefixes(self) -> set[Prefix]:
        return {prefix for (_, prefix) in self._events}

    def _last_event(self, key: PeerKey, prefix: Prefix,
                    time: int) -> Optional[_Event]:
        events = self._events.get((key, prefix))
        if not events:
            return None
        # Events are appended in stream order, which is time order.
        index = bisect.bisect_right(events, (time, float("inf")),
                                    key=lambda e: (e.time, e.order))
        if index == 0:
            return None
        return events[index - 1]

    def state_at(self, key: PeerKey, prefix: Prefix, time: int) -> PrefixState:
        """The reconstructed state of ``prefix`` at peer ``key`` at
        ``time`` (unknown peers/prefixes are REMOVED)."""
        event = self._last_event(key, prefix, time)
        if event is None or not event.present:
            return PrefixState.REMOVED
        return PrefixState.PRESENT

    def last_announcement(self, key: PeerKey, prefix: Prefix,
                          time: int) -> Optional[UpdateRecord]:
        """The announcement that makes the prefix PRESENT at ``time``
        (None when the state is REMOVED)."""
        event = self._last_event(key, prefix, time)
        if event is None or not event.present:
            return None
        return event.announcement

    def peers_with_prefix(self, prefix: Prefix, time: int) -> list[PeerKey]:
        """Peer routers whose state for ``prefix`` is PRESENT at ``time``."""
        present = []
        for key in self._peers_by_prefix.get(prefix, ()):
            if self.state_at(key, prefix, time) is PrefixState.PRESENT:
                present.append(key)
        return sorted(present)

    def ever_announced(self, prefix: Prefix, key: Optional[PeerKey] = None) -> bool:
        """Did any peer (or one specific peer) announce ``prefix`` inside
        the window this reconstructor covers?"""
        if key is not None:
            events = self._events.get((key, prefix), [])
            return any(e.present for e in events)
        return any(any(e.present for e in self._events[(peer, prefix)])
                   for peer in self._peers_by_prefix.get(prefix, ()))
