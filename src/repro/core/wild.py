"""Zombie hunting "in the wild" (Ongkanchana et al., ANRW'21 — the
related work the paper builds on in §2).

Beacons give ground truth about withdrawal times; arbitrary prefixes do
not.  The wild heuristic reconstructs that ground truth from the data
itself: a burst of withdrawals for one prefix seen by *most* peers
within a short propagation window is a **complete withdrawal** (the
origin really pulled the prefix); peers that keep the route afterwards
hold wild zombies.  Withdrawals seen by only a few peers are local
topology changes and are skipped.

The paper's §2 take-away — "noisy prefixes such as beacons are more
prone to get stuck than regular prefixes" — can be tested with this
module by comparing beacon-prefix and wild-prefix zombie rates over the
same record stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record, UpdateRecord
from repro.core.detector import DetectionResult, DetectorConfig, ZombieDetector
from repro.core.state import PeerKey
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE

__all__ = ["WildWithdrawal", "WildConfig", "find_complete_withdrawals",
           "detect_wild_zombies"]


@dataclass(frozen=True)
class WildConfig:
    """The classification thresholds of the wild heuristic."""

    #: withdrawals within this window belong to one event.
    propagation_window: int = 10 * MINUTE
    #: fraction of the prefix's visible peers that must withdraw for the
    #: event to count as a complete withdrawal.
    visibility_fraction: float = 0.8
    #: minimum number of withdrawing peers (guards tiny denominators).
    min_peers: int = 3
    #: stuck threshold, as everywhere else in the pipeline.
    threshold: int = 90 * MINUTE


@dataclass(frozen=True)
class WildWithdrawal:
    """One inferred complete-withdrawal event."""

    prefix: Prefix
    start: int                     # first withdrawal of the burst
    end: int                       # last withdrawal inside the window
    withdrawing_peers: frozenset[PeerKey]
    visible_peers: int

    @property
    def coverage(self) -> float:
        return (len(self.withdrawing_peers) / self.visible_peers
                if self.visible_peers else 0.0)


def find_complete_withdrawals(records: Sequence[Record],
                              config: Optional[WildConfig] = None,
                              prefixes: Optional[Iterable[Prefix]] = None
                              ) -> list[WildWithdrawal]:
    """Scan a record stream for complete-withdrawal events."""
    config = config or WildConfig()
    wanted = set(prefixes) if prefixes is not None else None

    #: prefix -> peers that announced it (visibility denominator).
    announced_by: dict[Prefix, set[PeerKey]] = {}
    #: prefix -> time-ordered withdrawal (time, peer).
    withdrawals: dict[Prefix, list[tuple[int, PeerKey]]] = {}
    for record in records:
        if not isinstance(record, UpdateRecord):
            continue
        if wanted is not None and record.prefix not in wanted:
            continue
        key: PeerKey = (record.collector, record.peer_address)
        if record.is_announcement:
            announced_by.setdefault(record.prefix, set()).add(key)
        else:
            withdrawals.setdefault(record.prefix, []).append(
                (record.timestamp, key))

    events: list[WildWithdrawal] = []
    for prefix, items in withdrawals.items():
        visible = announced_by.get(prefix, set())
        if len(visible) < config.min_peers:
            continue
        items.sort()
        index = 0
        while index < len(items):
            start_time = items[index][0]
            window_end = start_time + config.propagation_window
            burst_peers: set[PeerKey] = set()
            scan = index
            last_time = start_time
            while scan < len(items) and items[scan][0] <= window_end:
                burst_peers.add(items[scan][1])
                last_time = items[scan][0]
                scan += 1
            coverage = len(burst_peers & visible) / len(visible)
            if (coverage >= config.visibility_fraction
                    and len(burst_peers) >= config.min_peers):
                events.append(WildWithdrawal(
                    prefix=prefix, start=start_time, end=last_time,
                    withdrawing_peers=frozenset(burst_peers),
                    visible_peers=len(visible)))
            index = scan
    return sorted(events, key=lambda e: (e.start, str(e.prefix)))


def detect_wild_zombies(records: Sequence[Record],
                        config: Optional[WildConfig] = None,
                        prefixes: Optional[Iterable[Prefix]] = None
                        ) -> DetectionResult:
    """Full wild pipeline: classify withdrawals, then run the revised
    detector with the inferred events as pseudo beacon intervals.

    The synthesised interval announces at the first sighting of the
    prefix and withdraws at the event's burst start, so the standard
    detector semantics (state at ``withdrawal + threshold``) apply
    unchanged — no beacon deployment needed.
    """
    config = config or WildConfig()
    events = find_complete_withdrawals(records, config, prefixes)

    import bisect

    announce_times: dict[Prefix, list[int]] = {}
    for record in records:
        if isinstance(record, UpdateRecord) and record.is_announcement:
            announce_times.setdefault(record.prefix, []).append(
                record.timestamp)
    for times in announce_times.values():
        times.sort()

    intervals = []
    for event in events:
        # The pseudo interval opens at the last announcement before the
        # withdrawal burst (each event gets its own epoch, so interval
        # isolation works exactly as with real beacons).
        times = announce_times.get(event.prefix, [])
        index = bisect.bisect_left(times, event.start)
        announce = times[index - 1] if index else event.start - 1
        if announce >= event.start:
            announce = event.start - 1
        intervals.append(BeaconInterval(
            prefix=event.prefix, announce_time=announce,
            withdraw_time=event.start, origin_asn=0))

    detector = ZombieDetector(DetectorConfig(threshold=config.threshold,
                                             dedup=False))
    return detector.detect(records, intervals)
