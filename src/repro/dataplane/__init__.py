"""Data plane: forwarding tables, packet walks, zombie traffic impact."""

from repro.dataplane.forwarding import (
    DEFAULT_TTL,
    ForwardingTable,
    HopOutcome,
    PacketWalk,
    forward_packet,
    traceroute,
)
from repro.dataplane.impact import (
    ImpactReport,
    assess_impact,
    fig1_scenario_outcomes,
)

__all__ = [
    "DEFAULT_TTL",
    "ForwardingTable",
    "HopOutcome",
    "PacketWalk",
    "forward_packet",
    "traceroute",
    "ImpactReport",
    "assess_impact",
    "fig1_scenario_outcomes",
]
