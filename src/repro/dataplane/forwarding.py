"""Data-plane substrate: forwarding tables and packet walks.

The paper's Fig. 1 motivates zombies by their *traffic* impact: a stale
less-specific (or equal) route pulls packets toward an AS that no longer
has a route, producing forwarding loops or blackholes.  This module
derives per-AS forwarding tables from the control plane (the simulator's
Loc-RIBs) using longest-prefix matching, and walks packets hop by hop to
classify the outcome: DELIVERED, BLACKHOLED, or LOOPED.

This is also how Fontugne et al. *validated* zombies (traceroutes from
RIPE Atlas probes): a traceroute toward a withdrawn-but-stuck prefix
reveals whether intermediate ASes still forward on the stale route.
:func:`traceroute` reproduces that measurement inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from repro.net.prefix import Prefix

__all__ = ["ForwardingTable", "HopOutcome", "PacketWalk", "forward_packet",
           "traceroute"]

#: Default hop budget — IPv6 default TTL.
DEFAULT_TTL = 64


class HopOutcome(Enum):
    """Terminal state of a packet walk."""

    DELIVERED = "delivered"       # reached the destination AS
    BLACKHOLED = "blackholed"     # an AS had no route
    LOOPED = "looped"             # revisited an AS
    TTL_EXPIRED = "ttl-expired"   # hop budget exhausted


class ForwardingTable:
    """One AS's FIB: prefix → next-hop AS (None = locally delivered).

    Built from the control plane: the AS's best route per prefix points
    at the neighbour it was learned from; locally originated prefixes
    deliver locally.
    """

    def __init__(self, asn: int):
        self.asn = asn
        self._entries: dict[Prefix, Optional[int]] = {}

    def install(self, prefix: Prefix, next_hop_asn: Optional[int]) -> None:
        self._entries[prefix] = next_hop_asn

    def remove(self, prefix: Prefix) -> None:
        self._entries.pop(prefix, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    def lookup(self, destination: Prefix) -> Optional[tuple[Prefix, Optional[int]]]:
        """Longest-prefix match for ``destination``; returns the matched
        (prefix, next-hop) or None when no route covers it.

        ``destination`` is typically a host route (/32 or /128).
        """
        best: Optional[tuple[Prefix, Optional[int]]] = None
        for prefix, next_hop in self._entries.items():
            if not prefix.contains(destination):
                continue
            if best is None or prefix.prefixlen > best[0].prefixlen:
                best = (prefix, next_hop)
        return best

    @classmethod
    def from_router(cls, router) -> "ForwardingTable":
        """Derive the FIB from a simulator :class:`ASRouter`."""
        table = cls(router.asn)
        for prefix, (src, _attrs) in router.best.items():
            table.install(prefix, src)
        return table


@dataclass(frozen=True)
class PacketWalk:
    """The result of forwarding one packet through the AS graph."""

    destination: Prefix
    source_asn: int
    path: tuple[int, ...]
    outcome: HopOutcome
    #: the matched prefix at each hop (None when blackholed at that hop).
    matches: tuple[Optional[Prefix], ...]

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1

    @property
    def delivered(self) -> bool:
        return self.outcome is HopOutcome.DELIVERED

    def __str__(self) -> str:
        hops = " -> ".join(f"AS{asn}" for asn in self.path)
        return f"{self.destination} from AS{self.source_asn}: {hops} [{self.outcome.value}]"


def forward_packet(tables: dict[int, ForwardingTable], source_asn: int,
                   destination: Prefix, ttl: int = DEFAULT_TTL) -> PacketWalk:
    """Walk a packet from ``source_asn`` toward ``destination``.

    ``tables`` maps ASN → FIB.  The walk ends when an AS delivers
    locally, has no covering route (blackhole), appears twice (loop —
    the Fig. 1 scenario), or the hop budget runs out.
    """
    path: list[int] = [source_asn]
    matches: list[Optional[Prefix]] = []
    visited = {source_asn}
    current = source_asn

    for _ in range(ttl):
        table = tables.get(current)
        hit = table.lookup(destination) if table is not None else None
        if hit is None:
            matches.append(None)
            return PacketWalk(destination, source_asn, tuple(path),
                              HopOutcome.BLACKHOLED, tuple(matches))
        matched_prefix, next_asn = hit
        matches.append(matched_prefix)
        if next_asn is None:
            return PacketWalk(destination, source_asn, tuple(path),
                              HopOutcome.DELIVERED, tuple(matches))
        if next_asn in visited:
            path.append(next_asn)
            return PacketWalk(destination, source_asn, tuple(path),
                              HopOutcome.LOOPED, tuple(matches))
        visited.add(next_asn)
        path.append(next_asn)
        current = next_asn
    return PacketWalk(destination, source_asn, tuple(path),
                      HopOutcome.TTL_EXPIRED, tuple(matches))


def traceroute(world, source_asn: int, destination: Prefix,
               ttl: int = DEFAULT_TTL) -> PacketWalk:
    """Fontugne-style validation probe: forward a packet through the
    *current* state of a simulated world (FIBs derived on the fly)."""
    tables = {asn: ForwardingTable.from_router(router)
              for asn, router in world.routers.items()}
    return forward_packet(tables, source_asn, destination, ttl)
