"""Traffic-impact assessment of zombie outbreaks.

Quantifies what the paper's Fig. 1 illustrates: when a zombie route
survives the withdrawal, traffic toward the withdrawn prefix is pulled
along the stale path and ends in a loop or blackhole; and when a zombie
*less-specific* shadows a re-announced more-specific elsewhere (the
prefix-sale scenario of Fig. 1), parts of the Internet lose reachability
to the new holder — a partial outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.dataplane.forwarding import (
    ForwardingTable,
    HopOutcome,
    PacketWalk,
    forward_packet,
)
from repro.net.prefix import Prefix

__all__ = ["ImpactReport", "assess_impact", "fig1_scenario_outcomes"]


@dataclass
class ImpactReport:
    """Per-source outcomes of traffic toward a zombie prefix."""

    prefix: Prefix
    walks: list[PacketWalk] = field(default_factory=list)

    def count(self, outcome: HopOutcome) -> int:
        return sum(1 for walk in self.walks if walk.outcome is outcome)

    @property
    def total(self) -> int:
        return len(self.walks)

    @property
    def affected_fraction(self) -> float:
        """Fraction of sources whose traffic does not simply die at the
        first hop — i.e. sources actively misrouted by the zombie
        (looped, TTL-expired, or blackholed beyond the source itself)."""
        if not self.walks:
            return 0.0
        affected = sum(1 for walk in self.walks
                       if walk.outcome in (HopOutcome.LOOPED,
                                           HopOutcome.TTL_EXPIRED)
                       or (walk.outcome is HopOutcome.BLACKHOLED
                           and walk.hop_count > 0))
        return affected / len(self.walks)

    def looped_paths(self) -> list[PacketWalk]:
        return [walk for walk in self.walks
                if walk.outcome is HopOutcome.LOOPED]


def assess_impact(world, prefix: Prefix,
                  source_asns: Optional[Iterable[int]] = None,
                  host_suffix_bits: int = 0) -> ImpactReport:
    """Forward a probe toward ``prefix`` from every source AS and
    classify the outcomes against the world's *current* FIBs.

    Run this after the origin withdrew ``prefix``: any non-blackhole
    outcome at hop >= 1 is zombie-induced misrouting.
    """
    tables = {asn: ForwardingTable.from_router(router)
              for asn, router in world.routers.items()}
    sources = sorted(source_asns) if source_asns is not None \
        else sorted(world.routers)
    report = ImpactReport(prefix)
    for source in sources:
        report.walks.append(forward_packet(tables, source, prefix))
    return report


def fig1_scenario_outcomes(world, covering: Prefix, covered: Prefix,
                           sources: Iterable[int]) -> dict[int, PacketWalk]:
    """The paper's Fig. 1 partial-outage test: traffic addressed inside
    ``covered`` (the withdrawn /48) while ``covering`` (the /32 of the
    new owner) is announced.  Longest-prefix matching sends traffic via
    the zombie /48 where it survives, looping between the old origin's
    upstream and the zombie holder."""
    tables = {asn: ForwardingTable.from_router(router)
              for asn, router in world.routers.items()}
    return {source: forward_packet(tables, source, covered)
            for source in sorted(sources)}
