"""Experiment harness: world builders and table/figure reproducers."""

from repro.experiments.archive_io import (
    records_window,
    synthetic_update_records,
    write_records_archive,
)
from repro.experiments.campaign import CampaignRun, run_campaign
from repro.experiments.cases import CaseStudy, build_case_study, build_paper_cases
from repro.experiments.config import (
    REPLICATION_PERIODS,
    CampaignConfig,
    ReplicationConfig,
)
from repro.experiments.figures import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
    build_figure7,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.experiments.replication import ReplicationRun, run_replication
from repro.experiments.runner import campaign_run, replication_run, replication_runs
from repro.experiments.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "CampaignRun",
    "run_campaign",
    "write_records_archive",
    "synthetic_update_records",
    "records_window",
    "CaseStudy",
    "build_case_study",
    "build_paper_cases",
    "CampaignConfig",
    "ReplicationConfig",
    "REPLICATION_PERIODS",
    "ReplicationRun",
    "run_replication",
    "campaign_run",
    "replication_run",
    "replication_runs",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "build_figure6",
    "build_figure7",
    "render_figure2",
    "render_figure3",
    "render_figure4",
]
