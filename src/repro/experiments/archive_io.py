"""Materialise record streams as on-disk RIS archives.

The experiment harness simulates worlds in memory; this module turns
any record stream (a :class:`~repro.experiments.campaign.CampaignRun`'s
records, a replication run, or the synthetic workload below) into a
byte-level archive so the high-throughput read path — sidecar indexes,
filter push-down, parallel decode, the decoded-file cache — can be
exercised and benchmarked against realistic multi-collector windows.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import (
    Announcement,
    PeerState,
    Record,
    StateRecord,
    UpdateRecord,
    Withdrawal,
)
from repro.net.prefix import Prefix
from repro.ris.archive import ArchiveWriter
from repro.utils.timeutil import HOUR

__all__ = ["write_records_archive", "synthetic_update_records",
           "records_window"]


def write_records_archive(records: Iterable[Record],
                          root: Union[str, Path]) -> dict[str, list[Path]]:
    """Write a mixed-collector record stream into an archive at ``root``;
    returns the files written per collector."""
    by_collector: dict[str, list[Record]] = {}
    for record in records:
        by_collector.setdefault(record.collector, []).append(record)
    writer = ArchiveWriter(root)
    return {collector: writer.write_updates(collector, items)
            for collector, items in sorted(by_collector.items())}


def records_window(records: Sequence[Record]) -> tuple[int, int]:
    """Half-open ``[start, end)`` window covering every record."""
    if not records:
        raise ValueError("empty record stream has no window")
    timestamps = [r.timestamp for r in records]
    return min(timestamps), max(timestamps) + 1


def synthetic_update_records(collectors: Sequence[str] = ("rrc00", "rrc01",
                                                          "rrc04", "rrc12"),
                             start: int = 1717200000,  # 2024-06-01 00:00 UTC
                             duration: int = HOUR,
                             records_per_peer_bin: int = 40,
                             peers_per_collector: int = 4,
                             v6_share: float = 0.7,
                             seed: int = 20240601,
                             origin_asn: int = 210312) -> list[Record]:
    """Deterministic multi-collector workload for archive IO benchmarks.

    Mimics the shape of real RIS update traffic: per-collector peer
    routers announcing/withdrawing a mix of IPv6 beacon-style /48s and
    IPv4 /24s, with occasional session state changes.  Fully seeded so
    benchmark runs are reproducible.
    """
    rng = random.Random(seed)
    records: list[Record] = []
    for c_index, collector in enumerate(collectors):
        peers = [(64500 + c_index * 16 + p,
                  f"2001:db8:{c_index:x}:{p:x}::1")
                 for p in range(peers_per_collector)]
        for peer_asn, peer_address in peers:
            for bin_start in range(start, start + duration, 300):
                for i in range(records_per_peer_bin):
                    timestamp = bin_start + rng.randrange(300)
                    if rng.random() < v6_share:
                        prefix = Prefix(f"2a0d:3dc1:{rng.randrange(0x1000, 0x2000):x}::/48")
                    else:
                        prefix = Prefix(f"84.205.{rng.randrange(256)}.0/24")
                    roll = rng.random()
                    if roll < 0.75:
                        attrs = PathAttributes(
                            as_path=ASPath.of(peer_asn, 8298, origin_asn),
                            next_hop=peer_address,
                            communities=((peer_asn, rng.randrange(1000)),))
                        records.append(UpdateRecord(
                            timestamp, collector, peer_address, peer_asn,
                            Announcement(prefix, attrs)))
                    elif roll < 0.97:
                        records.append(UpdateRecord(
                            timestamp, collector, peer_address, peer_asn,
                            Withdrawal(prefix)))
                    else:
                        records.append(StateRecord(
                            timestamp, collector, peer_address, peer_asn,
                            PeerState.ESTABLISHED, PeerState.IDLE))
    return records
