"""The 2024 beacon campaign experiment (paper §4-§5).

Builds the synthetic Internet, attaches RIS peers (including the three
noisy peer routers of §5), schedules the PaperCampaign beacons, injects
the fault script — background transient/persistent zombies plus the
paper's named case studies — runs the world to the RIB-dump horizon and
returns a :class:`CampaignRun` from which every §5 figure/table derives.

Scripted cases (each reproduces a named paper artefact):

* ``2a0d:3dc1:2233::/48`` — withdrawal suppressed at Core-Backbone
  (AS33891): the "impactful zombie" seen by many peers, cured 4 days
  later (§5.2).
* ``2a0d:3dc1:163::/48`` — suppressed at HGC (AS9304): stuck at peers
  AS9304/AS17639 until 2024-11-03 and AS142271 (visible 06-23) until
  2024-10-25 (§5.2).
* ``2a0d:3dc1:1851::/48`` — stuck invisibly at AS10429, resurrected to
  peer AS61573 on 06-29, withdrawn 10-04, resurrected again 11-29,
  cured 2025-03-11: the Fig. 4 timeline (~8.5 months).
* a cluster of prefixes stuck at noisy AS211509 and resurrected to the
  single peer router of AS207301 one month after the campaign, yielding
  the 35-37-day step of Fig. 3.
* Telstra (AS4637) session resets at withdrawal+170 minutes: the Fig. 2
  uptick (§5.1), subpath ``4637 1299 25091 8298 210312``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.beacons import PaperCampaign
from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record
from repro.core import (
    DetectionResult,
    DetectorConfig,
    ZombieDetector,
)
from repro.core.state import PeerKey
from repro.experiments.config import CampaignConfig
from repro.mrt.tabledump import RibDump
from repro.net.prefix import Prefix
from repro.ris import PeerRegistry, RISPeer
from repro.simulator import (
    BGPWorld,
    FaultPlan,
    LinkFreeze,
    ROA,
    ROARegistry,
    SessionResetEvent,
    WithdrawalDelay,
    WithdrawalSuppression,
    generate_rib_dumps,
)
from repro.topology import ASTopology, TopologyConfig, build_internet
from repro.utils.timeutil import DAY, HOUR, MINUTE, from_iso, ts

__all__ = ["CampaignRun", "run_campaign", "NOISY_PEER_ROUTERS"]

#: The three §5 noisy peer routers (exact addresses from the paper).
NOISY_PEER_ROUTERS: tuple[RISPeer, ...] = (
    RISPeer("rrc25", "176.119.234.201", 211509, transport_v4=True),
    RISPeer("rrc25", "2001:678:3f4:5::1", 211509),
    RISPeer("rrc25", "2a0c:9a40:1031::504", 211380),
)

#: The single peer router behind the 35-37-day Fig. 3 cluster.
PEER_207301 = RISPeer("rrc07", "2a0c:b641:780:7::feca", 207301)

ROA_REVOCATION_TIME = from_iso("2024-06-22 19:49")


@dataclass
class CampaignRun:
    """Everything the campaign produced."""

    config: CampaignConfig
    topology: ASTopology
    world: BGPWorld
    intervals: list[BeaconInterval]
    records: list[Record]
    peers: PeerRegistry
    #: ground-truth noisy routers (for validating the detector).
    noisy_truth: frozenset[PeerKey]
    #: beacon prefix -> final origin withdrawal time.
    final_withdrawals: dict[Prefix, int]
    #: named scripted prefixes for the case studies.
    scripted_prefixes: dict[str, Prefix] = field(default_factory=dict)

    def detect(self, threshold: int = 90 * MINUTE, dedup: bool = True,
               exclude_noisy: bool = False,
               excluded_peers: frozenset[PeerKey] = frozenset()
               ) -> DetectionResult:
        """Run the revised detector over the campaign records."""
        excluded = set(excluded_peers)
        if exclude_noisy:
            excluded |= set(self.noisy_truth)
        config = DetectorConfig(threshold=threshold, dedup=dedup,
                                excluded_peers=frozenset(excluded))
        return ZombieDetector(config).detect(self.records, self.intervals)

    def rib_dumps(self, start: Optional[int] = None,
                  end: Optional[int] = None) -> Iterator[RibDump]:
        """8-hourly bview snapshots replayed from the record stream."""
        start = self.config.start if start is None else start
        end = self.config.dump_horizon if end is None else end
        return generate_rib_dumps(self.records, start, end)

    @property
    def announcement_count(self) -> int:
        return sum(1 for i in self.intervals if not i.discarded)


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignRun:
    """Build and execute the full campaign; deterministic per seed."""
    config = config or CampaignConfig()
    rng = random.Random(config.seed)

    topology = build_internet(TopologyConfig(
        seed=config.seed, n_tier2=config.n_tier2, n_stub=config.n_stub))
    _add_campaign_asns(topology)

    campaign = PaperCampaign()
    intervals = [i for i in campaign.intervals(config.start, config.end)]

    peers = _build_peer_registry(topology, config, rng)
    fault_plan, scripted = _build_fault_plan(topology, config, intervals,
                                             peers, rng)

    registry = ROARegistry()
    parent_roa = ROA(Prefix("2a0d:3dc1::/32"), 210312, max_length=32)
    beacon_roa = ROA(Prefix("2a0d:3dc1::/32"), 210312, max_length=48)
    registry.add(parent_roa)
    registry.add(beacon_roa)
    registry.revoke(beacon_roa, ROA_REVOCATION_TIME)
    rov_asns = _pick_rov_asns(topology, rng)

    world = BGPWorld(topology, seed=config.seed + 1, fault_plan=fault_plan,
                     roa_registry=registry, rov_asns=rov_asns,
                     transparent_asns=(TELSTRA_ROUTE_SERVER,),
                     start_time=config.start - HOUR)
    noisy = {
        NOISY_PEER_ROUTERS[0].key: config.noisy_drop_211509,
        NOISY_PEER_ROUTERS[1].key: config.noisy_drop_211509,
        NOISY_PEER_ROUTERS[2].key: config.noisy_drop_211380,
    }
    world.attach_taps(peers, noisy={k: v for k, v in noisy.items()
                                    if k in peers})

    world.schedule_beacon_events(campaign.events(config.start, config.end))
    world.run_until(config.dump_horizon)

    final_withdrawals: dict[Prefix, int] = {}
    for interval in intervals:
        current = final_withdrawals.get(interval.prefix, 0)
        final_withdrawals[interval.prefix] = max(current, interval.withdraw_time)

    return CampaignRun(
        config=config,
        topology=topology,
        world=world,
        intervals=intervals,
        records=world.sorted_records(),
        peers=peers,
        noisy_truth=frozenset(peer.key for peer in NOISY_PEER_ROUTERS
                              if peer.key in peers),
        final_withdrawals=final_withdrawals,
        scripted_prefixes=scripted,
    )


# -- world construction helpers -------------------------------------------


def _add_campaign_asns(topology: ASTopology) -> None:
    """Extra ASes the scripted cases need: a second provider for AS28598
    (so it survives the 10429 freeze), plus an *invisible* IXP route
    server below Telstra serving three multihomed stubs — the holder of
    the +170-minute resurrections.  The route server is transparent
    (does not prepend its ASN), so the late zombies carry the paper's
    exact subpath ``4637 1299 25091 8298 210312`` while Telstra itself
    converges correctly — the "invisible AS" ambiguity §5.2 warns about.
    """
    topology.add_provider_customer(3257, 28598)
    topology.add_as(TELSTRA_ROUTE_SERVER, tier=3, route_server=True)
    topology.add_provider_customer(4637, TELSTRA_ROUTE_SERVER)
    for asn in _telstra_stubs():
        topology.add_as(asn, tier=3)
        topology.add_provider_customer(TELSTRA_ROUTE_SERVER, asn)
        topology.add_provider_customer(33891, asn)  # clean primary path


#: The transparent IXP route server of the Telstra resurrection script.
TELSTRA_ROUTE_SERVER = 64700


def _telstra_stubs() -> tuple[int, ...]:
    return (65101, 65102, 65103)


def _build_peer_registry(topology: ASTopology, config: CampaignConfig,
                         rng: random.Random) -> PeerRegistry:
    registry = PeerRegistry()
    for peer in NOISY_PEER_ROUTERS:
        registry.add(peer)
    registry.add(PEER_207301)
    named = [(9304, "rrc10"), (17639, "rrc10"), (142271, "rrc23"),
             (61573, "rrc15")]
    for asn, collector in named:
        registry.add(RISPeer(collector, f"2001:db8:{asn:x}::feed", asn))
    for asn in _telstra_stubs():
        registry.add(RISPeer("rrc03", f"2001:db8:{asn:x}::feed", asn))

    reserved = {210312, 8298, 25091, 33891, 9304, 4637, 211509, 211380,
                207301, 10429, 28598, 12956, TELSTRA_ROUTE_SERVER}
    candidates = [asn for asn in topology.asns()
                  if asn >= 50000 and asn not in reserved
                  and asn not in _telstra_stubs()]
    chosen = rng.sample(candidates, k=min(config.n_peers, len(candidates)))
    for index, asn in enumerate(sorted(chosen)):
        collector = f"rrc{(index % 12):02d}"
        registry.add(RISPeer(collector, f"2001:db8:{asn & 0xffff:x}:{index:x}::1",
                             asn))
    return registry


def _pick_rov_asns(topology: ASTopology, rng: random.Random) -> list[int]:
    """A few transit ASes enforce ROV — none of them on scripted zombie
    paths, so the scripted timelines are unaffected (as in the paper:
    zombie holders demonstrably do not validate)."""
    scripted = {210312, 8298, 25091, 33891, 9304, 17639, 142271, 6939,
                43100, 1299, 4637, 12956, 10429, 28598, 61573, 211509,
                211380, 207301, 3356, 34549, 3257}
    candidates = [asn for asn in topology.asns()
                  if 50000 <= asn < 60000 and asn not in scripted]
    return sorted(rng.sample(candidates, k=min(4, len(candidates))))


# -- fault scripting -------------------------------------------------------


def _slot_interval(intervals: list[BeaconInterval], announce_time: int
                   ) -> Optional[BeaconInterval]:
    for interval in intervals:
        if interval.announce_time == announce_time and not interval.discarded:
            return interval
    return None


def _build_fault_plan(topology: ASTopology, config: CampaignConfig,
                      intervals: list[BeaconInterval], peers: PeerRegistry,
                      rng: random.Random
                      ) -> tuple[FaultPlan, dict[str, Prefix]]:
    plan = FaultPlan()
    scripted: dict[str, Prefix] = {}

    _script_background(plan, config, intervals, peers, topology, rng)
    _script_noisy_tap_resets(plan, config)
    if config.scripted_cases:
        _script_impactful(plan, intervals, scripted, config)
        _script_long_lived(plan, intervals, scripted, config)
        _script_resurrection_1851(plan, intervals, scripted, config)
        _script_35day_cluster(plan, intervals, scripted, config)
        _script_telstra_uptick(plan, intervals, scripted, config, rng)
    return plan, scripted


#: slots reserved for the scripted §5 cases — background faults skip
#: them so the paper's narratives stay clean.
_SCRIPTED_SLOTS: frozenset[int] = frozenset({
    ts(2024, 6, 18, 22, 30), ts(2024, 6, 18, 16, 0), ts(2024, 6, 21, 18, 45),
    ts(2024, 6, 16, 12, 0), ts(2024, 6, 16, 18, 15), ts(2024, 6, 17, 9, 30),
    ts(2024, 6, 17, 21, 45), ts(2024, 6, 17, 23, 30),
})


def _script_background(plan: FaultPlan, config: CampaignConfig,
                       intervals: list[BeaconInterval], peers: PeerRegistry,
                       topology: ASTopology, rng: random.Random) -> None:
    """Random transient and persistent zombies spread over the campaign.

    Fault windows are narrow: they only need to swallow the slot's one
    withdrawal; the zombie then persists because no further withdrawal
    is ever sent, until the cure reset (or, for approach-A prefixes,
    until the next day's recycle wipes it — the paper's §4 argument for
    the 15-day recycle period).
    """
    peer_asns = sorted({peer.asn for peer in peers
                        if peer.asn >= 50000 and topology.providers(peer.asn)})
    if not peer_asns:
        return
    for interval in intervals:
        if interval.discarded or interval.announce_time in _SCRIPTED_SLOTS:
            continue
        roll = rng.random()
        window = (interval.withdraw_time - 60, interval.withdraw_time + HOUR)
        if roll < config.p_transient:
            asn = rng.choice(peer_asns)
            provider = rng.choice(topology.providers(asn))
            delay = rng.uniform(95, 185) * MINUTE
            plan.add_link_fault(WithdrawalDelay(
                src=provider, dst=asn, start=window[0], end=window[1],
                prefixes=frozenset({interval.prefix}), delay=delay))
        elif roll < config.p_transient + config.p_persistent:
            asn = rng.choice(peer_asns)
            provider = rng.choice(topology.providers(asn))
            plan.add_link_fault(WithdrawalSuppression(
                src=provider, dst=asn, start=window[0], end=window[1],
                prefixes=frozenset({interval.prefix})))
            # Cure after a heavy-tailed number of days (Fig. 3 short tail).
            cure = interval.withdraw_time + rng.uniform(0.3, 10.0) * DAY
            plan.add_session_reset(SessionResetEvent(
                time=cure, a=provider, b=asn, downtime=5.0))


def _script_noisy_tap_resets(plan: FaultPlan, config: CampaignConfig) -> None:
    """Noisy collector sessions flap every few weeks after the campaign,
    flushing the stale collector views — so noisy-peer zombies last weeks
    to months (Fig. 3's all-peers tail) rather than forever."""
    # Staggered per-router maintenance, some during the campaign, so the
    # noisy-zombie lifetimes spread from days to months instead of all
    # ending at one instant.
    base_days = {NOISY_PEER_ROUTERS[0].address: (-6.0, 4.0, 21.0, 60.0, 150.0),
                 NOISY_PEER_ROUTERS[1].address: (-6.0, 4.0, 21.0, 60.0, 150.0),
                 NOISY_PEER_ROUTERS[2].address: (-10.0, 9.0, 35.0, 95.0, 200.0)}
    for peer in NOISY_PEER_ROUTERS:
        for index, days in enumerate(base_days[peer.address]):
            at = config.end + days * DAY + 3600.0 * index
            if at <= config.start or at >= config.dump_horizon:
                continue
            plan.add_session_reset(SessionResetEvent(
                time=at, a=peer.asn, b=0, downtime=30.0,
                tap_address=peer.address))


def _script_impactful(plan: FaultPlan, intervals: list[BeaconInterval],
                      scripted: dict[str, Prefix],
                      config: CampaignConfig) -> None:
    """2a0d:3dc1:2233::/48 stuck below AS33891 for 4 days (§5.2)."""
    announce = ts(2024, 6, 18, 22, 30)
    interval = _slot_interval(intervals, announce)
    if interval is None or str(interval.prefix) != "2a0d:3dc1:2233::/48":
        return
    scripted["impactful"] = interval.prefix
    plan.add_link_fault(LinkFreeze(
        src=25091, dst=33891, start=interval.withdraw_time - 60,
        end=interval.withdraw_time + 10 * DAY,
        prefixes=frozenset({interval.prefix})))
    plan.add_session_reset(SessionResetEvent(
        time=interval.withdraw_time + 4 * DAY, a=25091, b=33891))


def _script_long_lived(plan: FaultPlan, intervals: list[BeaconInterval],
                       scripted: dict[str, Prefix],
                       config: CampaignConfig) -> None:
    """2a0d:3dc1:163::/48 stuck below AS9304 for ~4.5 months (§5.2)."""
    announce = ts(2024, 6, 18, 16, 0)
    interval = _slot_interval(intervals, announce)
    if interval is None or str(interval.prefix) != "2a0d:3dc1:163::/48":
        return
    scripted["long_lived"] = interval.prefix
    wd = interval.withdraw_time
    plan.add_link_fault(LinkFreeze(
        src=6939, dst=9304, start=wd - 60, end=ts(2025, 1, 1),
        prefixes=frozenset({interval.prefix})))
    # AS142271 joins late (visible 06-23) and leaves early (10-25).
    plan.add_link_fault(LinkFreeze(
        src=9304, dst=142271, start=config.start - HOUR,
        end=ts(2024, 6, 23, 11, 0), prefixes=frozenset({interval.prefix})))
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 6, 23, 12, 0), a=9304, b=142271))
    plan.add_link_fault(LinkFreeze(
        src=9304, dst=142271, start=ts(2024, 10, 25), end=ts(2025, 6, 1),
        prefixes=frozenset({interval.prefix})))
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 10, 25), a=9304, b=142271))
    # Final cure at HGC on 2024-11-03.
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 11, 3), a=6939, b=9304))


def _script_resurrection_1851(plan: FaultPlan, intervals: list[BeaconInterval],
                              scripted: dict[str, Prefix],
                              config: CampaignConfig) -> None:
    """2a0d:3dc1:1851::/48: the Fig. 4 double resurrection (~8.5 months)."""
    announce = ts(2024, 6, 21, 18, 45)
    interval = _slot_interval(intervals, announce)
    if interval is None or str(interval.prefix) != "2a0d:3dc1:1851::/48":
        return
    scripted["resurrection"] = interval.prefix
    wd = interval.withdraw_time
    # Root holder: AS10429 never hears the withdrawal from 12956.
    plan.add_link_fault(LinkFreeze(
        src=12956, dst=10429, start=wd - 60, end=ts(2025, 6, 1),
        prefixes=frozenset({interval.prefix})))
    # AS28598 must not hold the 10429 route during the slot, so every
    # peer fully withdraws first (paper: gone on 06-21, back on 06-29).
    plan.add_link_fault(LinkFreeze(
        src=10429, dst=28598, start=interval.announce_time - 60,
        end=ts(2024, 6, 28, 23, 0), prefixes=frozenset({interval.prefix})))
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 6, 29), a=10429, b=28598))
    # Withdrawn by the RIS peer on 10-04 (session to it frozen+reset)...
    plan.add_link_fault(LinkFreeze(
        src=28598, dst=61573, start=ts(2024, 10, 4),
        end=ts(2024, 11, 28, 23, 0), prefixes=frozenset({interval.prefix})))
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 10, 4), a=28598, b=61573))
    # ...resurrected again on 11-29...
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 11, 29), a=28598, b=61573))
    # ...and finally cured on 2025-03-11 at the root.
    plan.add_session_reset(SessionResetEvent(
        time=ts(2025, 3, 11), a=12956, b=10429))


def _script_35day_cluster(plan: FaultPlan, intervals: list[BeaconInterval],
                          scripted: dict[str, Prefix],
                          config: CampaignConfig) -> None:
    """Prefixes stuck at AS211509, resurrected to AS207301's single peer
    router a month after the campaign: the 35-37-day Fig. 3 step."""
    slots = [ts(2024, 6, 16, 12, 0), ts(2024, 6, 16, 18, 15),
             ts(2024, 6, 17, 9, 30), ts(2024, 6, 17, 21, 45),
             ts(2024, 6, 17, 23, 30)]
    cluster = [iv for slot in slots
               if (iv := _slot_interval(intervals, slot)) is not None]
    if not cluster:
        return
    scripted["cluster"] = cluster[0].prefix
    for interval in cluster:
        plan.add_link_fault(LinkFreeze(
            src=1299, dst=211509, start=interval.withdraw_time - 60,
            end=ts(2025, 6, 1), prefixes=frozenset({interval.prefix})))
    # AS207301 never hears about the cluster prefixes until the
    # resurrection reset on 07-22 (it feeds everything else normally).
    plan.add_link_fault(LinkFreeze(
        src=211509, dst=207301, start=config.start - HOUR,
        end=ts(2024, 7, 21, 23, 0),
        prefixes=frozenset(iv.prefix for iv in cluster)))
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 7, 22), a=211509, b=207301))
    # Cure everything at 1299 on 07-23 12:00 → durations 35.5-37 days.
    plan.add_session_reset(SessionResetEvent(
        time=ts(2024, 7, 23, 12, 0), a=1299, b=211509))


def _script_telstra_uptick(plan: FaultPlan, intervals: list[BeaconInterval],
                           scripted: dict[str, Prefix],
                           config: CampaignConfig,
                           rng: random.Random) -> None:
    """A few slots resurrect at withdrawal+170 minutes via AS4637 session
    resets (the Fig. 2 uptick, §5.1)."""
    candidates = [iv for iv in intervals
                  if not iv.discarded
                  and iv.announce_time >= config.start + DAY // 2]
    if not candidates:
        return
    count = max(2, min(5, len(candidates) // 80))
    chosen = rng.sample(candidates, k=min(count, len(candidates)))
    scripted["telstra"] = chosen[0].prefix
    server = TELSTRA_ROUTE_SERVER
    for interval in chosen:
        wd = interval.withdraw_time
        # The route server's session to Telstra wedges just before the
        # withdrawal: it keeps 4637's converged route.
        plan.add_link_fault(LinkFreeze(
            src=4637, dst=server, start=wd - 60, end=wd + 12 * HOUR,
            prefixes=frozenset({interval.prefix})))
        for stub in _telstra_stubs():
            # The stubs hold no route-server alternative during the slot
            # (their sessions to it are down), so they withdraw cleanly...
            plan.add_link_fault(LinkFreeze(
                src=server, dst=stub, start=interval.announce_time - 60,
                end=wd + 169 * MINUTE,
                prefixes=frozenset({interval.prefix})))
            # ...until the session re-establishes at +170 minutes and the
            # stale Telstra route is re-announced (§5.1).
            plan.add_session_reset(SessionResetEvent(
                time=wd + 170 * MINUTE, a=server, b=stub, downtime=2.0))
        # Cure a day later so the uptick stays a Fig. 2 phenomenon.
        plan.add_session_reset(SessionResetEvent(
            time=wd + DAY, a=4637, b=server))
