"""The §5.2 case studies: impactful and extremely long-lived zombies.

Extracts, from a campaign run, the same facts the paper reports for
``2a0d:3dc1:2233::/48`` (many peers, Core-Backbone as root cause, gone
after days) and ``2a0d:3dc1:163::/48`` (months-long at three peer ASes,
HGC as root cause).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.beacons import BEACON_ORIGIN_ASN
from repro.core import (
    LifespanTracker,
    ZombieOutbreak,
    infer_root_cause,
)
from repro.experiments.campaign import CampaignRun
from repro.net.prefix import Prefix
from repro.utils.timeutil import DAY, MINUTE

__all__ = ["CaseStudy", "build_case_study", "build_paper_cases"]


@dataclass(frozen=True)
class CaseStudy:
    """Everything the paper reports about one zombie outbreak."""

    prefix: Prefix
    peer_router_count: int
    peer_as_count: int
    common_subpath: tuple[int, ...]
    suspected_root_cause: Optional[int]
    root_cause_cone_size: int
    duration_days: float
    peer_durations_days: dict[int, float]


def build_case_study(run: CampaignRun, prefix: Prefix,
                     threshold: int = 180 * MINUTE) -> Optional[CaseStudy]:
    """Extract the case-study facts for one beacon prefix."""
    result = run.detect(threshold=threshold, exclude_noisy=True)
    outbreaks = result.outbreaks_for(prefix)
    if not outbreaks:
        return None
    outbreak: ZombieOutbreak = max(outbreaks, key=lambda o: o.size)
    inference = infer_root_cause(outbreak, BEACON_ORIGIN_ASN)
    suspect = inference.suspect
    cone = (run.topology.customer_cone_size(suspect)
            if suspect is not None and suspect in run.topology else 0)

    tracker = LifespanTracker()
    lifespans = tracker.track(run.rib_dumps(), {prefix: run.final_withdrawals[prefix]},
                              excluded_peers=run.noisy_truth)
    lifespan = lifespans[prefix]
    per_as: dict[int, float] = {}
    for route in outbreak.routes:
        days = lifespan.peer_duration_days(route.peer)
        per_as[route.peer_asn] = max(per_as.get(route.peer_asn, 0.0), days)
    # Peers that join the outbreak later (e.g. AS142271 becoming visible
    # on 06-23) appear in the dump history even if absent at detection
    # time; fold them in.
    for key in lifespan.peer_spans:
        peer = run.peers.get(*key)
        if peer is None:
            continue
        days = lifespan.peer_duration_days(key)
        per_as[peer.asn] = max(per_as.get(peer.asn, 0.0), days)

    return CaseStudy(
        prefix=prefix,
        peer_router_count=len(outbreak.peer_routers),
        peer_as_count=len(outbreak.peer_asns),
        common_subpath=outbreak.common_subpath(),
        suspected_root_cause=suspect,
        root_cause_cone_size=cone,
        duration_days=lifespan.duration_days,
        peer_durations_days=per_as)


def build_paper_cases(run: CampaignRun) -> dict[str, Optional[CaseStudy]]:
    """The two §5.2 cases, keyed ``impactful`` and ``long_lived``
    (entries are None when the scripted slot is outside the run's
    window)."""
    cases: dict[str, Optional[CaseStudy]] = {}
    for name in ("impactful", "long_lived"):
        prefix = run.scripted_prefixes.get(name)
        cases[name] = build_case_study(run, prefix) if prefix else None
    return cases


def render_case(name: str, case: Optional[CaseStudy]) -> str:
    if case is None:
        return f"{name}: not present in this run"
    subpath = " ".join(str(asn) for asn in case.common_subpath)
    return (f"{name}: {case.prefix} stuck at {case.peer_router_count} peer "
            f"routers / {case.peer_as_count} peer ASes; common subpath "
            f"[{subpath}]; suspected cause AS{case.suspected_root_cause} "
            f"(cone {case.root_cause_cone_size}); lasted "
            f"{case.duration_days:.1f} days")
