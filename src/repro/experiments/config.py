"""Experiment configurations and scale presets.

The paper's experiments ran against the real Internet for weeks to
months.  Reproduction runs are parameterised by world size and window
length; ``full()`` presets match the paper's windows, ``quick()``
presets shrink both for tests and benchmarks while preserving every
mechanism (all shape targets in DESIGN.md hold at either scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.timeutil import DAY, from_iso

__all__ = ["CampaignConfig", "ReplicationConfig", "REPLICATION_PERIODS"]


@dataclass(frozen=True)
class CampaignConfig:
    """The 2024 beacon campaign (paper §4-§5)."""

    seed: int = 20240604
    #: synthetic-Internet size.
    n_tier2: int = 30
    n_stub: int = 260
    #: campaign window (defaults: the paper's exact instants).
    start: int = from_iso("2024-06-04 11:45")
    end: int = from_iso("2024-06-22 17:30")
    #: RIB-dump horizon for the lifespan study (paper: 2025-05-09).
    dump_horizon: int = from_iso("2025-05-09 00:00")
    #: number of ordinary RIS peer routers (besides the named ones).
    n_peers: int = 44
    #: probability that a slot suffers a transient (delayed-withdrawal)
    #: zombie clearing between the 90-minute and 3-hour marks.
    p_transient: float = 0.04
    #: probability that a slot suffers a persistent zombie lasting
    #: hours-to-days (the Fig. 3 short tail).
    p_persistent: float = 0.018
    #: noisy-peer withdrawal-drop probabilities (Table 5).
    noisy_drop_211509: float = 0.099
    noisy_drop_211380: float = 0.070
    #: enable the scripted case studies (Figs. 3-4, §5.1-§5.2).
    scripted_cases: bool = True

    @classmethod
    def full(cls) -> "CampaignConfig":
        return cls()

    @classmethod
    def quick(cls) -> "CampaignConfig":
        """Small world, 2-day window inside approach B (covers the
        2a0d:3dc1:2233 and :163 scripted slots of 06-18)."""
        return cls(
            n_tier2=14, n_stub=70, n_peers=18,
            start=from_iso("2024-06-17 12:00"),
            end=from_iso("2024-06-19 12:00"),
            dump_horizon=from_iso("2024-12-31 00:00"),
        )


@dataclass(frozen=True)
class ReplicationConfig:
    """One replication period of the Fontugne et al. study (paper §3)."""

    name: str
    start: int
    end: int
    seed: int = 20180719
    n_tier2: int = 16
    n_stub: int = 80
    n_peers: int = 24
    #: probability the noisy peer drops an IPv6 withdrawal towards the
    #: collector (Table 4's ~42.8 %, which survives dedup — fresh
    #: re-infection each interval).
    noisy_drop_v6: float = 0.43
    #: fraction of intervals covered by the noisy peer's rare, *long*
    #: IPv4 session wedge (Table 4: 4.4 % with double-counting that
    #: collapses to ~0.2 % without).
    noisy_v4_freeze_fraction: float = 0.044
    #: per-interval probability that a random peer session freezes,
    #: creating concurrent outbreaks across all beacons of one family.
    p_session_freeze_v4: float = 0.01
    p_session_freeze_v6: float = 0.01
    #: mean freeze length in intervals (>=1); drives the double-counting
    #: reduction (longer freezes -> more duplicate counts removed).
    freeze_intervals_v4: float = 2.4
    freeze_intervals_v6: float = 1.4
    #: per-interval, per-beacon probability of a prefix-scoped zombie.
    p_prefix_zombie: float = 0.03
    #: legacy pipeline's looking-glass miss probability (Table 2-3).
    legacy_miss_prob: float = 0.25

    def days(self) -> float:
        return (self.end - self.start) / DAY

    def scaled(self, days: int) -> "ReplicationConfig":
        """Same period, truncated to its first ``days`` days."""
        return replace(self, end=min(self.end, self.start + days * DAY))


def _period(name: str, start: str, end: str, **kwargs) -> ReplicationConfig:
    return ReplicationConfig(name=name, start=from_iso(start),
                             end=from_iso(end), **kwargs)


#: The paper's three replication periods (Table 1), with per-period fault
#: rates tuned to the paper's double-counting reductions: strong v4 and
#: moderate v6 duplication in 2018, v4-only duplication in 2017.
REPLICATION_PERIODS: dict[str, ReplicationConfig] = {
    # Initiation probabilities follow the paper's Table 1 arithmetic:
    # outbreaks_without_dc ≈ p_init × slots × beacons(family) and
    # outbreaks_with_dc ≈ that × mean freeze length.
    "2018": _period("2018", "2018-07-19", "2018-08-31",
                    seed=2018, freeze_intervals_v4=3.5,
                    freeze_intervals_v6=2.2,
                    p_session_freeze_v4=0.065, p_session_freeze_v6=0.14,
                    legacy_miss_prob=0.06),
    "2017-oct": _period("2017-oct", "2017-10-01", "2017-12-28",
                        seed=201710, freeze_intervals_v4=2.1,
                        freeze_intervals_v6=1.05,
                        p_session_freeze_v4=0.07, p_session_freeze_v6=0.185,
                        legacy_miss_prob=0.45),
    "2017-mar": _period("2017-mar", "2017-03-01", "2017-04-28",
                        seed=201703, freeze_intervals_v4=1.8,
                        freeze_intervals_v6=1.0,
                        p_session_freeze_v4=0.29, p_session_freeze_v6=0.125,
                        legacy_miss_prob=0.05),
}
