"""Builders for the paper's figures (F2-F7).

Each builder returns the data series the figure plots, plus a ``render``
helper printing them as aligned text (the benchmark harness records
these series; no plotting dependency is required offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis import (
    ConcurrencyStats,
    EmergenceStats,
    PathLengthStats,
    concurrent_outbreaks,
    emergence_rates,
    path_length_analysis,
)
from repro.core import (
    LifespanTracker,
    ResurrectionEvent,
    ZombieLifespan,
    find_resurrections,
)
from repro.experiments.campaign import CampaignRun
from repro.experiments.replication import ReplicationRun
from repro.net.prefix import Prefix
from repro.utils.timeutil import DAY, MINUTE, to_iso

__all__ = [
    "Figure2Point", "build_figure2", "render_figure2",
    "Figure3Data", "build_figure3", "render_figure3",
    "Figure4Data", "build_figure4", "render_figure4",
    "Figure5Data", "build_figure5",
    "Figure6Data", "build_figure6",
    "Figure7Data", "build_figure7",
]


# -- Figure 2: threshold sweep -------------------------------------------------


@dataclass(frozen=True)
class Figure2Point:
    threshold_minutes: int
    outbreaks_all: int
    fraction_all: float
    outbreaks_excluded: int
    fraction_excluded: float


def build_figure2(run: CampaignRun,
                  thresholds_minutes: Sequence[int] = tuple(range(90, 181, 10)),
                  ) -> list[Figure2Point]:
    """Outbreak count and fraction vs detection threshold, for all peers
    and with the noisy peers excluded (paper Fig. 2)."""
    points = []
    for minutes in thresholds_minutes:
        all_peers = run.detect(threshold=minutes * MINUTE, exclude_noisy=False)
        excluded = run.detect(threshold=minutes * MINUTE, exclude_noisy=True)
        points.append(Figure2Point(
            threshold_minutes=minutes,
            outbreaks_all=all_peers.outbreak_count,
            fraction_all=all_peers.outbreak_fraction(),
            outbreaks_excluded=excluded.outbreak_count,
            fraction_excluded=excluded.outbreak_fraction()))
    return points


def render_figure2(points: Sequence[Figure2Point]) -> str:
    lines = ["Figure 2: zombie outbreaks vs detection threshold",
             f"{'thr(min)':>8} | {'all #':>6} {'all %':>7} | "
             f"{'excl #':>6} {'excl %':>7}"]
    for point in points:
        lines.append(
            f"{point.threshold_minutes:>8} | {point.outbreaks_all:>6} "
            f"{point.fraction_all:>6.2%} | {point.outbreaks_excluded:>6} "
            f"{point.fraction_excluded:>6.2%}")
    return "\n".join(lines)


# -- Figure 3: duration CDF ----------------------------------------------------


@dataclass
class Figure3Data:
    """CDF inputs: outbreak durations (days, >= 1 day) for both lines."""

    durations_all: list[float]
    durations_excluded: list[float]
    lifespans_all: dict[Prefix, ZombieLifespan]
    lifespans_excluded: dict[Prefix, ZombieLifespan]

    @property
    def max_duration_all(self) -> float:
        return max(self.durations_all, default=0.0)

    @property
    def max_duration_excluded(self) -> float:
        return max(self.durations_excluded, default=0.0)


def build_figure3(run: CampaignRun, min_days: float = 1.0) -> Figure3Data:
    """Outbreak-duration CDFs from the 8-hourly RIB dumps (paper Fig. 3)."""
    dumps = list(run.rib_dumps())
    tracker = LifespanTracker()
    all_lifespans = tracker.track(dumps, run.final_withdrawals)
    excl_lifespans = tracker.track(dumps, run.final_withdrawals,
                                   excluded_peers=run.noisy_truth)

    def durations(lifespans: dict[Prefix, ZombieLifespan]) -> list[float]:
        return sorted(ls.duration_days for ls in lifespans.values()
                      if ls.is_zombie and ls.duration_days >= min_days)

    return Figure3Data(
        durations_all=durations(all_lifespans),
        durations_excluded=durations(excl_lifespans),
        lifespans_all=all_lifespans,
        lifespans_excluded=excl_lifespans)


def render_figure3(data: Figure3Data) -> str:
    from repro.analysis import ECDF

    lines = ["Figure 3: CDF of zombie outbreak durations (>= 1 day)"]
    for label, values in (("all peers", data.durations_all),
                          ("noisy excluded", data.durations_excluded)):
        cdf = ECDF.from_values(values)
        series = " ".join(f"{x:.0f}d:{p:.0%}" for x, p in cdf.series())
        lines.append(f"  {label} (n={len(values)}): {series or 'none'}")
    return "\n".join(lines)


# -- Figure 4: resurrection timeline -------------------------------------------


@dataclass(frozen=True)
class Figure4Data:
    """The visibility timeline of one resurrected zombie prefix."""

    prefix: Prefix
    withdraw_time: int
    segments: tuple[tuple[int, int], ...]
    resurrections: tuple[ResurrectionEvent, ...]
    total_span_days: float


def build_figure4(run: CampaignRun,
                  prefix: Optional[Prefix] = None) -> Optional[Figure4Data]:
    """Timeline of the scripted resurrection prefix (2a0d:3dc1:1851::/48
    in the full campaign), or of the longest resurrected zombie."""
    data = build_figure3(run, min_days=0.0)
    lifespans = data.lifespans_excluded
    if prefix is None:
        prefix = run.scripted_prefixes.get("resurrection")
    candidates = [ls for ls in lifespans.values() if ls.is_zombie]
    if prefix is not None and prefix in lifespans \
            and lifespans[prefix].is_zombie:
        lifespan = lifespans[prefix]
    else:
        resurrected = [ls for ls in candidates
                       if find_resurrections([ls])]
        pool = resurrected or candidates
        if not pool:
            return None
        lifespan = max(pool, key=lambda ls: ls.duration_days)
    events = find_resurrections([lifespan])
    return Figure4Data(
        prefix=lifespan.prefix,
        withdraw_time=lifespan.withdraw_time,
        segments=tuple((s.start, s.end) for s in lifespan.segments),
        resurrections=tuple(events),
        total_span_days=lifespan.duration_days)


def render_figure4(data: Optional[Figure4Data]) -> str:
    if data is None:
        return "Figure 4: no resurrected zombie in this run"
    lines = [f"Figure 4: timeline of {data.prefix} "
             f"(withdrawn {to_iso(data.withdraw_time)})"]
    for start, end in data.segments:
        lines.append(f"  visible {to_iso(start)} -> {to_iso(end)} "
                     f"({(end - start) / DAY:.1f} days)")
    lines.append(f"  resurrections: {len(data.resurrections)}, "
                 f"total span {data.total_span_days:.1f} days")
    return "\n".join(lines)


# -- Figures 5-7: replication CDFs ---------------------------------------------


@dataclass(frozen=True)
class Figure5Data:
    with_dc: EmergenceStats
    without_dc: EmergenceStats


def build_figure5(run: ReplicationRun) -> Figure5Data:
    """Zombie emergence rate CDFs, double-counted vs not (paper Fig. 5)."""
    return Figure5Data(
        with_dc=emergence_rates(run.detect(dedup=False, exclude_noisy=True)),
        without_dc=emergence_rates(run.detect(dedup=True, exclude_noisy=True)))


@dataclass(frozen=True)
class Figure6Data:
    with_dc: PathLengthStats
    without_dc: PathLengthStats


def build_figure6(run: ReplicationRun) -> Figure6Data:
    """AS-path length CDFs (paper Fig. 6)."""
    return Figure6Data(
        with_dc=path_length_analysis(
            run.records, run.detect(dedup=False, exclude_noisy=True)),
        without_dc=path_length_analysis(
            run.records, run.detect(dedup=True, exclude_noisy=True)))


@dataclass(frozen=True)
class Figure7Data:
    with_dc: ConcurrencyStats
    without_dc: ConcurrencyStats


def build_figure7(run: ReplicationRun) -> Figure7Data:
    """Concurrent-outbreak CDFs (paper Fig. 7)."""
    return Figure7Data(
        with_dc=concurrent_outbreaks(
            run.detect(dedup=False, exclude_noisy=True).outbreaks),
        without_dc=concurrent_outbreaks(
            run.detect(dedup=True, exclude_noisy=True).outbreaks))
