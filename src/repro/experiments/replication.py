"""Replication of the Fontugne et al. study (paper §3, Appendix B).

Drives the RIPE RIS 4-hour beacons over one of the paper's three
periods and injects the fault classes that explain the paper's Table 1:

* **wedged peer sessions** (family-scoped :class:`LinkFreeze` on one of
  a multihomed peer AS's provider links): during the freeze, every
  beacon withdrawal triggers path hunting onto the frozen stale route,
  which is re-announced to the collector *with its original Aggregator
  clock* — so a freeze spanning k intervals yields k zombie counts with
  double-counting but only one without.  Freeze length distributions are
  per-period knobs reproducing the paper's per-period reductions.
* **the noisy peer** AS16347 @ rrc21, whose IPv6 feed is wedged ~43 % of
  the time (Table 4).
* **prefix-scoped suppressions** for singleton outbreaks (Fig. 7's
  "occurred singly" mass).

The run exposes both the revised and the legacy (looking-glass)
pipelines over the same records, which is what Tables 2-3 compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.beacons import RISBeaconSchedule, ris_beacons_2018
from repro.beacons.schedule import BeaconInterval
from repro.bgp.messages import Record
from repro.core import (
    DetectionResult,
    DetectorConfig,
    LegacyDetector,
    ZombieDetector,
)
from repro.core.state import PeerKey
from repro.experiments.config import ReplicationConfig
from repro.net.prefix import Prefix
from repro.ris import PeerRegistry, RISPeer
from repro.simulator import (
    BGPWorld,
    FaultPlan,
    LinkFreeze,
    SessionResetEvent,
    WithdrawalSuppression,
)
from repro.topology import ASTopology, TopologyConfig, build_internet
from repro.utils.timeutil import HOUR, MINUTE

__all__ = ["ReplicationRun", "run_replication", "NOISY_PEER_16347"]

RIS_ORIGIN_ASN = 12654
BEACON_INTERVAL = 4 * HOUR

NOISY_PEER_16347 = RISPeer("rrc21", "2001:db8:3fdb::1", 16347)


@dataclass
class ReplicationRun:
    """One replication period's artefacts."""

    config: ReplicationConfig
    topology: ASTopology
    intervals: list[BeaconInterval]
    records: list[Record]
    peers: PeerRegistry
    noisy_truth: frozenset[PeerKey]

    def detect(self, dedup: bool = True, exclude_noisy: bool = False,
               threshold: int = 90 * MINUTE) -> DetectionResult:
        excluded = self.noisy_truth if exclude_noisy else frozenset()
        config = DetectorConfig(threshold=threshold, dedup=dedup,
                                excluded_peers=excluded)
        return ZombieDetector(config).detect(self.records, self.intervals)

    def detect_legacy(self, threshold: int = 90 * MINUTE) -> DetectionResult:
        detector = LegacyDetector(threshold=threshold,
                                  miss_prob=self.config.legacy_miss_prob,
                                  seed=self.config.seed,
                                  excluded_peers=self.noisy_truth)
        return detector.detect(self.records, self.intervals)

    def visible_prefix_count(self, result: Optional[DetectionResult] = None
                             ) -> int:
        """The paper's "#visible prefixes" denominator: beacon
        announcements observed at >= 1 peer."""
        result = result if result is not None else self.detect()
        return result.visible_count


def run_replication(config: ReplicationConfig) -> ReplicationRun:
    """Build and execute one replication period."""
    rng = random.Random(config.seed)
    topology = build_internet(TopologyConfig(
        seed=config.seed, n_tier2=config.n_tier2, n_stub=config.n_stub))
    _add_ris_origin(topology)

    beacons = ris_beacons_2018()
    schedule = RISBeaconSchedule(beacons, origin_asn=RIS_ORIGIN_ASN)
    intervals = list(schedule.intervals(config.start, config.end))

    peers = _build_peer_registry(topology, config, rng)
    plan = _build_fault_plan(topology, config, intervals, peers, rng)

    world = BGPWorld(topology, seed=config.seed + 1, fault_plan=plan,
                     start_time=config.start - HOUR)
    world.attach_taps(peers, noisy={
        NOISY_PEER_16347.key: {6: config.noisy_drop_v6}})
    world.schedule_beacon_events(schedule.events(config.start, config.end))
    world.run_until(config.end + 6 * HOUR)

    return ReplicationRun(
        config=config,
        topology=topology,
        intervals=intervals,
        records=world.sorted_records(),
        peers=peers,
        noisy_truth=frozenset({NOISY_PEER_16347.key}),
    )


def _add_ris_origin(topology: ASTopology) -> None:
    """AS12654 (the RIS beacon origin) multihomed to two tier-1s."""
    if RIS_ORIGIN_ASN in topology:
        return
    topology.add_as(RIS_ORIGIN_ASN, tier=3)
    topology.add_provider_customer(1299, RIS_ORIGIN_ASN)
    topology.add_provider_customer(3356, RIS_ORIGIN_ASN)
    # The noisy peer must be multihomed: its wedged provider session
    # holds the stale route while withdrawals arrive on the live one.
    if not topology.graph.has_edge(2914, 16347):
        topology.add_provider_customer(2914, 16347)


def _build_peer_registry(topology: ASTopology, config: ReplicationConfig,
                         rng: random.Random) -> PeerRegistry:
    registry = PeerRegistry()
    registry.add(NOISY_PEER_16347)
    reserved = {RIS_ORIGIN_ASN, 16347}
    candidates = [asn for asn in topology.asns()
                  if asn >= 50000 and asn not in reserved
                  and len(topology.providers(asn)) >= 2]
    chosen = rng.sample(candidates, k=min(config.n_peers, len(candidates)))
    for index, asn in enumerate(sorted(chosen)):
        collector = f"rrc{(index % 14):02d}"
        registry.add(RISPeer(collector, f"2001:db8:{asn & 0xffff:x}:{index:x}::1",
                             asn))
    return registry


def _family_prefixes(beacons, ipv6: bool) -> frozenset[Prefix]:
    return frozenset(b.prefix for b in beacons if b.prefix.is_ipv6 == ipv6)


def _build_fault_plan(topology: ASTopology, config: ReplicationConfig,
                      intervals: list[BeaconInterval], peers: PeerRegistry,
                      rng: random.Random) -> FaultPlan:
    plan = FaultPlan()
    beacons = ris_beacons_2018()
    v4 = _family_prefixes(beacons, ipv6=False)
    v6 = _family_prefixes(beacons, ipv6=True)

    slots = sorted({i.announce_time for i in intervals})
    peer_links = _peer_provider_links(topology, peers)

    # The §3.2 noisy peer's IPv6 misbehaviour is tap-level (withdrawal
    # drops, wired in run_replication); its IPv4 contribution is one
    # rare long wedge whose duplicates dedup collapses (Table 4).
    noisy_link = _backup_provider_link(topology, NOISY_PEER_16347.asn)
    if noisy_link and slots and config.noisy_v4_freeze_fraction > 0:
        length = max(2, round(config.noisy_v4_freeze_fraction * len(slots)))
        start_index = rng.randrange(max(1, len(slots) - length))
        start = slots[start_index] + rng.uniform(0, HOUR)
        end = slots[start_index] + length * BEACON_INTERVAL
        plan.add_link_fault(LinkFreeze(src=noisy_link[0], dst=noisy_link[1],
                                       start=start, end=end, prefixes=v4))

    # Background wedges on ordinary peers, per family.
    for prefixes, p_freeze, mean_len in (
            (v4, config.p_session_freeze_v4, config.freeze_intervals_v4),
            (v6, config.p_session_freeze_v6, config.freeze_intervals_v6)):
        for slot in slots:
            if rng.random() >= p_freeze or not peer_links:
                continue
            link = rng.choice(peer_links)
            length = _geometric_length(rng, mean_len)
            start = slot + rng.uniform(0, HOUR)
            end = slot + length * BEACON_INTERVAL
            if end <= start:
                end = start + HOUR
            plan.add_link_fault(LinkFreeze(
                src=link[0], dst=link[1], start=start, end=end,
                prefixes=prefixes))

    # Prefix-scoped singleton zombies.
    for interval in intervals:
        if rng.random() >= config.p_prefix_zombie or not peer_links:
            continue
        link = rng.choice(peer_links)
        plan.add_link_fault(WithdrawalSuppression(
            src=link[0], dst=link[1], start=interval.withdraw_time - 60,
            end=interval.withdraw_time + HOUR,
            prefixes=frozenset({interval.prefix})))

    return plan


def _backup_provider_map(topology: ASTopology) -> dict[int, int]:
    """For every multihomed AS, the provider that is *not* its best
    source for the beacon origin's routes.

    Found empirically: propagate one probe announcement through a
    fault-free copy of the world and read each router's decision.
    Freezing the backup link is what makes a zombie double-counted:
    each interval the fresh route arrives and is withdrawn on the live
    (best) link, and path hunting then re-exposes the frozen stale
    route with its original Aggregator clock.
    """
    probe_world = BGPWorld(topology, seed=0)
    probe = Prefix("2001:db8:aaaa::/48")
    origin = probe_world.routers[RIS_ORIGIN_ASN]
    origin.originate(probe, probe_world.beacon_attributes(
        RIS_ORIGIN_ASN, 0, use_aggregator_clock=False))
    probe_world.run_until_idle()

    backups: dict[int, int] = {}
    for asn, router in probe_world.routers.items():
        providers = topology.providers(asn)
        if len(providers) < 2:
            continue
        entry = router.best.get(probe)
        if entry is None or entry[0] is None:
            continue
        best_src = entry[0]
        alternates = [p for p in providers
                      if p != best_src and p in router.adj_rib_in.get(probe, {})]
        if alternates:
            backups[asn] = min(alternates)
    return backups


def _backup_provider_link(topology: ASTopology, asn: int,
                          backups: Optional[dict[int, int]] = None
                          ) -> Optional[tuple[int, int]]:
    if backups is None:
        backups = _backup_provider_map(topology)
    provider = backups.get(asn)
    return (provider, asn) if provider is not None else None


def _peer_provider_links(topology: ASTopology,
                         peers: PeerRegistry) -> list[tuple[int, int]]:
    backups = _backup_provider_map(topology)
    links = []
    for peer in sorted(peers, key=lambda p: (p.asn, p.address)):
        if peer.asn == NOISY_PEER_16347.asn:
            continue
        link = _backup_provider_link(topology, peer.asn, backups)
        if link is not None:
            links.append(link)
    return links


def _geometric_length(rng: random.Random, mean: float) -> int:
    """Geometric interval count with the given mean (>= 1)."""
    if mean <= 1.0:
        return 1
    extend_prob = 1.0 - 1.0 / mean
    length = 1
    while rng.random() < extend_prob:
        length += 1
    return length


def _schedule_freezes(plan: FaultPlan, rng: random.Random, slots: list[int],
                      link: tuple[int, int], prefixes: frozenset[Prefix],
                      target_fraction: float, mean_intervals: float) -> None:
    """Freeze windows on one link covering roughly ``target_fraction`` of
    beacon intervals."""
    index = 0
    while index < len(slots):
        if rng.random() < target_fraction / mean_intervals:
            length = _geometric_length(rng, mean_intervals)
            start = slots[index] + rng.uniform(0, HOUR)
            end = slots[index] + length * BEACON_INTERVAL
            plan.add_link_fault(LinkFreeze(src=link[0], dst=link[1],
                                           start=start, end=end,
                                           prefixes=prefixes))
            index += length
        else:
            index += 1
