"""Cached experiment runs.

Simulating a world takes seconds to minutes; the tables, figures and
benchmarks all consume the *same* run.  This module memoises runs per
configuration so a test/benchmark session simulates each world once.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.campaign import CampaignRun, run_campaign
from repro.experiments.config import (
    REPLICATION_PERIODS,
    CampaignConfig,
    ReplicationConfig,
)
from repro.experiments.replication import ReplicationRun, run_replication

__all__ = ["campaign_run", "replication_run", "replication_runs",
           "clear_cache"]

_campaign_cache: dict[CampaignConfig, CampaignRun] = {}
_replication_cache: dict[ReplicationConfig, ReplicationRun] = {}


def campaign_run(config: Optional[CampaignConfig] = None,
                 quick: bool = False) -> CampaignRun:
    """Return (and cache) the campaign run for ``config``."""
    if config is None:
        config = CampaignConfig.quick() if quick else CampaignConfig.full()
    if config not in _campaign_cache:
        _campaign_cache[config] = run_campaign(config)
    return _campaign_cache[config]


def replication_run(period: str = "2018", days: Optional[int] = None,
                    config: Optional[ReplicationConfig] = None
                    ) -> ReplicationRun:
    """Return (and cache) one replication period's run.

    ``days`` truncates the period (the paper's periods span 40-90 days;
    a handful of days preserves every ratio the tables report).
    """
    if config is None:
        config = REPLICATION_PERIODS[period]
        if days is not None:
            config = config.scaled(days)
    if config not in _replication_cache:
        _replication_cache[config] = run_replication(config)
    return _replication_cache[config]


def replication_runs(days: Optional[int] = 6) -> list[ReplicationRun]:
    """All three periods, truncated to ``days`` each."""
    return [replication_run(period, days=days)
            for period in REPLICATION_PERIODS]


def clear_cache() -> None:
    _campaign_cache.clear()
    _replication_cache.clear()
