"""Builders for the paper's tables (T1-T5).

Each builder consumes experiment runs and returns a structured result
with a ``render()`` producing the same rows the paper prints.  Absolute
numbers come from the simulated substrate; the shape targets are listed
in DESIGN.md §4.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analysis import compare_results
from repro.core import DetectionResult
from repro.experiments.campaign import NOISY_PEER_ROUTERS, CampaignRun
from repro.experiments.replication import NOISY_PEER_16347, ReplicationRun
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE

__all__ = [
    "Table1Row", "build_table1", "render_table1",
    "Table2Row", "build_table2", "render_table2",
    "Table3Result", "build_table3", "render_table3",
    "Table4Result", "build_table4", "render_table4",
    "Table5Row", "build_table5", "render_table5",
]


def _family_counts(result: DetectionResult) -> tuple[int, int]:
    v4, v6 = result.split_by_family()
    return len(v4), len(v6)


# -- Table 1: double-counting impact ----------------------------------------


@dataclass(frozen=True)
class Table1Row:
    period: str
    visible_prefixes: int
    with_dc_v4: int
    with_dc_v6: int
    without_dc_v4: int
    without_dc_v6: int

    @property
    def reduction_v4(self) -> float:
        if self.with_dc_v4 == 0:
            return 0.0
        return 1.0 - self.without_dc_v4 / self.with_dc_v4

    @property
    def reduction_v6(self) -> float:
        if self.with_dc_v6 == 0:
            return 0.0
        return 1.0 - self.without_dc_v6 / self.with_dc_v6

    @property
    def reduction_total(self) -> float:
        with_dc = self.with_dc_v4 + self.with_dc_v6
        without = self.without_dc_v4 + self.without_dc_v6
        return 1.0 - without / with_dc if with_dc else 0.0


def build_table1(runs: Iterable[ReplicationRun]) -> list[Table1Row]:
    """Zombie outbreaks with vs without double-counting, noisy peer
    excluded (paper Table 1)."""
    rows = []
    for run in runs:
        with_dc = run.detect(dedup=False, exclude_noisy=True)
        without_dc = run.detect(dedup=True, exclude_noisy=True)
        w4, w6 = _family_counts(with_dc)
        n4, n6 = _family_counts(without_dc)
        rows.append(Table1Row(
            period=run.config.name,
            visible_prefixes=without_dc.visible_count,
            with_dc_v4=w4, with_dc_v6=w6,
            without_dc_v4=n4, without_dc_v6=n6))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    lines = ["Table 1: zombie outbreaks with vs without double-counting",
             f"{'Period':>10} {'#visible':>9} | {'withDC v4':>9} {'v6':>6} "
             f"| {'noDC v4':>8} {'v6':>6} | {'red. v4':>8} {'v6':>7}"]
    for row in rows:
        lines.append(
            f"{row.period:>10} {row.visible_prefixes:>9} | "
            f"{row.with_dc_v4:>9} {row.with_dc_v6:>6} | "
            f"{row.without_dc_v4:>8} {row.without_dc_v6:>6} | "
            f"{row.reduction_v4:>7.1%} {row.reduction_v6:>6.1%}")
    return "\n".join(lines)


# -- Table 2: previous study vs ours -----------------------------------------


@dataclass(frozen=True)
class Table2Row:
    period: str
    visible_prefixes: int
    study_v4: int
    study_v6: int
    with_dc_v4: int
    with_dc_v6: int
    without_dc_v4: int
    without_dc_v6: int


def build_table2(runs: Iterable[ReplicationRun]) -> list[Table2Row]:
    """Adds the legacy ("Study") pipeline's counts (paper Table 2)."""
    rows = []
    for run in runs:
        study = run.detect_legacy()
        with_dc = run.detect(dedup=False, exclude_noisy=True)
        without_dc = run.detect(dedup=True, exclude_noisy=True)
        s4, s6 = _family_counts(study)
        w4, w6 = _family_counts(with_dc)
        n4, n6 = _family_counts(without_dc)
        rows.append(Table2Row(
            period=run.config.name, visible_prefixes=without_dc.visible_count,
            study_v4=s4, study_v6=s6, with_dc_v4=w4, with_dc_v6=w6,
            without_dc_v4=n4, without_dc_v6=n6))
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    lines = ["Table 2: previous study vs our estimates",
             f"{'Period':>10} | {'study v4':>8} {'v6':>6} | {'withDC v4':>9} "
             f"{'v6':>6} | {'noDC v4':>8} {'v6':>6} | {'#visible':>9}"]
    for row in rows:
        lines.append(
            f"{row.period:>10} | {row.study_v4:>8} {row.study_v6:>6} | "
            f"{row.with_dc_v4:>9} {row.with_dc_v6:>6} | "
            f"{row.without_dc_v4:>8} {row.without_dc_v6:>6} | "
            f"{row.visible_prefixes:>9}")
    return "\n".join(lines)


# -- Table 3: missing routes/outbreaks ----------------------------------------


@dataclass(frozen=True)
class Table3Result:
    """Missing zombie routes/outbreaks in each direction (paper Table 3).

    ``study_missing_*``: items our revised pipeline reports that the
    legacy one does not; ``ours_missing_*``: vice versa.
    """

    study_missing_routes_v4: int
    study_missing_routes_v6: int
    study_missing_outbreaks_v4: int
    study_missing_outbreaks_v6: int
    ours_missing_routes_v4: int
    ours_missing_routes_v6: int
    ours_missing_outbreaks_v4: int
    ours_missing_outbreaks_v6: int


def build_table3(runs: Iterable[ReplicationRun]) -> Table3Result:
    """Aggregate route-level diffs over all periods.  Both pipelines are
    compared noisy-peer-excluded (the legacy model is insensitive to the
    wedged peer — its published counts show no such explosion)."""
    totals = [0] * 8
    for run in runs:
        ours = run.detect(dedup=True, exclude_noisy=True)
        study = run.detect_legacy()
        comparison = compare_results(study, ours)
        study_missing = comparison.missing_in_a
        ours_missing = comparison.missing_in_b
        totals[0] += study_missing.routes_v4
        totals[1] += study_missing.routes_v6
        totals[2] += study_missing.outbreaks_v4
        totals[3] += study_missing.outbreaks_v6
        totals[4] += ours_missing.routes_v4
        totals[5] += ours_missing.routes_v6
        totals[6] += ours_missing.outbreaks_v4
        totals[7] += ours_missing.outbreaks_v6
    return Table3Result(*totals)


def render_table3(result: Table3Result) -> str:
    return "\n".join([
        "Table 3: missing zombie routes and outbreaks (both directions)",
        f"  study misses: routes v4={result.study_missing_routes_v4} "
        f"v6={result.study_missing_routes_v6}, outbreaks "
        f"v4={result.study_missing_outbreaks_v4} v6={result.study_missing_outbreaks_v6}",
        f"  ours misses:  routes v4={result.ours_missing_routes_v4} "
        f"v6={result.ours_missing_routes_v6}, outbreaks "
        f"v4={result.ours_missing_outbreaks_v4} v6={result.ours_missing_outbreaks_v6}",
    ])


# -- Table 4: the 2018 noisy peer --------------------------------------------


@dataclass(frozen=True)
class Table4Result:
    """Mean/median zombie likelihood of ⟨beacon, AS16347⟩ pairs."""

    with_dc_mean_v4: float
    with_dc_mean_v6: float
    with_dc_median_v4: float
    with_dc_median_v6: float
    without_dc_mean_v4: float
    without_dc_mean_v6: float
    without_dc_median_v4: float
    without_dc_median_v6: float


def _noisy_pair_rates(result: DetectionResult, asn: int,
                      ipv6: bool) -> list[float]:
    rates = []
    for (prefix, pair_asn), visible in result.visible_pairs.items():
        if pair_asn != asn or prefix.is_ipv6 != ipv6 or not visible:
            continue
        rates.append(result.zombie_pairs.get((prefix, pair_asn), 0) / visible)
    return rates


def build_table4(run: ReplicationRun) -> Table4Result:
    """Noisy-peer likelihoods with and without double-counting."""
    asn = NOISY_PEER_16347.asn

    def stats(result: DetectionResult, ipv6: bool) -> tuple[float, float]:
        rates = _noisy_pair_rates(result, asn, ipv6)
        if not rates:
            return 0.0, 0.0
        return statistics.fmean(rates), statistics.median(rates)

    with_dc = run.detect(dedup=False, exclude_noisy=False)
    without_dc = run.detect(dedup=True, exclude_noisy=False)
    wm4, wmed4 = stats(with_dc, ipv6=False)
    wm6, wmed6 = stats(with_dc, ipv6=True)
    nm4, nmed4 = stats(without_dc, ipv6=False)
    nm6, nmed6 = stats(without_dc, ipv6=True)
    return Table4Result(wm4, wm6, wmed4, wmed6, nm4, nm6, nmed4, nmed6)


def render_table4(result: Table4Result) -> str:
    return "\n".join([
        "Table 4: zombie likelihood of the pair <beacon, AS16347>",
        f"  with double-counting:    mean v4={result.with_dc_mean_v4:.4f} "
        f"v6={result.with_dc_mean_v6:.4f}  median v4={result.with_dc_median_v4:.4f} "
        f"v6={result.with_dc_median_v6:.4f}",
        f"  without double-counting: mean v4={result.without_dc_mean_v4:.4f} "
        f"v6={result.without_dc_mean_v6:.4f}  median v4={result.without_dc_median_v4:.4f} "
        f"v6={result.without_dc_median_v6:.4f}",
    ])


# -- Table 5: the 2024 noisy peer routers -------------------------------------


@dataclass(frozen=True)
class Table5Row:
    peer_address: str
    peer_asn: int
    zombies_90min: int
    percent_90min: float
    zombies_180min: int
    percent_180min: float


def build_table5(run: CampaignRun) -> list[Table5Row]:
    """Per noisy-router zombie routes at 1.5h and 3h (paper Table 5)."""
    result_90 = run.detect(threshold=90 * MINUTE, exclude_noisy=False)
    result_180 = run.detect(threshold=180 * MINUTE, exclude_noisy=False)
    rows = []
    for peer in NOISY_PEER_ROUTERS:
        if peer.key not in run.noisy_truth:
            continue
        z90 = result_90.router_zombies.get(peer.key, 0)
        z180 = result_180.router_zombies.get(peer.key, 0)
        v90 = result_90.router_visible.get(peer.key, 0)
        v180 = result_180.router_visible.get(peer.key, 0)
        rows.append(Table5Row(
            peer_address=peer.address, peer_asn=peer.asn,
            zombies_90min=z90,
            percent_90min=z90 / v90 if v90 else 0.0,
            zombies_180min=z180,
            percent_180min=z180 / v180 if v180 else 0.0))
    return rows


def render_table5(rows: Sequence[Table5Row]) -> str:
    lines = ["Table 5: noisy peer routers of the 2024 campaign",
             f"{'Peer address':>22} {'ASN':>7} | {'z@1.5h':>7} {'%':>7} "
             f"| {'z@3h':>6} {'%':>7}"]
    for row in rows:
        lines.append(
            f"{row.peer_address:>22} {row.peer_asn:>7} | "
            f"{row.zombies_90min:>7} {row.percent_90min:>6.2%} | "
            f"{row.zombies_180min:>6} {row.percent_180min:>6.2%}")
    return "\n".join(lines)
