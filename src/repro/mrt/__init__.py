"""MRT (RFC 6396) binary format: BGP4MP updates and TABLE_DUMP_V2 RIBs."""

from repro.mrt.bgp4mp import (
    decode_bgp4mp,
    decode_mrt_header,
    encode_mrt_record,
    encode_state_record,
    encode_update_record,
    iter_update_prefixes,
    prematch_bgp4mp,
)
from repro.mrt.files import (
    MRTDecodeError,
    iter_raw_records,
    read_updates_file,
    write_updates_file,
)
from repro.mrt.resilient import (
    DecodeStats,
    ErrorPolicy,
    QuarantineWriter,
    ResilientReader,
    plausible_header,
    quarantine_path,
    read_quarantine,
)
from repro.mrt.tabledump import (
    RibDump,
    RibEntry,
    RibPeer,
    decode_rib_dump,
    encode_rib_dump,
)

__all__ = [
    "decode_bgp4mp",
    "decode_mrt_header",
    "encode_mrt_record",
    "encode_state_record",
    "encode_update_record",
    "iter_update_prefixes",
    "prematch_bgp4mp",
    "MRTDecodeError",
    "iter_raw_records",
    "read_updates_file",
    "write_updates_file",
    "DecodeStats",
    "ErrorPolicy",
    "QuarantineWriter",
    "ResilientReader",
    "plausible_header",
    "quarantine_path",
    "read_quarantine",
    "RibDump",
    "RibEntry",
    "RibPeer",
    "decode_rib_dump",
    "encode_rib_dump",
]
