"""Path-attribute wire codec (RFC 4271 §4.3, RFC 4760, RFC 6793).

Encodes/decodes the attribute block of a BGP UPDATE.  AS paths are
always encoded 4-byte (AS4); IPv6 reachability travels in
MP_REACH_NLRI / MP_UNREACH_NLRI as on the real wire.  TABLE_DUMP_V2 RIB
entries use the RFC 6396 §4.3.4 abbreviated MP_REACH_NLRI (next hop
only), selected with ``rib_entry=True``.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Optional

from repro.bgp.attributes import (
    ATTR_AGGREGATOR,
    ATTR_AS_PATH,
    ATTR_COMMUNITIES,
    ATTR_MP_REACH_NLRI,
    ATTR_MP_UNREACH_NLRI,
    ATTR_NEXT_HOP,
    ATTR_ORIGIN,
    Aggregator,
    ASPath,
    PathAttributes,
)
from repro.mrt.constants import SAFI_UNICAST
from repro.net.prefix import AFI_IPV4, AFI_IPV6, Prefix

__all__ = ["encode_attributes", "decode_attributes", "DecodedUpdateBody"]

_FLAG_OPTIONAL = 0x80
_FLAG_TRANSITIVE = 0x40
_FLAG_EXTENDED = 0x10

_AS_SEQUENCE = 2
_AS_SET = 1


def _attribute(flags: int, type_code: int, payload: bytes) -> bytes:
    """Frame one attribute, using extended length when needed."""
    if len(payload) > 255:
        flags |= _FLAG_EXTENDED
        return struct.pack("!BBH", flags, type_code, len(payload)) + payload
    return struct.pack("!BBB", flags, type_code, len(payload)) + payload


def _encode_as_path(path: ASPath) -> bytes:
    """AS_PATH as one or more AS_SEQUENCE segments of <=255 ASNs."""
    out = bytearray()
    asns = list(path.asns)
    for start in range(0, len(asns), 255):
        chunk = asns[start:start + 255]
        out += struct.pack("!BB", _AS_SEQUENCE, len(chunk))
        for asn in chunk:
            out += struct.pack("!I", asn)
    return bytes(out)


def _decode_as_path(payload: bytes) -> ASPath:
    asns: list[int] = []
    offset = 0
    while offset < len(payload):
        seg_type, count = struct.unpack_from("!BB", payload, offset)
        offset += 2
        segment = [struct.unpack_from("!I", payload, offset + 4 * i)[0]
                   for i in range(count)]
        offset += 4 * count
        if seg_type not in (_AS_SEQUENCE, _AS_SET):
            raise ValueError(f"unsupported AS_PATH segment type {seg_type}")
        asns.extend(segment)  # AS_SETs flattened
    return ASPath(tuple(asns))


def encode_attributes(attrs: PathAttributes,
                      announced: Optional[list[Prefix]] = None,
                      withdrawn_mp: Optional[list[Prefix]] = None,
                      rib_entry: bool = False) -> bytes:
    """Encode the attribute block.

    ``announced`` prefixes that are IPv6 are folded into MP_REACH_NLRI;
    IPv4 announcements are carried in the UPDATE's NLRI field by the
    caller.  ``withdrawn_mp`` lists IPv6 prefixes for MP_UNREACH_NLRI.
    With ``rib_entry=True`` the MP_REACH_NLRI contains only the next hop
    (RFC 6396 §4.3.4).
    """
    announced = announced or []
    withdrawn_mp = withdrawn_mp or []
    out = bytearray()

    out += _attribute(_FLAG_TRANSITIVE, ATTR_ORIGIN, bytes([attrs.origin]))
    out += _attribute(_FLAG_TRANSITIVE, ATTR_AS_PATH, _encode_as_path(attrs.as_path))

    next_hop = ipaddress.ip_address(attrs.next_hop)
    if next_hop.version == 4:
        out += _attribute(_FLAG_TRANSITIVE, ATTR_NEXT_HOP, next_hop.packed)

    if attrs.aggregator is not None:
        payload = struct.pack("!I", attrs.aggregator.asn) + attrs.aggregator.address_bytes()
        out += _attribute(_FLAG_OPTIONAL | _FLAG_TRANSITIVE, ATTR_AGGREGATOR, payload)

    if attrs.communities:
        payload = b"".join(struct.pack("!HH", high, low)
                           for high, low in attrs.communities)
        out += _attribute(_FLAG_OPTIONAL | _FLAG_TRANSITIVE, ATTR_COMMUNITIES, payload)

    v6_announced = [p for p in announced if p.is_ipv6]
    if v6_announced or (rib_entry and next_hop.version == 6):
        body = bytearray()
        if not rib_entry:
            body += struct.pack("!HB", AFI_IPV6, SAFI_UNICAST)
        body += bytes([16]) + next_hop.packed if next_hop.version == 6 else bytes([4]) + next_hop.packed
        if not rib_entry:
            body += b"\x00"  # reserved
            for prefix in v6_announced:
                body += prefix.wire_bytes()
        out += _attribute(_FLAG_OPTIONAL, ATTR_MP_REACH_NLRI, bytes(body))

    if withdrawn_mp:
        body = bytearray(struct.pack("!HB", AFI_IPV6, SAFI_UNICAST))
        for prefix in withdrawn_mp:
            body += prefix.wire_bytes()
        out += _attribute(_FLAG_OPTIONAL, ATTR_MP_UNREACH_NLRI, bytes(body))

    return bytes(out)


class DecodedUpdateBody:
    """Result of :func:`decode_attributes`: the attribute bundle plus any
    NLRI carried inside MP_REACH/MP_UNREACH attributes."""

    def __init__(self):
        self.origin: int = 0
        self.as_path: Optional[ASPath] = None
        self.next_hop: str = "0.0.0.0"
        self.aggregator: Optional[Aggregator] = None
        self.communities: tuple[tuple[int, int], ...] = ()
        self.mp_announced: list[Prefix] = []
        self.mp_withdrawn: list[Prefix] = []

    def to_path_attributes(self) -> PathAttributes:
        if self.as_path is None:
            raise ValueError("attribute block carried no AS_PATH")
        return PathAttributes(
            as_path=self.as_path,
            next_hop=self.next_hop,
            origin=self.origin,
            aggregator=self.aggregator,
            communities=self.communities,
        )


def decode_attributes(data: bytes, rib_entry: bool = False) -> DecodedUpdateBody:
    """Decode an attribute block (inverse of :func:`encode_attributes`)."""
    result = DecodedUpdateBody()
    offset = 0
    while offset < len(data):
        flags, type_code = struct.unpack_from("!BB", data, offset)
        offset += 2
        if flags & _FLAG_EXTENDED:
            (length,) = struct.unpack_from("!H", data, offset)
            offset += 2
        else:
            length = data[offset]
            offset += 1
        payload = data[offset:offset + length]
        if len(payload) != length:
            raise ValueError("truncated path attribute")
        offset += length

        if type_code == ATTR_ORIGIN:
            result.origin = payload[0]
        elif type_code == ATTR_AS_PATH:
            result.as_path = _decode_as_path(payload)
        elif type_code == ATTR_NEXT_HOP:
            result.next_hop = str(ipaddress.IPv4Address(payload))
        elif type_code == ATTR_AGGREGATOR:
            asn = struct.unpack("!I", payload[:4])[0]
            result.aggregator = Aggregator.from_bytes(asn, payload[4:8])
        elif type_code == ATTR_COMMUNITIES:
            count = len(payload) // 4
            result.communities = tuple(
                struct.unpack_from("!HH", payload, 4 * i) for i in range(count))
        elif type_code == ATTR_MP_REACH_NLRI:
            result.next_hop, nlri = _decode_mp_reach(payload, rib_entry)
            result.mp_announced.extend(nlri)
        elif type_code == ATTR_MP_UNREACH_NLRI:
            result.mp_withdrawn.extend(_decode_mp_unreach(payload))
        else:
            raise ValueError(f"unsupported attribute type {type_code}")
    return result


def _decode_mp_reach(payload: bytes, rib_entry: bool) -> tuple[str, list[Prefix]]:
    offset = 0
    if not rib_entry:
        afi, safi = struct.unpack_from("!HB", payload, 0)
        if safi != SAFI_UNICAST:
            raise ValueError(f"unsupported SAFI {safi}")
        offset = 3
    else:
        afi = AFI_IPV6
    nh_len = payload[offset]
    offset += 1
    nh_bytes = payload[offset:offset + nh_len]
    offset += nh_len
    next_hop = str(ipaddress.ip_address(nh_bytes[:16] if nh_len >= 16 else nh_bytes))
    prefixes: list[Prefix] = []
    if not rib_entry:
        offset += 1  # reserved byte
        while offset < len(payload):
            prefix, consumed = Prefix.from_wire(payload[offset:], afi)
            prefixes.append(prefix)
            offset += consumed
    return next_hop, prefixes


def _decode_mp_unreach(payload: bytes) -> list[Prefix]:
    afi, safi = struct.unpack_from("!HB", payload, 0)
    if safi != SAFI_UNICAST:
        raise ValueError(f"unsupported SAFI {safi}")
    offset = 3
    prefixes: list[Prefix] = []
    while offset < len(payload):
        prefix, consumed = Prefix.from_wire(payload[offset:], afi)
        prefixes.append(prefix)
        offset += consumed
    return prefixes
