"""BGP4MP MRT records: UPDATE messages and session state changes.

The encoder always emits BGP4MP_MESSAGE_AS4 / BGP4MP_STATE_CHANGE_AS4
(4-byte peer ASNs), as RIPE RIS has done for many years; the decoder
additionally accepts the 2-byte legacy subtypes.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Iterable, Optional

from repro.bgp.attributes import (
    ATTR_MP_REACH_NLRI,
    ATTR_MP_UNREACH_NLRI,
    PathAttributes,
)
from repro.bgp.messages import (
    Announcement,
    PeerState,
    StateRecord,
    UpdateRecord,
    Withdrawal,
)
from repro.mrt.attr_codec import decode_attributes, encode_attributes
from repro.mrt.constants import (
    BGP4MP_MESSAGE,
    BGP4MP_MESSAGE_AS4,
    BGP4MP_STATE_CHANGE,
    BGP4MP_STATE_CHANGE_AS4,
    BGP_MARKER,
    BGP_MSG_UPDATE,
    MRT_BGP4MP,
)
from repro.net.prefix import AFI_IPV4, AFI_IPV6, Prefix

__all__ = [
    "encode_update_record",
    "encode_state_record",
    "decode_bgp4mp",
    "iter_update_prefixes",
    "prematch_bgp4mp",
    "MRTRecordHeader",
    "encode_mrt_record",
    "decode_mrt_header",
]

#: A collector-side placeholder address/ASN for the "local" side of the
#: BGP4MP header (the collector itself).
COLLECTOR_ASN = 12654  # RIPE NCC RIS AS

# Precompiled wire codecs — the decode path runs once per record of
# every archive file, so repeated format-string parsing is measurable.
_MRT_HDR = struct.Struct("!IHHI")
_ASN_PAIR_AS4 = struct.Struct("!II")
_ASN_PAIR_AS2 = struct.Struct("!HH")
_U16_PAIR = struct.Struct("!HH")
_U16 = struct.Struct("!H")
_U16_U8 = struct.Struct("!HB")
_LEN_TYPE = struct.Struct("!HB")
_FLAG_EXTENDED_LENGTH = 0x10


class MRTRecordHeader:
    """Parsed MRT common header."""

    __slots__ = ("timestamp", "mrt_type", "subtype", "length")

    def __init__(self, timestamp: int, mrt_type: int, subtype: int, length: int):
        self.timestamp = timestamp
        self.mrt_type = mrt_type
        self.subtype = subtype
        self.length = length


def encode_mrt_record(timestamp: int, mrt_type: int, subtype: int,
                      body: bytes) -> bytes:
    """Wrap a record body in the MRT common header."""
    return _MRT_HDR.pack(timestamp, mrt_type, subtype, len(body)) + body


def decode_mrt_header(data: bytes, offset: int = 0) -> MRTRecordHeader:
    timestamp, mrt_type, subtype, length = _MRT_HDR.unpack_from(data, offset)
    return MRTRecordHeader(timestamp, mrt_type, subtype, length)


def _bgp4mp_header(peer_asn: int, peer_address: str,
                   local_address: str) -> tuple[bytes, int]:
    """The AS4 BGP4MP per-record header; returns (bytes, afi)."""
    peer_ip = ipaddress.ip_address(peer_address)
    local_ip = ipaddress.ip_address(local_address)
    if peer_ip.version != local_ip.version:
        raise ValueError("peer and local addresses must share a family")
    afi = AFI_IPV4 if peer_ip.version == 4 else AFI_IPV6
    header = struct.pack("!IIHH", peer_asn, COLLECTOR_ASN, 0, afi)
    header += peer_ip.packed + local_ip.packed
    return header, afi


def _encode_bgp_update(announced_v4: list[Prefix],
                       withdrawn_v4: list[Prefix],
                       announced_v6: list[Prefix],
                       withdrawn_v6: list[Prefix],
                       attrs: Optional[PathAttributes]) -> bytes:
    """Build the BGP UPDATE message bytes (marker + length + type + body)."""
    withdrawn_bytes = b"".join(p.wire_bytes() for p in withdrawn_v4)
    if attrs is not None:
        attr_bytes = encode_attributes(attrs, announced=announced_v6,
                                       withdrawn_mp=withdrawn_v6)
    elif withdrawn_v6:
        attr_bytes = _mp_unreach_only(withdrawn_v6)
    else:
        attr_bytes = b""
    nlri = b"".join(p.wire_bytes() for p in announced_v4)
    body = (struct.pack("!H", len(withdrawn_bytes)) + withdrawn_bytes
            + struct.pack("!H", len(attr_bytes)) + attr_bytes + nlri)
    total = len(BGP_MARKER) + 2 + 1 + len(body)
    return BGP_MARKER + struct.pack("!HB", total, BGP_MSG_UPDATE) + body


def _mp_unreach_only(withdrawn_v6: list[Prefix]) -> bytes:
    """Attribute block holding only MP_UNREACH_NLRI (pure v6 withdrawal)."""
    payload = bytearray(struct.pack("!HB", AFI_IPV6, 1))
    for prefix in withdrawn_v6:
        payload += prefix.wire_bytes()
    if len(payload) > 255:
        return struct.pack("!BBH", 0x90, 15, len(payload)) + bytes(payload)
    return struct.pack("!BBB", 0x80, 15, len(payload)) + bytes(payload)


def encode_update_record(record: UpdateRecord,
                         local_address: Optional[str] = None) -> bytes:
    """Serialise one :class:`UpdateRecord` as a BGP4MP_MESSAGE_AS4 record."""
    if local_address is None:
        peer_ip = ipaddress.ip_address(record.peer_address)
        local_address = "192.0.2.1" if peer_ip.version == 4 else "2001:db8::1"
    header, _ = _bgp4mp_header(record.peer_asn, record.peer_address, local_address)

    announced_v4: list[Prefix] = []
    withdrawn_v4: list[Prefix] = []
    announced_v6: list[Prefix] = []
    withdrawn_v6: list[Prefix] = []
    attrs: Optional[PathAttributes] = None
    message = record.message
    if isinstance(message, Announcement):
        attrs = message.attributes
        (announced_v4 if message.prefix.is_ipv4 else announced_v6).append(message.prefix)
    elif isinstance(message, Withdrawal):
        (withdrawn_v4 if message.prefix.is_ipv4 else withdrawn_v6).append(message.prefix)
    else:
        raise TypeError(f"cannot encode message of type {type(message).__name__}")

    bgp_message = _encode_bgp_update(announced_v4, withdrawn_v4,
                                     announced_v6, withdrawn_v6, attrs)
    return encode_mrt_record(record.timestamp, MRT_BGP4MP, BGP4MP_MESSAGE_AS4,
                             header + bgp_message)


def encode_state_record(record: StateRecord,
                        local_address: Optional[str] = None) -> bytes:
    """Serialise one :class:`StateRecord` as BGP4MP_STATE_CHANGE_AS4."""
    if local_address is None:
        peer_ip = ipaddress.ip_address(record.peer_address)
        local_address = "192.0.2.1" if peer_ip.version == 4 else "2001:db8::1"
    header, _ = _bgp4mp_header(record.peer_asn, record.peer_address, local_address)
    body = header + struct.pack("!HH", record.old_state.value, record.new_state.value)
    return encode_mrt_record(record.timestamp, MRT_BGP4MP,
                             BGP4MP_STATE_CHANGE_AS4, body)


def decode_bgp4mp(header: MRTRecordHeader, body: bytes,
                  collector: str) -> list:
    """Decode one BGP4MP record body into Update/State records.

    A single MRT record can carry several NLRI and withdrawals; each
    becomes its own :class:`UpdateRecord` (mirroring how pybgpstream
    explodes updates into elems).
    """
    as4 = header.subtype in (BGP4MP_MESSAGE_AS4, BGP4MP_STATE_CHANGE_AS4)
    asn_codec = _ASN_PAIR_AS4 if as4 else _ASN_PAIR_AS2
    asn_size = 8 if as4 else 4
    peer_asn, _local_asn = asn_codec.unpack_from(body, 0)
    _ifindex, afi = _U16_PAIR.unpack_from(body, asn_size)
    offset = asn_size + 4
    addr_len = 4 if afi == AFI_IPV4 else 16
    peer_address = str(ipaddress.ip_address(body[offset:offset + addr_len]))
    offset += 2 * addr_len  # skip local address too

    if header.subtype in (BGP4MP_STATE_CHANGE, BGP4MP_STATE_CHANGE_AS4):
        old_state, new_state = _U16_PAIR.unpack_from(body, offset)
        return [StateRecord(header.timestamp, collector, peer_address, peer_asn,
                            PeerState(old_state), PeerState(new_state))]

    if header.subtype not in (BGP4MP_MESSAGE, BGP4MP_MESSAGE_AS4):
        raise ValueError(f"unsupported BGP4MP subtype {header.subtype}")

    marker = body[offset:offset + 16]
    if marker != BGP_MARKER:
        raise ValueError("bad BGP marker")
    offset += 16
    _msg_len, msg_type = _LEN_TYPE.unpack_from(body, offset)
    offset += 3
    if msg_type != BGP_MSG_UPDATE:
        return []

    (withdrawn_len,) = _U16.unpack_from(body, offset)
    offset += 2
    records: list = []
    end = offset + withdrawn_len
    while offset < end:
        prefix, consumed = Prefix.from_wire(body[offset:end], AFI_IPV4)
        offset += consumed
        records.append(UpdateRecord(header.timestamp, collector, peer_address,
                                    peer_asn, Withdrawal(prefix)))

    (attr_len,) = _U16.unpack_from(body, offset)
    offset += 2
    attr_block = body[offset:offset + attr_len]
    offset += attr_len

    decoded = decode_attributes(attr_block) if attr_block else None
    if decoded is not None:
        for prefix in decoded.mp_withdrawn:
            records.append(UpdateRecord(header.timestamp, collector, peer_address,
                                        peer_asn, Withdrawal(prefix)))
        if decoded.as_path is not None:
            attrs = decoded.to_path_attributes()
            for prefix in decoded.mp_announced:
                records.append(UpdateRecord(header.timestamp, collector,
                                            peer_address, peer_asn,
                                            Announcement(prefix, attrs)))
            # IPv4 NLRI at the tail of the message.
            while offset < len(body):
                prefix, consumed = Prefix.from_wire(body[offset:], AFI_IPV4)
                offset += consumed
                records.append(UpdateRecord(header.timestamp, collector,
                                            peer_address, peer_asn,
                                            Announcement(prefix, attrs)))
    return records


def iter_update_prefixes(header: MRTRecordHeader, body: bytes) -> Iterable[Prefix]:
    """Cheaply yield every NLRI prefix in a BGP4MP UPDATE record.

    This walks only the NLRI fields (withdrawn routes, MP_REACH /
    MP_UNREACH payloads and the trailing IPv4 NLRI) without decoding
    path-attribute *values* — no AS path, community or aggregator
    objects are built.  It is the prefix prematch used by filter
    push-down: a superset of the prefixes :func:`decode_bgp4mp` would
    attach to records.  State-change and non-UPDATE records yield
    nothing.
    """
    as4 = header.subtype in (BGP4MP_MESSAGE_AS4, BGP4MP_STATE_CHANGE_AS4)
    asn_size = 8 if as4 else 4
    _ifindex, afi = _U16_PAIR.unpack_from(body, asn_size)
    offset = asn_size + 4 + 2 * (4 if afi == AFI_IPV4 else 16)

    if header.subtype in (BGP4MP_STATE_CHANGE, BGP4MP_STATE_CHANGE_AS4):
        return
    if header.subtype not in (BGP4MP_MESSAGE, BGP4MP_MESSAGE_AS4):
        raise ValueError(f"unsupported BGP4MP subtype {header.subtype}")
    if body[offset:offset + 16] != BGP_MARKER:
        raise ValueError("bad BGP marker")
    offset += 16
    _msg_len, msg_type = _LEN_TYPE.unpack_from(body, offset)
    offset += 3
    if msg_type != BGP_MSG_UPDATE:
        return

    (withdrawn_len,) = _U16.unpack_from(body, offset)
    offset += 2
    end = offset + withdrawn_len
    while offset < end:
        prefix, consumed = Prefix.from_wire(body[offset:end], AFI_IPV4)
        offset += consumed
        yield prefix

    (attr_len,) = _U16.unpack_from(body, offset)
    offset += 2
    attrs_end = offset + attr_len
    while offset < attrs_end:
        flags = body[offset]
        type_code = body[offset + 1]
        if flags & _FLAG_EXTENDED_LENGTH:
            (length,) = _U16.unpack_from(body, offset + 2)
            payload_start = offset + 4
        else:
            length = body[offset + 2]
            payload_start = offset + 3
        offset = payload_start + length
        if type_code == ATTR_MP_REACH_NLRI:
            mp_afi, _safi = _U16_U8.unpack_from(body, payload_start)
            nh_len = body[payload_start + 3]
            pos = payload_start + 4 + nh_len + 1  # next hop + reserved byte
            while pos < payload_start + length:
                prefix, consumed = Prefix.from_wire(
                    body[pos:payload_start + length], mp_afi)
                pos += consumed
                yield prefix
        elif type_code == ATTR_MP_UNREACH_NLRI:
            mp_afi, _safi = _U16_U8.unpack_from(body, payload_start)
            pos = payload_start + 3
            while pos < payload_start + length:
                prefix, consumed = Prefix.from_wire(
                    body[pos:payload_start + length], mp_afi)
                pos += consumed
                yield prefix
        # Other attribute types are skipped without decoding.

    while offset < len(body):
        prefix, consumed = Prefix.from_wire(body[offset:], AFI_IPV4)
        offset += consumed
        yield prefix


def prematch_bgp4mp(header: MRTRecordHeader, body: bytes,
                    record_filter) -> bool:
    """Pre-decode test: can this record produce a match for
    ``record_filter`` (a :class:`repro.ris.pushdown.RecordFilter`)?

    False only when no decoded record could match; True is conservative
    (the record-level filter still runs after the full decode).  Peer
    clauses are checked from the BGP4MP per-record header alone; prefix
    clauses via :func:`iter_update_prefixes`, skipping the expensive
    path-attribute decode for records carrying no matching NLRI.
    """
    if record_filter.peers:
        as4 = header.subtype in (BGP4MP_MESSAGE_AS4, BGP4MP_STATE_CHANGE_AS4)
        asn_codec = _ASN_PAIR_AS4 if as4 else _ASN_PAIR_AS2
        peer_asn, _local = asn_codec.unpack_from(body, 0)
        if peer_asn not in record_filter.peers:
            return False
    if not record_filter.has_prefix_clause:
        return True
    if header.subtype in (BGP4MP_STATE_CHANGE, BGP4MP_STATE_CHANGE_AS4):
        return True  # state decode is cheap; matches_record decides
    return any(record_filter.match_prefix(prefix)
               for prefix in iter_update_prefixes(header, body))
