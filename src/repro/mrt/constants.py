"""MRT format constants (RFC 6396)."""

from __future__ import annotations

__all__ = [
    "MRT_TABLE_DUMP_V2",
    "MRT_BGP4MP",
    "BGP4MP_STATE_CHANGE",
    "BGP4MP_MESSAGE",
    "BGP4MP_MESSAGE_AS4",
    "BGP4MP_STATE_CHANGE_AS4",
    "TDV2_PEER_INDEX_TABLE",
    "TDV2_RIB_IPV4_UNICAST",
    "TDV2_RIB_IPV6_UNICAST",
    "BGP_MSG_UPDATE",
    "BGP_MARKER",
]

# MRT record types.
MRT_TABLE_DUMP_V2 = 13
MRT_BGP4MP = 16

# BGP4MP subtypes.
BGP4MP_STATE_CHANGE = 0
BGP4MP_MESSAGE = 1
BGP4MP_MESSAGE_AS4 = 4
BGP4MP_STATE_CHANGE_AS4 = 5

# TABLE_DUMP_V2 subtypes.
TDV2_PEER_INDEX_TABLE = 1
TDV2_RIB_IPV4_UNICAST = 2
TDV2_RIB_IPV6_UNICAST = 4

# BGP message types (RFC 4271).
BGP_MSG_OPEN = 1
BGP_MSG_UPDATE = 2
BGP_MSG_NOTIFICATION = 3
BGP_MSG_KEEPALIVE = 4

#: The all-ones 16-octet marker every BGP message starts with.
BGP_MARKER = b"\xff" * 16

# Peer-index-table peer type flag bits.
PEER_TYPE_IPV6 = 0x01
PEER_TYPE_AS4 = 0x02

# SAFI.
SAFI_UNICAST = 1
