"""MRT file container: gzip-compressed record streams on disk.

RIPE RIS publishes updates as gzip-compressed concatenations of MRT
records.  This module reads and writes that container and exposes record
iteration that tolerates individually corrupted records (as real
archives require — see the FRR ADD-PATH incident cited by the paper).
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.bgp.messages import Record, record_sort_key
from repro.mrt.bgp4mp import (
    decode_bgp4mp,
    decode_mrt_header,
    encode_state_record,
    encode_update_record,
)
from repro.mrt.constants import MRT_BGP4MP, MRT_TABLE_DUMP_V2
from repro.bgp.messages import StateRecord, UpdateRecord

__all__ = ["write_updates_file", "read_updates_file", "iter_raw_records",
           "MRTDecodeError"]


class MRTDecodeError(ValueError):
    """A record could not be decoded (corruption, unsupported feature)."""


def write_updates_file(path: Union[str, Path], records: Iterable[Record],
                       sort: bool = True) -> int:
    """Write update/state records to a gzip MRT file; returns count.

    Records are sorted into archive order (time, then peer) unless the
    caller guarantees ordering.
    """
    items = list(records)
    if sort:
        items.sort(key=record_sort_key)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with gzip.open(path, "wb") as handle:
        for record in items:
            if isinstance(record, UpdateRecord):
                handle.write(encode_update_record(record))
            elif isinstance(record, StateRecord):
                handle.write(encode_state_record(record))
            else:
                raise TypeError(f"cannot write record of type {type(record).__name__}")
    return len(items)


def iter_raw_records(path: Union[str, Path]) -> Iterator[tuple]:
    """Yield ``(header, body)`` pairs from a gzip MRT file."""
    with gzip.open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < 12:
            raise MRTDecodeError(f"{path}: trailing garbage ({total - offset} bytes)")
        header = decode_mrt_header(data, offset)
        body = data[offset + 12:offset + 12 + header.length]
        if len(body) != header.length:
            raise MRTDecodeError(f"{path}: truncated record at offset {offset}")
        offset += 12 + header.length
        yield header, body


def read_updates_file(path: Union[str, Path], collector: str,
                      strict: bool = False) -> Iterator[Record]:
    """Decode a gzip MRT updates file into Update/State records.

    With ``strict=False`` (default), records that fail to decode are
    skipped — the behaviour a production pipeline needs against corrupted
    archive files.  With ``strict=True`` the error propagates.
    """
    for header, body in iter_raw_records(path):
        if header.mrt_type != MRT_BGP4MP:
            if strict:
                raise MRTDecodeError(
                    f"{path}: unexpected MRT type {header.mrt_type} in updates file")
            continue
        try:
            yield from decode_bgp4mp(header, body, collector)
        except (ValueError, struct.error) as exc:
            if strict:
                raise MRTDecodeError(f"{path}: {exc}") from exc
            continue
