"""MRT file container: gzip-compressed record streams on disk.

RIPE RIS publishes updates as gzip-compressed concatenations of MRT
records.  This module reads and writes that container and exposes record
iteration that tolerates individually corrupted records (as real
archives require — see the FRR ADD-PATH incident cited by the paper).
"""

from __future__ import annotations

import gzip
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.bgp.messages import Record, record_sort_key
from repro.mrt.bgp4mp import (
    decode_bgp4mp,
    decode_mrt_header,
    encode_state_record,
    encode_update_record,
    prematch_bgp4mp,
)
from repro.mrt.constants import MRT_BGP4MP, MRT_TABLE_DUMP_V2
from repro.bgp.messages import StateRecord, UpdateRecord
from repro.mrt.resilient import DecodeStats, ErrorPolicy, ResilientReader

__all__ = ["write_updates_file", "read_updates_file", "iter_raw_records",
           "MRTDecodeError"]


class MRTDecodeError(ValueError):
    """A record could not be decoded (corruption, unsupported feature)."""


def write_updates_file(path: Union[str, Path], records: Iterable[Record],
                       sort: bool = True) -> int:
    """Write update/state records to a gzip MRT file; returns count.

    Records are sorted into archive order (time, then peer) unless the
    caller guarantees ordering.
    """
    items = list(records)
    if sort:
        items.sort(key=record_sort_key)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # mtime=0 and an empty embedded filename make re-written files
    # byte-identical, so transport manifest checksums are stable.
    with open(path, "wb") as raw, \
            gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                          mtime=0) as handle:
        for record in items:
            if isinstance(record, UpdateRecord):
                handle.write(encode_update_record(record))
            elif isinstance(record, StateRecord):
                handle.write(encode_state_record(record))
            else:
                raise TypeError(f"cannot write record of type {type(record).__name__}")
    return len(items)


def iter_raw_records(path: Union[str, Path]) -> Iterator[tuple]:
    """Yield ``(header, body)`` pairs from a gzip MRT file.

    Records are read *streaming* from the decompressor — header, then
    body — so a multi-megabyte archive file never has to be held in
    memory as one contiguous buffer.
    """
    try:
        with gzip.open(path, "rb") as handle:
            while True:
                head = handle.read(12)
                if not head:
                    return
                if len(head) < 12:
                    raise MRTDecodeError(
                        f"{path}: trailing garbage ({len(head)} bytes)")
                header = decode_mrt_header(head)
                body = handle.read(header.length)
                if len(body) != header.length:
                    raise MRTDecodeError(f"{path}: truncated record")
                yield header, body
    except (EOFError, OSError, zlib.error) as exc:
        # Corrupted/foreign compressed stream: carry the file path so
        # the serial and process-pool paths report identically.
        raise MRTDecodeError(f"{path}: {exc}") from exc


def read_updates_file(path: Union[str, Path], collector: str,
                      strict: bool = False,
                      record_filter=None,
                      error_policy: Optional[str] = None,
                      stats: Optional[DecodeStats] = None
                      ) -> Iterator[Record]:
    """Decode a gzip MRT updates file into Update/State records.

    With ``strict=False`` (default), records that fail to decode are
    skipped — the behaviour a production pipeline needs against corrupted
    archive files.  With ``strict=True`` the error propagates.

    ``error_policy`` selects the full containment layer
    (:mod:`repro.mrt.resilient`) instead of the legacy flag:

    ``"strict"``      any corruption raises :class:`MRTDecodeError`
                      with file context (fail-fast batch mode);
    ``"skip"``        bad records and garbage runs are contained via
                      header resync and counted into ``stats``;
    ``"quarantine"``  like ``skip``, plus the raw bad bytes are
                      preserved in a ``<name>.quarantine`` sidecar.

    ``record_filter`` (a :class:`repro.ris.pushdown.RecordFilter`) pushes
    stream-level filtering down to decode time: peer clauses are tested
    against the raw BGP4MP header and prefix clauses against the NLRI
    fields *before* path attributes are decoded, and only records for
    which ``record_filter.matches_record`` holds are yielded.
    """
    if error_policy is not None:
        policy = ErrorPolicy.validate(error_policy)
        if policy != ErrorPolicy.STRICT:
            yield from _read_updates_tolerant(Path(path), collector, policy,
                                              record_filter, stats)
            return
        strict = True
    for header, body in iter_raw_records(path):
        if header.mrt_type != MRT_BGP4MP:
            if strict:
                raise MRTDecodeError(
                    f"{path}: unexpected MRT type {header.mrt_type} in updates file")
            continue
        try:
            if record_filter is not None and not prematch_bgp4mp(
                    header, body, record_filter):
                continue
            records = decode_bgp4mp(header, body, collector)
        except (ValueError, struct.error) as exc:
            if strict:
                raise MRTDecodeError(f"{path}: {exc}") from exc
            continue
        if stats is not None:
            stats.records_decoded += 1
        if record_filter is None:
            yield from records
        else:
            for record in records:
                if record_filter.matches_record(record):
                    yield record


def _read_updates_tolerant(path: Path, collector: str, policy: str,
                           record_filter, stats: Optional[DecodeStats]
                           ) -> Iterator[Record]:
    """The ``skip``/``quarantine`` decode path: every per-record failure
    is contained, counted, and (under ``quarantine``) preserved."""
    with ResilientReader(path, policy, stats=stats) as reader:
        for offset, header, body in reader.iter_raw():
            if header.mrt_type != MRT_BGP4MP:
                # A RIB or foreign record inside an updates file is
                # poison for this stream: contain it like any other.
                reader.quarantine_record(offset, header, body)
                continue
            try:
                if record_filter is not None and not prematch_bgp4mp(
                        header, body, record_filter):
                    continue
                records = decode_bgp4mp(header, body, collector)
            except Exception:
                # Containment is the point: any decode failure — struct
                # underrun, bad marker, invalid enum, short body — costs
                # exactly this record.
                reader.quarantine_record(offset, header, body)
                continue
            reader.stats.records_decoded += 1
            if record_filter is None:
                yield from records
            else:
                for record in records:
                    if record_filter.matches_record(record):
                        yield record
