"""Poison-record containment for the MRT decode path.

Real RIS collectors emit truncated, torn and garbage records (the paper
had to discard whole corrupt intervals, §3); a production read path must
contain a bad record to that record instead of aborting an eleven-month
scan.  This module provides the containment layer:

* :class:`ErrorPolicy` — what to do with undecodable input:

  ``strict``      raise :class:`~repro.mrt.files.MRTDecodeError`
                  (file + offset context) — the batch replication
                  pipeline's fail-fast mode;
  ``skip``        drop the bad bytes, count them, keep going;
  ``quarantine``  like ``skip``, but also preserve the raw bad bytes in
                  a sidecar file (``<name>.quarantine``) so they can be
                  inspected — or re-decoded once repaired — later.

* :class:`DecodeStats` — per-scan counters (records decoded/skipped,
  bytes skipped/quarantined, resyncs, compressed-stream errors) that
  travel across process-pool workers and surface in ``/metrics``.

* :class:`ResilientReader` — a streaming raw-record iterator with
  **header resync**: after garbage or a torn record it scans forward for
  the next plausible MRT common header (known type/subtype pair, sane
  timestamp, bounded length) and resumes there, so one flipped byte
  costs one record, not the rest of the file.

* :class:`QuarantineWriter` / :func:`read_quarantine` — the sidecar
  format: a small framed binary file of ``(stream_offset, raw bytes)``
  chunks, where offsets address the *decompressed* MRT stream.
"""

from __future__ import annotations

import gzip
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.mrt.bgp4mp import MRTRecordHeader, decode_mrt_header
from repro.mrt.constants import (
    BGP4MP_MESSAGE,
    BGP4MP_MESSAGE_AS4,
    BGP4MP_STATE_CHANGE,
    BGP4MP_STATE_CHANGE_AS4,
    MRT_BGP4MP,
    MRT_TABLE_DUMP_V2,
    TDV2_PEER_INDEX_TABLE,
    TDV2_RIB_IPV4_UNICAST,
    TDV2_RIB_IPV6_UNICAST,
)

__all__ = [
    "ErrorPolicy",
    "DecodeStats",
    "ResilientReader",
    "QuarantineWriter",
    "read_quarantine",
    "quarantine_path",
    "plausible_header",
    "MAX_RECORD_LENGTH",
]

#: Read granularity from the decompressor.  Deliberately small: gzip's
#: reader raises on a truncated stream *without returning* the data it
#: already decompressed for the failing call, so the salvageable prefix
#: of a torn file grows as this shrinks.
_CHUNK = 8 * 1024

#: No real MRT record in an updates archive approaches this; anything
#: larger is treated as a corrupted length field.
MAX_RECORD_LENGTH = 1 << 20

#: Sanity window for the MRT header timestamp (1990..2100).
_TIMESTAMP_MIN = 631_152_000
_TIMESTAMP_MAX = 4_102_444_800

_VALID_SUBTYPES = {
    MRT_BGP4MP: frozenset({BGP4MP_STATE_CHANGE, BGP4MP_MESSAGE,
                           BGP4MP_MESSAGE_AS4, BGP4MP_STATE_CHANGE_AS4}),
    MRT_TABLE_DUMP_V2: frozenset({TDV2_PEER_INDEX_TABLE,
                                  TDV2_RIB_IPV4_UNICAST,
                                  TDV2_RIB_IPV6_UNICAST}),
}

_MRT_HDR = struct.Struct("!IHHI")

#: Quarantine sidecar framing: 5-byte magic+version, then per chunk a
#: ``!QI`` (decompressed stream offset, byte length) frame header.
_QUARANTINE_MAGIC = b"MRTQ\x01"
_CHUNK_HDR = struct.Struct("!QI")

#: Errors the gzip/zlib layer raises on a corrupted compressed stream.
_STREAM_ERRORS = (EOFError, OSError, zlib.error)


class ErrorPolicy:
    """The three containment policies, as validated string constants."""

    STRICT = "strict"
    SKIP = "skip"
    QUARANTINE = "quarantine"

    ALL = (STRICT, SKIP, QUARANTINE)

    @classmethod
    def validate(cls, policy: str) -> str:
        if policy not in cls.ALL:
            raise ValueError(
                f"unknown error policy {policy!r} (expected one of "
                f"{', '.join(cls.ALL)})")
        return policy


@dataclass
class DecodeStats:
    """Counters for one (or many, merged) tolerant decode passes."""

    records_decoded: int = 0
    records_skipped: int = 0
    bytes_skipped: int = 0
    bytes_quarantined: int = 0
    resyncs: int = 0
    stream_errors: int = 0
    files_with_errors: int = 0

    @property
    def clean(self) -> bool:
        """True when no containment action was ever taken."""
        return (self.records_skipped == 0 and self.bytes_skipped == 0
                and self.stream_errors == 0)

    def as_dict(self) -> dict:
        return {
            "records_decoded": self.records_decoded,
            "records_skipped": self.records_skipped,
            "bytes_skipped": self.bytes_skipped,
            "bytes_quarantined": self.bytes_quarantined,
            "resyncs": self.resyncs,
            "stream_errors": self.stream_errors,
            "files_with_errors": self.files_with_errors,
        }

    def merge(self, other: Union["DecodeStats", dict]) -> None:
        """Fold another pass's counters in (accepts the dict form, which
        is how worker processes report back)."""
        payload = other.as_dict() if isinstance(other, DecodeStats) else other
        for key, value in payload.items():
            setattr(self, key, getattr(self, key) + value)


def quarantine_path(data_path: Union[str, Path]) -> Path:
    """Sidecar path for a data file: ``updates.<stamp>.gz.quarantine``."""
    data_path = Path(data_path)
    return data_path.with_name(data_path.name + ".quarantine")


class QuarantineWriter:
    """Append raw bad-byte chunks to a quarantine sidecar.

    The file is created lazily on the first chunk (clean decodes leave
    no sidecar) and truncated when first opened, so re-decoding the same
    file keeps the sidecar idempotent rather than growing it.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle = None
        self.chunks_written = 0
        self.bytes_written = 0

    def add(self, offset: int, raw: bytes) -> None:
        if not raw:
            return
        if self._handle is None:
            self._handle = open(self.path, "wb")
            self._handle.write(_QUARANTINE_MAGIC)
        self._handle.write(_CHUNK_HDR.pack(offset, len(raw)))
        self._handle.write(raw)
        self.chunks_written += 1
        self.bytes_written += len(raw)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_quarantine(path: Union[str, Path]) -> List[Tuple[int, bytes]]:
    """Chunks of a quarantine sidecar as ``(stream_offset, raw bytes)``.

    Raises :class:`ValueError` for files that are not quarantine
    sidecars; tolerates a torn final chunk (crash mid-write) by dropping
    it, in the same spirit as every other reader in this codebase.
    """
    data = Path(path).read_bytes()
    if not data.startswith(_QUARANTINE_MAGIC):
        raise ValueError(f"not a quarantine sidecar: {path}")
    chunks: List[Tuple[int, bytes]] = []
    position = len(_QUARANTINE_MAGIC)
    while position + _CHUNK_HDR.size <= len(data):
        offset, length = _CHUNK_HDR.unpack_from(data, position)
        position += _CHUNK_HDR.size
        if position + length > len(data):
            break  # torn final chunk
        chunks.append((offset, data[position:position + length]))
        position += length
    return chunks


def plausible_header(buffer, offset: int = 0) -> bool:
    """Could ``buffer[offset:offset+12]`` be an MRT common header?

    Used by resync to find the next record boundary after garbage: the
    type/subtype pair must be one we archive, the length bounded, and
    the timestamp inside a sane window.  False positives only cost a
    failed decode (which is itself contained); false negatives only
    cost extra skipped bytes.
    """
    if len(buffer) - offset < 12:
        return False
    timestamp, mrt_type, subtype, length = _MRT_HDR.unpack_from(buffer, offset)
    subtypes = _VALID_SUBTYPES.get(mrt_type)
    if subtypes is None or subtype not in subtypes:
        return False
    if length > MAX_RECORD_LENGTH:
        return False
    return _TIMESTAMP_MIN <= timestamp < _TIMESTAMP_MAX


class ResilientReader:
    """Streaming raw-record reader with per-record error containment.

    Yields ``(stream_offset, header, body)`` like the strict iterator,
    but never raises for corrupt input under ``skip``/``quarantine``:
    implausible headers and torn records trigger a forward scan for the
    next plausible header, the skipped run is counted (and quarantined
    under ``quarantine``), and a corrupted *compressed* stream simply
    ends the file at the last decodable byte.

    The caller reports its own decode failures back through
    :meth:`quarantine_record`, so record-level poison (bad BGP marker,
    truncated attributes) lands in the same sidecar as structural
    garbage — everything needed to replay the file later is in one
    place.
    """

    def __init__(self, path: Union[str, Path],
                 policy: str = ErrorPolicy.SKIP,
                 stats: Optional[DecodeStats] = None,
                 sidecar: Optional[Union[str, Path]] = None):
        self.path = Path(path)
        self.policy = ErrorPolicy.validate(policy)
        if self.policy == ErrorPolicy.STRICT:
            raise ValueError(
                "ResilientReader is the tolerant path; use "
                "iter_raw_records for strict decoding")
        self.stats = stats if stats is not None else DecodeStats()
        self._writer: Optional[QuarantineWriter] = None
        if self.policy == ErrorPolicy.QUARANTINE:
            self._writer = QuarantineWriter(
                sidecar if sidecar is not None else quarantine_path(self.path))
        self._had_errors = False

    # -- sidecar -----------------------------------------------------------

    def _quarantine_bytes(self, offset: int, raw: bytes) -> None:
        self._had_errors = True
        if self._writer is not None:
            self._writer.add(offset, raw)
            self.stats.bytes_quarantined += len(raw)

    def quarantine_record(self, offset: int, header: MRTRecordHeader,
                          body: bytes) -> None:
        """The caller failed to decode this record: count it and (under
        ``quarantine``) preserve its raw bytes."""
        self.stats.records_skipped += 1
        raw = _MRT_HDR.pack(header.timestamp, header.mrt_type,
                            header.subtype, header.length) + body
        self._quarantine_bytes(offset, raw)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            if self._writer.chunks_written == 0:
                # A clean pass invalidates any sidecar left over from an
                # earlier decode of a since-repaired file.
                self._writer.path.unlink(missing_ok=True)

    def __enter__(self) -> "ResilientReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._had_errors:
            self.stats.files_with_errors += 1

    # -- iteration ---------------------------------------------------------

    def iter_raw(self) -> Iterator[Tuple[int, MRTRecordHeader, bytes]]:
        with gzip.open(self.path, "rb") as handle:
            buffer = bytearray()
            base = 0  # decompressed-stream offset of buffer[0]
            eof = False

            def fill(target: int) -> None:
                nonlocal eof
                while not eof and len(buffer) < target:
                    try:
                        chunk = handle.read(_CHUNK)
                    except _STREAM_ERRORS:
                        # Corrupted compressed stream: whatever already
                        # decompressed is all this file will yield.
                        self.stats.stream_errors += 1
                        self._had_errors = True
                        eof = True
                        return
                    if not chunk:
                        eof = True
                    else:
                        buffer.extend(chunk)

            def discard(count: int) -> None:
                """Drop ``count`` leading bytes as a skipped run."""
                nonlocal base
                self.stats.bytes_skipped += count
                self._quarantine_bytes(base, bytes(buffer[:count]))
                del buffer[:count]
                base += count

            while True:
                fill(12)
                if not buffer:
                    return
                if plausible_header(buffer):
                    header = decode_mrt_header(bytes(buffer[:12]))
                    fill(12 + header.length)
                    if len(buffer) >= 12 + header.length:
                        body = bytes(buffer[12:12 + header.length])
                        offset = base
                        del buffer[:12 + header.length]
                        base = offset + 12 + header.length
                        yield offset, header, body
                        continue
                    # Torn record (or a corrupted length field that ran
                    # past EOF): fall through to resync, which scans the
                    # remainder for any later record boundary.
                # Resync: scan forward for the next plausible header.
                self.stats.resyncs += 1
                position = 1
                while True:
                    fill(position + 12)
                    if len(buffer) < position + 12:
                        discard(len(buffer))
                        return
                    if plausible_header(buffer, position):
                        discard(position)
                        break
                    position += 1
