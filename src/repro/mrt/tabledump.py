"""TABLE_DUMP_V2 codec: 8-hourly RIB snapshots ("bview" files).

A :class:`RibDump` is the in-memory form of one snapshot: the peer index
of a collector plus, for every prefix, the list of peers holding a route
and the attributes of that route.  The lifespan analysis
(:mod:`repro.core.lifespan`) consumes a time series of these.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.bgp.attributes import PathAttributes
from repro.mrt.attr_codec import decode_attributes, encode_attributes
from repro.mrt.bgp4mp import decode_mrt_header, encode_mrt_record
from repro.mrt.constants import (
    MRT_TABLE_DUMP_V2,
    PEER_TYPE_AS4,
    PEER_TYPE_IPV6,
    TDV2_PEER_INDEX_TABLE,
    TDV2_RIB_IPV4_UNICAST,
    TDV2_RIB_IPV6_UNICAST,
)
from repro.net.prefix import AFI_IPV4, AFI_IPV6, Prefix

__all__ = ["RibPeer", "RibEntry", "RibDump", "encode_rib_dump", "decode_rib_dump"]


@dataclass(frozen=True)
class RibPeer:
    """One peer in the PEER_INDEX_TABLE."""

    asn: int
    address: str

    @property
    def is_ipv6(self) -> bool:
        return ipaddress.ip_address(self.address).version == 6


@dataclass(frozen=True)
class RibEntry:
    """One route within a prefix's RIB record."""

    peer_index: int
    originated_time: int
    attributes: PathAttributes


@dataclass
class RibDump:
    """A full RIB snapshot of one collector at one instant."""

    timestamp: int
    collector: str
    peers: list[RibPeer] = field(default_factory=list)
    entries: dict[Prefix, list[RibEntry]] = field(default_factory=dict)

    def peer_index(self, asn: int, address: str) -> int:
        """Index of a peer, adding it to the table if new."""
        peer = RibPeer(asn, address)
        try:
            return self.peers.index(peer)
        except ValueError:
            self.peers.append(peer)
            return len(self.peers) - 1

    def add_route(self, prefix: Prefix, peer_asn: int, peer_address: str,
                  attributes: PathAttributes, originated_time: int) -> None:
        """Record that ``peer`` holds a route for ``prefix``."""
        index = self.peer_index(peer_asn, peer_address)
        self.entries.setdefault(prefix, []).append(
            RibEntry(index, originated_time, attributes))

    def routes_for(self, prefix: Prefix) -> list[tuple[RibPeer, RibEntry]]:
        """(peer, entry) pairs holding ``prefix`` in this snapshot."""
        return [(self.peers[entry.peer_index], entry)
                for entry in self.entries.get(prefix, [])]

    def peers_holding(self, prefix: Prefix) -> set[tuple[int, str]]:
        """(asn, address) of peers with a route for ``prefix``."""
        return {(self.peers[e.peer_index].asn, self.peers[e.peer_index].address)
                for e in self.entries.get(prefix, [])}


def _encode_peer_index(dump: RibDump) -> bytes:
    body = bytearray()
    body += struct.pack("!I", 0)  # collector BGP ID (unused)
    name = dump.collector.encode()
    body += struct.pack("!H", len(name)) + name
    body += struct.pack("!H", len(dump.peers))
    for peer in dump.peers:
        ip = ipaddress.ip_address(peer.address)
        peer_type = PEER_TYPE_AS4 | (PEER_TYPE_IPV6 if ip.version == 6 else 0)
        body += bytes([peer_type]) + struct.pack("!I", 0) + ip.packed
        body += struct.pack("!I", peer.asn)
    return encode_mrt_record(dump.timestamp, MRT_TABLE_DUMP_V2,
                             TDV2_PEER_INDEX_TABLE, bytes(body))


def encode_rib_dump(dump: RibDump) -> bytes:
    """Serialise a snapshot: PEER_INDEX_TABLE then one record per prefix."""
    out = bytearray(_encode_peer_index(dump))
    sequence = 0
    for prefix in sorted(dump.entries.keys()):
        subtype = (TDV2_RIB_IPV4_UNICAST if prefix.is_ipv4
                   else TDV2_RIB_IPV6_UNICAST)
        body = bytearray(struct.pack("!I", sequence))
        body += prefix.wire_bytes()
        routes = dump.entries[prefix]
        body += struct.pack("!H", len(routes))
        for entry in routes:
            attr_bytes = encode_attributes(entry.attributes, rib_entry=True)
            body += struct.pack("!HIH", entry.peer_index,
                                entry.originated_time, len(attr_bytes))
            body += attr_bytes
        out += encode_mrt_record(dump.timestamp, MRT_TABLE_DUMP_V2, subtype,
                                 bytes(body))
        sequence += 1
    return bytes(out)


def _decode_peer_index(body: bytes) -> tuple[str, list[RibPeer]]:
    offset = 4  # skip collector BGP ID
    (name_len,) = struct.unpack_from("!H", body, offset)
    offset += 2
    collector = body[offset:offset + name_len].decode()
    offset += name_len
    (count,) = struct.unpack_from("!H", body, offset)
    offset += 2
    peers: list[RibPeer] = []
    for _ in range(count):
        peer_type = body[offset]
        offset += 1 + 4  # type + BGP ID
        addr_len = 16 if peer_type & PEER_TYPE_IPV6 else 4
        address = str(ipaddress.ip_address(body[offset:offset + addr_len]))
        offset += addr_len
        if peer_type & PEER_TYPE_AS4:
            (asn,) = struct.unpack_from("!I", body, offset)
            offset += 4
        else:
            (asn,) = struct.unpack_from("!H", body, offset)
            offset += 2
        peers.append(RibPeer(asn, address))
    return collector, peers


def decode_rib_dump(data: bytes) -> RibDump:
    """Parse a full bview byte blob back into a :class:`RibDump`."""
    offset = 0
    dump: Optional[RibDump] = None
    while offset < len(data):
        header = decode_mrt_header(data, offset)
        body = data[offset + 12:offset + 12 + header.length]
        offset += 12 + header.length
        if header.mrt_type != MRT_TABLE_DUMP_V2:
            raise ValueError(f"unexpected MRT type {header.mrt_type} in RIB dump")
        if header.subtype == TDV2_PEER_INDEX_TABLE:
            collector, peers = _decode_peer_index(body)
            dump = RibDump(header.timestamp, collector, peers)
            continue
        if dump is None:
            raise ValueError("RIB record before PEER_INDEX_TABLE")
        if header.subtype not in (TDV2_RIB_IPV4_UNICAST, TDV2_RIB_IPV6_UNICAST):
            raise ValueError(f"unsupported TABLE_DUMP_V2 subtype {header.subtype}")
        afi = (AFI_IPV4 if header.subtype == TDV2_RIB_IPV4_UNICAST else AFI_IPV6)
        pos = 4  # skip sequence number
        prefix, consumed = Prefix.from_wire(body[pos:], afi)
        pos += consumed
        (count,) = struct.unpack_from("!H", body, pos)
        pos += 2
        entries: list[RibEntry] = []
        for _ in range(count):
            peer_index, originated, attr_len = struct.unpack_from("!HIH", body, pos)
            pos += 8
            decoded = decode_attributes(body[pos:pos + attr_len], rib_entry=True)
            pos += attr_len
            entries.append(RibEntry(peer_index, originated,
                                    decoded.to_path_attributes()))
        dump.entries[prefix] = entries
    if dump is None:
        raise ValueError("empty RIB dump")
    return dump
