"""Network-layer primitives: prefixes and ASNs."""

from repro.net.asn import ASInfo, WELL_KNOWN_ASES, asdot, is_private_asn, validate_asn
from repro.net.prefix import AFI_IPV4, AFI_IPV6, Prefix

__all__ = [
    "AFI_IPV4",
    "AFI_IPV6",
    "Prefix",
    "ASInfo",
    "WELL_KNOWN_ASES",
    "asdot",
    "is_private_asn",
    "validate_asn",
]
