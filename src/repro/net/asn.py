"""Autonomous System Number helpers.

ASNs are plain ``int`` throughout the library; this module centralises
validation, formatting (asdot), and the registry of real-world ASes named
by the paper so experiment code can refer to them symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["validate_asn", "asdot", "ASInfo", "WELL_KNOWN_ASES"]

AS_TRANS = 23456
MAX_ASN = 2 ** 32 - 1


def validate_asn(asn: int) -> int:
    """Return ``asn`` unchanged if it is a valid 4-byte ASN; raise otherwise."""
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise TypeError(f"ASN must be an int, got {type(asn).__name__}")
    if not 0 <= asn <= MAX_ASN:
        raise ValueError(f"ASN {asn} out of range [0, {MAX_ASN}]")
    return asn


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs."""
    return 64512 <= asn <= 65534 or 4200000000 <= asn <= 4294967294


def asdot(asn: int) -> str:
    """Render an ASN in asdot notation (RFC 5396)."""
    validate_asn(asn)
    if asn < 65536:
        return str(asn)
    return f"{asn >> 16}.{asn & 0xFFFF}"


@dataclass(frozen=True)
class ASInfo:
    """Descriptive metadata for an AS referenced in the paper."""

    asn: int
    name: str
    country: str
    role: str


#: ASes the paper names explicitly; the synthetic topology reuses these
#: numbers so reproduced case studies print the same AS paths as the paper.
WELL_KNOWN_ASES: dict[int, ASInfo] = {
    210312: ASInfo(210312, "Beacon origin (personal AS)", "GR", "origin"),
    8298: ASInfo(8298, "IPng Networks", "CH", "upstream"),
    25091: ASInfo(25091, "IP-Max SA", "CH", "upstream"),
    4637: ASInfo(4637, "Telstra Global", "HK", "tier2-resurrector"),
    1299: ASInfo(1299, "Arelion (Telia)", "SE", "tier1"),
    3356: ASInfo(3356, "Lumen (Level3)", "US", "tier1"),
    6939: ASInfo(6939, "Hurricane Electric", "US", "tier1-ish"),
    33891: ASInfo(33891, "Core-Backbone GmbH", "DE", "tier2-zombie-cause"),
    9304: ASInfo(9304, "HGC Global Communications", "HK", "zombie-cause"),
    17639: ASInfo(17639, "Converge ICT", "PH", "zombie-peer"),
    142271: ASInfo(142271, "Zombie peer AS", "HK", "zombie-peer"),
    43100: ASInfo(43100, "Transit AS", "UA", "transit"),
    34549: ASInfo(34549, "meerfarbig GmbH", "DE", "transit"),
    12956: ASInfo(12956, "Telefonica", "ES", "tier1"),
    10429: ASInfo(10429, "Telefonica Data BR", "BR", "transit"),
    28598: ASInfo(28598, "Brazil transit AS", "BR", "transit"),
    61573: ASInfo(61573, "IP Carrier (resurrection peer)", "BR", "peer"),
    207301: ASInfo(207301, "35-37 day zombie peer", "DE", "peer"),
    211380: ASInfo(211380, "SIMULHOST-AS Simulhost Limited", "GB", "noisy-peer"),
    211509: ASInfo(211509, "Rudakov Ihor", "UA", "noisy-peer"),
    16347: ASInfo(16347, "Inherent Adista SAS", "FR", "noisy-peer-2018"),
}
