"""IP prefix primitives.

A thin, hashable wrapper over :mod:`ipaddress` networks that adds the
operations the zombie pipeline needs: family tagging, containment tests,
wire encoding for MRT, and the "BGP clock" text round-trips used by the
beacon prefix codecs.
"""

from __future__ import annotations

import ipaddress
from functools import total_ordering
from typing import Union

__all__ = ["Prefix", "AFI_IPV4", "AFI_IPV6"]

AFI_IPV4 = 1
AFI_IPV6 = 2

_Network = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


@total_ordering
class Prefix:
    """An immutable IPv4/IPv6 prefix.

    >>> p = Prefix("2a0d:3dc1:1145::/48")
    >>> p.afi == AFI_IPV6
    True
    >>> Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))
    True
    """

    __slots__ = ("_network",)

    def __init__(self, text: Union[str, _Network, "Prefix"]):
        if isinstance(text, Prefix):
            self._network = text._network
        elif isinstance(text, (ipaddress.IPv4Network, ipaddress.IPv6Network)):
            self._network = text
        else:
            self._network = ipaddress.ip_network(text, strict=True)

    @property
    def network(self) -> _Network:
        """The wrapped :mod:`ipaddress` network object."""
        return self._network

    @property
    def afi(self) -> int:
        """Address Family Identifier: 1 for IPv4, 2 for IPv6."""
        return AFI_IPV4 if self._network.version == 4 else AFI_IPV6

    @property
    def is_ipv4(self) -> bool:
        return self._network.version == 4

    @property
    def is_ipv6(self) -> bool:
        return self._network.version == 6

    @property
    def prefixlen(self) -> int:
        return self._network.prefixlen

    @property
    def network_address(self) -> str:
        return str(self._network.network_address)

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if self.afi != other.afi:
            return False
        return other._network.subnet_of(self._network)

    def packed(self) -> bytes:
        """Full-width network address bytes (4 or 16 bytes)."""
        return self._network.network_address.packed

    def wire_bytes(self) -> bytes:
        """NLRI encoding: length octet + minimal prefix bytes (RFC 4271)."""
        nbytes = (self.prefixlen + 7) // 8
        return bytes([self.prefixlen]) + self.packed()[:nbytes]

    @classmethod
    def from_wire(cls, data: bytes, afi: int) -> tuple["Prefix", int]:
        """Decode one NLRI entry; returns (prefix, bytes consumed)."""
        if not data:
            raise ValueError("empty NLRI buffer")
        plen = data[0]
        nbytes = (plen + 7) // 8
        width = 4 if afi == AFI_IPV4 else 16
        if plen > width * 8:
            raise ValueError(f"prefix length {plen} too large for AFI {afi}")
        if len(data) < 1 + nbytes:
            raise ValueError("truncated NLRI entry")
        raw = data[1:1 + nbytes] + b"\x00" * (width - nbytes)
        addr = ipaddress.ip_address(raw)
        network = ipaddress.ip_network(f"{addr}/{plen}", strict=False)
        return cls(network), 1 + nbytes

    def __str__(self) -> str:
        return str(self._network)

    def __repr__(self) -> str:
        return f"Prefix({str(self._network)!r})"

    def __hash__(self) -> int:
        return hash(self._network)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._network == other._network
        if isinstance(other, str):
            return str(self._network) == other
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        # v4 sorts before v6; within a family sort by address then length.
        key_self = (self._network.version, int(self._network.network_address),
                    self._network.prefixlen)
        key_other = (other._network.version, int(other._network.network_address),
                     other._network.prefixlen)
        return key_self < key_other
