"""The zombie observatory: a long-running detection service.

The paper's §6 closes with the vision of an operator platform that
watches the RIS stream continuously.  This package is that platform in
miniature:

* :mod:`repro.observatory.ingest` tails an on-disk archive through the
  indexed read path, feeds the streaming detector / resurrection monitor
  / lifespan session, and checkpoints everything so a restarted process
  resumes exactly where it left off;
* :mod:`repro.observatory.store` is the durable, append-only event
  store the ingest writes and the query layer reads;
* :mod:`repro.observatory.colseg` is the sealed binary columnar
  segment format ``observatory compact --format=columnar`` rewrites
  history into: per-kind column groups, mmap reads, per-column min/max
  pruning (DESIGN.md §13);
* :mod:`repro.observatory.server` / :mod:`repro.observatory.client`
  expose the store over a JSON HTTP API with Prometheus-style metrics,
  ETag/304 revalidation, and cursor pagination;
* :mod:`repro.observatory.stream` /
  :mod:`repro.observatory.asyncserver` are the push side: an asyncio
  HTTP server (the default ``observatory serve`` engine) whose
  ``/stream/*`` SSE endpoints tail the store live, with resume tokens,
  a shared fan-out hub, and drop-to-cursor backpressure (DESIGN.md
  §14);
* :mod:`repro.observatory.views` keeps the query-side materialized
  views (latest lifespan per prefix, per-prefix event counts, merged
  resurrection timeline) fresh incrementally off the store's
  ``(generation, next_seq)`` watermark;
* :mod:`repro.observatory.supervisor` wraps the ingest in a watchdog
  that restarts it from the last checkpoint across crashes and exposes
  a healthy/degraded/stalled state machine;
* :mod:`repro.observatory.doctor` is the store fsck behind
  ``observatory doctor``: torn/bit-rotted/orphaned segment detection
  and manifest repair;
* :mod:`repro.observatory.fleet` /
  :mod:`repro.observatory.federation` shard the store by prefix over a
  supervised worker fleet and scatter-gather queries across it with
  per-shard deadlines, retries, circuit breakers, and explicit partial
  results (DESIGN.md §15);
* :mod:`repro.observatory.synthetic` builds a small scripted campaign
  archive so the whole loop can be exercised without real RIS data.
"""

from repro.observatory.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.observatory.client import (
    ObservatoryClient,
    ObservatoryError,
    ObservatoryProtocolError,
    ObservatoryUnreachable,
)
from repro.observatory.asyncserver import (
    AsyncHTTPTransport,
    AsyncObservatoryServer,
)
from repro.observatory.colseg import ColsegError, ColumnarSegment
from repro.observatory.doctor import FsckReport, fsck, fsck_fleet
from repro.observatory.federation import (
    PARTIAL_HEADER,
    CircuitBreaker,
    FederatedObservatoryServer,
)
from repro.observatory.fleet import (
    ShardFleet,
    ShardWorker,
    partition_store,
    shard_for,
)
from repro.observatory.forensics import (
    LastAnnouncementRing,
    outbreak_id,
    outbreak_prefix,
    render_forensics,
)
from repro.observatory.ingest import ObservatoryIngest
from repro.observatory.server import ObservatoryApp, ObservatoryServer
from repro.observatory.store import EventStore, file_sha256
from repro.observatory.supervisor import ObservatorySupervisor
from repro.observatory.synthetic import (
    SyntheticScenario,
    build_synthetic_archive,
    load_scenario,
)
from repro.observatory.stream import StreamHub, StreamStats
from repro.observatory.views import MaterializedViews

__all__ = [
    "AsyncHTTPTransport",
    "AsyncObservatoryServer",
    "CHECKPOINT_VERSION",
    "CircuitBreaker",
    "ColsegError",
    "ColumnarSegment",
    "EventStore",
    "FederatedObservatoryServer",
    "FsckReport",
    "LastAnnouncementRing",
    "MaterializedViews",
    "ObservatoryApp",
    "ObservatoryClient",
    "ObservatoryError",
    "ObservatoryIngest",
    "ObservatoryProtocolError",
    "ObservatorySupervisor",
    "ObservatoryUnreachable",
    "ObservatoryServer",
    "PARTIAL_HEADER",
    "ShardFleet",
    "ShardWorker",
    "StreamHub",
    "StreamStats",
    "SyntheticScenario",
    "build_synthetic_archive",
    "file_sha256",
    "fsck",
    "fsck_fleet",
    "load_checkpoint",
    "load_scenario",
    "outbreak_id",
    "outbreak_prefix",
    "partition_store",
    "render_forensics",
    "save_checkpoint",
    "shard_for",
]
