"""The asyncio observatory server: one selector loop, many streams.

This is the default serve path (``observatory serve``); the threaded
server (:class:`repro.observatory.server.ObservatoryServer`) remains as
``--engine threaded``.  Both are thin transports over the same
:class:`repro.observatory.server.ObservatoryApp`, so every data
endpoint — bodies, ETags, 304s, pagination, ``/metrics`` — is identical
by construction; the parity tests assert it anyway.

Why asyncio: the threaded server pays a thread per connection, which
caps plain-query concurrency around the ~294 req/s ceiling recorded in
``BENCH_query.json`` and makes ten thousand idle SSE subscribers ten
thousand idle threads.  Here a connection is a coroutine: data requests
are parsed on the loop, answered through ``ObservatoryApp.respond`` on
a small executor-thread pool (store reads are blocking file I/O), and
written back with HTTP/1.1 keep-alive — repeat queries skip the
connect + thread-spawn tax entirely.  Streams never touch the executor
pool after catch-up: they wait on their hub queue.

The transport half lives in :class:`AsyncHTTPTransport` — lifecycle,
the connection loop, head parsing, graceful drain and signal handling —
with a single ``_dispatch`` hook per request.  The federated query tier
(:mod:`repro.observatory.federation`) reuses it unchanged; this module
adds the ``ObservatoryApp`` dispatch plus SSE streaming on top.

Shutdown is graceful by contract (SIGTERM or ``stop()``): the listener
closes first (no new connections), every in-flight request finishes,
SSE subscribers get a final ``: shutdown`` comment frame, and only
connections still busy after ``drain_timeout`` are cancelled.  The old
behaviour — cancel every connection task immediately — could kill a
response mid-write.

``/stream/outbreaks``, ``/stream/resurrections`` and ``/stream/events``
serve Server-Sent Events that tail the event store by ``seq``:

* a single :class:`repro.observatory.stream.StreamHub` task polls the
  store once per interval and fans new events into every subscriber's
  bounded queue (one store reader for N subscribers);
* each subscriber holds a cursor — the next seq it owes its client —
  and replays ``[cursor, tail)`` straight from the store before joining
  the live feed, so ``?from_seq=0`` streams the entire history and then
  keeps going;
* ``Last-Event-ID`` (or ``?cursor=``) carries the
  ``"<generation>:<next_seq>"`` resume token from
  :mod:`repro.observatory.stream`, so a reconnecting subscriber resumes
  exactly where it stopped, across server restarts; a token from
  another generation gets an ``event: reset`` frame instead of silently
  rewritten history;
* a slow consumer's TCP backpressure (small write buffer + ``drain()``)
  stops its coroutine, its queue overflows, and the hub drops it *to
  its cursor*: it re-reads the missed span from the store and rejoins —
  lag costs a re-read, never a lost or duplicated event.
"""

from __future__ import annotations

import asyncio
import http.client
import signal
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.observatory.server import ObservatoryApp, _BadRequest
from repro.observatory.store import EventStore
from repro.observatory.stream import (
    RESET,
    StreamHub,
    StreamStats,
    Subscription,
    TokenError,
    format_comment,
    format_event,
    format_reset,
    parse_token,
)

__all__ = ["AsyncHTTPTransport", "AsyncObservatoryServer", "STREAM_PATHS"]

#: Stream endpoint -> event-kind filter (``None`` = every kind).
STREAM_PATHS: dict[str, Optional[tuple[str, ...]]] = {
    "/stream/events": None,
    "/stream/outbreaks": ("outbreak",),
    "/stream/resurrections": ("resurrection",),
}


def _first(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[0] if values else None


class AsyncHTTPTransport:
    """Asyncio GET-only HTTP/1.1 transport with graceful shutdown.

    Subclasses implement ``async _dispatch(path, params, headers,
    writer, keep_alive) -> bool`` (the return value decides whether the
    connection loop continues) plus the optional ``_on_startup`` /
    ``_on_cleanup`` hooks, which run inside the event loop before the
    listener opens and after it drains.

    Lifecycle mirrors the threaded server exactly — ``start()`` runs
    the loop on a daemon thread (ephemeral ``port=0`` readable back
    after start), ``serve_forever()`` blocks in the foreground and
    installs SIGTERM/SIGINT handlers for a graceful exit, ``stop()`` is
    thread-safe — so the CLI, the supervisor and every test can swap
    engines without touching anything else.

    Shutdown sequence: close the listener, set ``_draining`` (the
    connection loop stops accepting follow-up keep-alive requests and
    SSE tails wind down with a final frame), wait up to
    ``drain_timeout`` seconds for in-flight connections, cancel
    whatever is still stuck.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 drain_timeout: float = 5.0, write_buffer: int = 1 << 16):
        self.drain_timeout = drain_timeout
        self.write_buffer = write_buffer
        self._requested = (host, port)
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._draining: Optional[asyncio.Event] = None
        self._connections: set[asyncio.Task] = set()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- counters (real implementations live in the app mixin) ------------

    def count_request(self) -> None:
        pass

    def count_dropped_response(self) -> None:
        pass

    # -- lifecycle hooks ---------------------------------------------------

    async def _on_startup(self) -> None:
        pass

    async def _on_cleanup(self) -> None:
        pass

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        assert self._host is not None, "server not started"
        return self._host

    @property
    def port(self) -> int:
        assert self._port is not None, "server not started"
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncHTTPTransport":
        """Run the event loop on a daemon thread; returns self."""
        self._thread = threading.Thread(target=self._run_loop,
                                        name="observatory-async", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("async observatory server failed to start")
        if self._startup_error is not None:
            raise RuntimeError("async observatory server failed to start"
                               ) from self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self._startup_error = exc
        finally:
            self._started.set()

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Blocking serve (the CLI foreground mode).  SIGTERM/SIGINT
        trigger the graceful drain and this returns normally — the CLI
        exits 0."""
        asyncio.run(self._main(
            install_signal_handlers=install_signal_handlers))

    def stop(self) -> None:
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop shut down in the meantime
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    async def _main(self, install_signal_handlers: bool = False) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._draining = asyncio.Event()
        await self._on_startup()
        server = await asyncio.start_server(self._on_connection,
                                            *self._requested)
        installed: list[int] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._shutdown.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        sockname = server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                self._loop.remove_signal_handler(signum)
            # Graceful drain: stop accepting, let in-flight requests
            # finish (SSE tails see _draining and send a final frame),
            # cancel only what is still stuck after the timeout.
            server.close()
            await server.wait_closed()
            self._draining.set()
            if self._connections:
                await asyncio.wait(set(self._connections),
                                   timeout=self.drain_timeout)
            for task in list(self._connections):
                task.cancel()
            await self._on_cleanup()
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)

    # -- connection handling ----------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            writer.transport.set_write_buffer_limits(high=self.write_buffer)
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            self.count_dropped_response()
        except asyncio.CancelledError:
            # Shutdown is the only canceller; ending cleanly here keeps
            # the StreamReaderProtocol done-callback from re-raising.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _next_head(self, reader: asyncio.StreamReader
                         ) -> Optional[bytes]:
        """The next request head, or ``None`` once draining begins with
        no request in flight on this connection.  A head that completes
        in the cancellation race is rescued, not dropped — the request
        was received and will be answered before the connection dies."""
        assert self._draining is not None
        read_task = asyncio.ensure_future(reader.readuntil(b"\r\n\r\n"))
        drain_task = asyncio.ensure_future(self._draining.wait())
        try:
            await asyncio.wait({read_task, drain_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            drain_task.cancel()
        if read_task.done():
            return read_task.result()
        read_task.cancel()
        try:
            return await read_task
        except asyncio.CancelledError:
            return None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        assert self._draining is not None
        while True:
            try:
                head = await self._next_head(reader)
            except asyncio.IncompleteReadError:
                return  # client closed (or sent nothing) between requests
            except asyncio.LimitOverrunError:
                await self._send_error(writer, 431,
                                       "request header section too large")
                return
            if head is None:
                return  # draining, connection idle
            try:
                method, target, version, headers = self._parse_head(head)
            except ValueError as exc:
                await self._send_error(writer, 400, f"malformed request: "
                                                    f"{exc}")
                return
            if method != "GET":
                await self._send_error(writer, 405,
                                       f"method not allowed: {method}")
                return
            url = urlsplit(target)
            params = parse_qs(url.query)
            keep_alive = (version == "HTTP/1.1"
                          and headers.get("connection", "").lower() != "close")
            keep_alive = await self._dispatch(url.path, params, headers,
                                              writer, keep_alive)
            if not keep_alive or self._draining.is_set():
                return

    async def _dispatch(self, path: str, params: dict,
                        headers: dict[str, str],
                        writer: asyncio.StreamWriter,
                        keep_alive: bool) -> bool:
        raise NotImplementedError

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]]:
        """Parse one request head into (method, target, version, headers);
        header names are lower-cased, later duplicates win (none of the
        headers this server reads are list-valued in practice)."""
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {lines[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"bad header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    @staticmethod
    def _write_head(writer: asyncio.StreamWriter, status: int,
                    headers: list[tuple[str, str]], keep_alive: bool) -> None:
        reason = http.client.responses.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines += [f"{name}: {value}" for name, value in headers]
        lines.append("Connection: " + ("keep-alive" if keep_alive
                                       else "close"))
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    async def _send_error(self, writer: asyncio.StreamWriter, status: int,
                          message: str) -> None:
        status, headers, payload = ObservatoryApp._json_response(
            status, {"error": message})
        self._write_head(writer, status, headers, keep_alive=False)
        writer.write(payload)
        await writer.drain()


class AsyncObservatoryServer(ObservatoryApp, AsyncHTTPTransport):
    """Asyncio transport over :class:`ObservatoryApp` + SSE streaming.

    Tuning knobs (all with production-shaped defaults): ``poll_interval``
    is the hub's store-poll cadence and therefore the floor on
    append-to-deliver latency; ``queue_events`` bounds each subscriber's
    live queue (overflow = drop-to-cursor); ``heartbeat`` spaces SSE
    keepalive comments; ``write_buffer`` caps the per-connection kernel
    send buffer so slow consumers backpressure instead of growing heap;
    ``drain_timeout`` bounds the graceful-shutdown wait for in-flight
    connections.
    """

    def __init__(self, store: EventStore, host: str = "127.0.0.1",
                 port: int = 0, ingest=None, archive=None, supervisor=None,
                 use_view: bool = True, poll_interval: float = 0.05,
                 queue_events: int = 256, heartbeat: float = 15.0,
                 write_buffer: int = 1 << 16, batch_events: int = 1024,
                 drain_timeout: float = 5.0):
        ObservatoryApp.__init__(self, store, ingest=ingest, archive=archive,
                                supervisor=supervisor, use_view=use_view)
        AsyncHTTPTransport.__init__(self, host=host, port=port,
                                    drain_timeout=drain_timeout,
                                    write_buffer=write_buffer)
        self.stream_stats = StreamStats()
        self.poll_interval = poll_interval
        self.queue_events = queue_events
        self.heartbeat = heartbeat
        self.batch_events = batch_events
        self.hub: Optional[StreamHub] = None
        self._watcher: Optional[asyncio.Task] = None

    # -- transport hooks ---------------------------------------------------

    async def _on_startup(self) -> None:
        self.hub = StreamHub(self.store, self.stream_stats,
                             poll_interval=self.poll_interval,
                             batch_events=self.batch_events)
        self._watcher = asyncio.create_task(self.hub.run())

    async def _on_cleanup(self) -> None:
        if self._watcher is not None:
            self._watcher.cancel()
            await asyncio.gather(self._watcher, return_exceptions=True)
            self._watcher = None

    async def _dispatch(self, path: str, params: dict,
                        headers: dict[str, str],
                        writer: asyncio.StreamWriter,
                        keep_alive: bool) -> bool:
        if path in STREAM_PATHS:
            self.count_request()
            await self._serve_stream(writer, path, params, headers)
            return False  # streams end with the connection
        loop = asyncio.get_running_loop()
        status, response_headers, payload = await loop.run_in_executor(
            None, self.respond, path, params, headers.get("if-none-match"))
        self._write_head(writer, status, response_headers, keep_alive)
        writer.write(payload)
        await writer.drain()
        return keep_alive

    # -- SSE streaming ----------------------------------------------------

    async def _serve_stream(self, writer: asyncio.StreamWriter, path: str,
                            params: dict, headers: dict[str, str]) -> None:
        """One subscriber: validate, replay, then tail the hub.

        The subscriber's cursor is the single source of exactly-once
        delivery: catch-up replays ``[cursor, position)`` from the
        store, the live phase skips queue entries below the cursor
        (overlap from the attach race) and advances it past everything
        it considers — so a lag drop, which discards the queue and
        re-enters catch-up at the cursor, can neither lose nor repeat
        an event.

        A draining server ends the stream cleanly: the tail loop exits,
        a final ``: shutdown`` comment frame tells the client this was
        a deliberate goodbye (its resume token still works against the
        restarted server), and the connection closes.
        """
        assert self._draining is not None
        kinds = STREAM_PATHS[path]
        loop = asyncio.get_running_loop()
        raw_token = headers.get("last-event-id") or _first(params, "cursor")
        try:
            from_seq = self._from_seq(params)
            token = parse_token(raw_token) if raw_token is not None else None
        except (TokenError, _BadRequest) as exc:
            await self._send_error(writer, 400, str(exc))
            return
        generation, next_seq = await loop.run_in_executor(
            None, self.store.position)
        reset_first = False
        if token is not None:
            if token[0] == generation and token[1] <= next_seq:
                cursor = token[1]
            else:
                # Another generation (history rewritten while the
                # subscriber was away) or a position the store never
                # reached: re-sync rather than guess.
                reset_first = True
                cursor = next_seq
        elif from_seq is not None:
            cursor = min(from_seq, next_seq)
        else:
            cursor = next_seq  # no token: live tail only
        self._write_head(writer, 200, [
            ("Content-Type", "text/event-stream"),
            ("Cache-Control", "no-cache")], keep_alive=False)
        if reset_first:
            writer.write(format_reset(generation, next_seq))
            self.stream_stats.resets += 1
        await writer.drain()
        assert self.hub is not None
        self.stream_stats.subscribers += 1
        try:
            while not self._draining.is_set():
                subscription = Subscription(self.queue_events)
                self.hub.attach(subscription)
                try:
                    generation, cursor = await self._catch_up(
                        writer, kinds, generation, cursor)
                    generation, cursor = await self._tail_live(
                        writer, subscription, kinds, generation, cursor)
                finally:
                    self.hub.detach(subscription)
                # Lagged: the queue overflowed while this consumer was
                # slow.  Its cursor still names the next event it owes,
                # so loop back into catch-up — drop-to-cursor.
            writer.write(format_comment("shutdown"))
            await writer.drain()
        finally:
            self.stream_stats.subscribers -= 1

    @staticmethod
    def _from_seq(params: dict) -> Optional[int]:
        raw = _first(params, "from_seq")
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise _BadRequest("parameter 'from_seq' must be an integer")
        if value < 0:
            raise _BadRequest("parameter 'from_seq' must be >= 0")
        return value

    def _read_stream_batch(self, min_seq: int, stop_seq: int,
                           kinds: Optional[tuple[str, ...]]
                           ) -> tuple[list[dict[str, Any]], int]:
        """Executor helper: up to ``batch_events`` matching events in
        ``[min_seq, stop_seq)`` plus the cursor after them.  The cursor
        jumps to ``stop_seq`` when the span is exhausted even if no
        event matched the kind filter — filtered-out events are
        *considered*, not owed."""
        batch: list[dict[str, Any]] = []
        cursor = stop_seq
        for event in self.store.events(kinds=kinds, min_seq=min_seq):
            if event["seq"] >= stop_seq:
                break
            batch.append(event)
            if len(batch) >= self.batch_events:
                cursor = event["seq"] + 1
                break
        return batch, cursor

    async def _catch_up(self, writer: asyncio.StreamWriter,
                        kinds: Optional[tuple[str, ...]],
                        generation: int, cursor: int) -> tuple[int, int]:
        """Replay ``[cursor, position)`` from the store, in batches."""
        assert self._draining is not None
        loop = asyncio.get_running_loop()
        while not self._draining.is_set():
            current, stop = await loop.run_in_executor(
                None, self.store.position)
            if current != generation:
                writer.write(format_reset(current, stop))
                self.stream_stats.resets += 1
                await writer.drain()
                return current, stop
            if cursor >= stop:
                return generation, cursor
            batch, cursor = await loop.run_in_executor(
                None, self._read_stream_batch, cursor, stop, kinds)
            for event in batch:
                writer.write(format_event(event, generation))
                self.stream_stats.events_sent += 1
            await writer.drain()
        return generation, cursor

    async def _tail_live(self, writer: asyncio.StreamWriter,
                         subscription: Subscription,
                         kinds: Optional[tuple[str, ...]],
                         generation: int, cursor: int) -> tuple[int, int]:
        """Consume the hub queue until this subscriber lags or the
        server starts draining (queue entries already delivered by the
        hub are flushed to the client before the stream winds down)."""
        assert self._draining is not None
        drain_task = asyncio.ensure_future(self._draining.wait())
        try:
            while not subscription.lagged:
                get_task = asyncio.ensure_future(subscription.queue.get())
                await asyncio.wait({get_task, drain_task},
                                   timeout=self.heartbeat,
                                   return_when=asyncio.FIRST_COMPLETED)
                if not get_task.done():
                    get_task.cancel()
                    try:
                        # Rescue an entry that arrived in the cancel
                        # race — dropping it would advance nothing and
                        # lose the event for good.
                        entry = await get_task
                    except asyncio.CancelledError:
                        if drain_task.done():
                            return generation, cursor
                        writer.write(format_comment("keepalive"))
                        await writer.drain()
                        continue
                else:
                    entry = get_task.result()
                if isinstance(entry, tuple) and entry[0] == RESET:
                    _, entry_generation, entry_next = entry
                    if entry_generation == generation \
                            and entry_next <= cursor:
                        continue  # already announced during catch-up
                    generation, cursor = entry_generation, entry_next
                    writer.write(format_reset(generation, cursor))
                    self.stream_stats.resets += 1
                    await writer.drain()
                    continue
                seq = entry["seq"]
                if seq < cursor:
                    continue  # already replayed from the store
                cursor = seq + 1
                if kinds is not None and entry["kind"] not in kinds:
                    continue
                writer.write(format_event(entry, generation))
                self.stream_stats.events_sent += 1
                await writer.drain()
            return generation, cursor
        finally:
            drain_task.cancel()
