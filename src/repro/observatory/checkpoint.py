"""Durable ingest checkpoints (versioned, atomic write-rename).

A checkpoint is one JSON document capturing *everything* the ingest
needs to resume exactly: the update/RIB stream watermarks (timestamp +
how many records were already consumed at that timestamp — the archive
merge order is total, so that pair addresses an exact stream position),
the number of events appended to the store, and full snapshots of the
streaming detector, resurrection monitor and lifespan session.

Writes go to a temp file in the same directory followed by
``os.replace``, so a crash leaves either the old checkpoint or the new
one — never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["CHECKPOINT_VERSION", "load_checkpoint", "save_checkpoint"]

CHECKPOINT_VERSION = 1


def save_checkpoint(path: Union[str, Path], document: dict[str, Any]) -> None:
    """Atomically persist ``document`` (stamped with the version)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(document)
    payload["version"] = CHECKPOINT_VERSION
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: Union[str, Path]) -> Optional[dict[str, Any]]:
    """The checkpoint document, or None when no checkpoint exists yet."""
    path = Path(path)
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version: {document.get('version')!r}")
    return document
