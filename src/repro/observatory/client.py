"""Programmatic client for the observatory HTTP API (stdlib urllib).

Requests carry a connect/read timeout and a small bounded retry with
exponential backoff: transient transport failures (connection refused,
resets, timeouts, 5xx) are retried, API-level errors (4xx with a JSON
body) raise :class:`ObservatoryError` immediately, and a server that
stays unreachable after the retry budget raises
:class:`ObservatoryUnreachable` with the attempt count and last cause.
A 200 response whose body is not valid JSON (a misconfigured proxy, a
half-written error page) raises :class:`ObservatoryProtocolError` —
callers never see a bare ``json.JSONDecodeError``.

The client revalidates transparently: every 200 with an ``ETag`` is
remembered per URL, repeat requests carry ``If-None-Match``, and a
``304 Not Modified`` answer is satisfied from the cached body without
the server re-rendering (or re-sending) anything.  Callers just see
the JSON; :attr:`ObservatoryClient.revalidations` counts the 304s.
:meth:`ObservatoryClient.paginate` walks a paginated listing page by
page, following ``next_cursor`` until the listing is exhausted.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Callable, Iterator, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import quote, urlencode
from urllib.request import Request, urlopen

__all__ = ["ObservatoryClient", "ObservatoryError",
           "ObservatoryProtocolError", "ObservatoryUnreachable"]


class ObservatoryError(Exception):
    """An API-level error response (4xx/5xx with a JSON body)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ObservatoryProtocolError(Exception):
    """A response that is not valid observatory protocol — e.g. a 200
    whose body is not JSON.  Keeps the offending body (truncated) for
    the error message without letting ``json.JSONDecodeError`` escape."""

    def __init__(self, url: str, body: str, cause: Exception):
        snippet = body[:120] + ("…" if len(body) > 120 else "")
        super().__init__(f"{url}: malformed response body: {cause} "
                         f"(body: {snippet!r})")
        self.url = url
        self.body = body
        self.cause = cause


class ObservatoryUnreachable(Exception):
    """The server could not be reached after exhausting the retries."""

    def __init__(self, url: str, attempts: int, cause: Exception):
        super().__init__(
            f"{url} unreachable after {attempts} attempt(s): {cause}")
        self.url = url
        self.attempts = attempts
        self.cause = cause


class ObservatoryClient:
    """Thin JSON client: one method per endpoint.

    ``timeout`` applies per request (connect + read); ``retries`` extra
    attempts are made on transport failures and 5xx responses, sleeping
    ``backoff * 2**attempt`` between them (``sleep`` is injectable for
    tests).
    """

    #: Most-recently validated (etag, body) pairs kept per URL.
    CACHE_ENTRIES = 256

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retries: int = 2, backoff: float = 0.2,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self._sleep = sleep
        self._etag_cache: dict[str, tuple[str, str]] = {}
        #: Requests answered 304 and served from the local cache.
        self.revalidations = 0

    def _remember(self, url: str, etag: str, body: str) -> None:
        self._etag_cache.pop(url, None)
        self._etag_cache[url] = (etag, body)
        while len(self._etag_cache) > self.CACHE_ENTRIES:
            self._etag_cache.pop(next(iter(self._etag_cache)))

    def _get(self, path: str, params: Optional[dict[str, Any]] = None,
             raw: bool = False):
        query = {k: v for k, v in (params or {}).items() if v is not None}
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        cached = self._etag_cache.get(url) if not raw else None
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                request = Request(url)
                if cached is not None:
                    request.add_header("If-None-Match", cached[0])
                with urlopen(request, timeout=self.timeout) as response:
                    body = response.read().decode("utf-8")
                    etag = response.headers.get("ETag")
                if raw:
                    return body
                try:
                    parsed = json.loads(body)
                except ValueError as exc:
                    raise ObservatoryProtocolError(url, body, exc) from exc
                if etag:
                    self._remember(url, etag, body)
                return parsed
            except HTTPError as exc:
                if exc.code == 304:
                    if cached is not None:
                        # Fresh parse per call so a caller mutating the
                        # result cannot poison the cache.
                        self.revalidations += 1
                        return json.loads(cached[1])
                    raise ObservatoryProtocolError(
                        url, "", ValueError("304 without a cached body")
                    ) from None
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                if exc.code < 500:
                    raise ObservatoryError(exc.code, detail) from None
                last = ObservatoryError(exc.code, detail)
            except (URLError, OSError, http.client.HTTPException,
                    socket.timeout) as exc:
                last = exc
            if attempt < self.retries:
                self._sleep(self.backoff * (2 ** attempt))
        if isinstance(last, ObservatoryError):
            raise last
        assert last is not None
        raise ObservatoryUnreachable(url, self.retries + 1, last) from None

    def healthz(self) -> dict[str, Any]:
        return self._get("/healthz")

    def outbreaks(self, prefix: Optional[str] = None,
                  since: Optional[int] = None,
                  until: Optional[int] = None,
                  limit: Optional[int] = None,
                  cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/outbreaks", {"prefix": prefix, "since": since,
                                        "until": until, "limit": limit,
                                        "cursor": cursor})

    def zombies(self, limit: Optional[int] = None,
                cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/zombies", {"limit": limit, "cursor": cursor})

    def zombie(self, prefix: str) -> dict[str, Any]:
        return self._get("/zombies/" + quote(str(prefix), safe=""))

    def resurrections(self, prefix: Optional[str] = None,
                      since: Optional[int] = None,
                      until: Optional[int] = None,
                      limit: Optional[int] = None,
                      cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/resurrections", {"prefix": prefix, "since": since,
                                            "until": until, "limit": limit,
                                            "cursor": cursor})

    def paginate(self, what: str, page_size: int = 500,
                 prefix: Optional[str] = None,
                 since: Optional[int] = None,
                 until: Optional[int] = None) -> Iterator[dict[str, Any]]:
        """Iterate every item of a paginated listing, fetching
        ``page_size`` rows per request and following ``next_cursor``
        until the server reports no more.  ``what`` is one of
        ``outbreaks`` / ``zombies`` / ``resurrections``; the filters
        apply where the endpoint supports them."""
        if what not in ("outbreaks", "zombies", "resurrections"):
            raise ValueError(f"not a paginated listing: {what!r}")
        params: dict[str, Any] = {"limit": page_size}
        if what != "zombies":
            params.update(prefix=prefix, since=since, until=until)
        cursor: Optional[str] = None
        while True:
            body = self._get("/" + what, {**params, "cursor": cursor})
            yield from body[what]
            cursor = body.get("next_cursor")
            if cursor is None:
                break

    def metrics(self) -> str:
        return self._get("/metrics", raw=True)
