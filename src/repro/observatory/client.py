"""Programmatic client for the observatory HTTP API (stdlib urllib)."""

from __future__ import annotations

import json
from typing import Any, Optional
from urllib.error import HTTPError
from urllib.parse import quote, urlencode
from urllib.request import urlopen

__all__ = ["ObservatoryClient", "ObservatoryError"]


class ObservatoryError(Exception):
    """An API-level error response (4xx/5xx with a JSON body)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ObservatoryClient:
    """Thin JSON client: one method per endpoint."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str, params: Optional[dict[str, Any]] = None,
             raw: bool = False):
        query = {k: v for k, v in (params or {}).items() if v is not None}
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        try:
            with urlopen(url, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ObservatoryError(exc.code, detail) from None
        return body if raw else json.loads(body)

    def healthz(self) -> dict[str, Any]:
        return self._get("/healthz")

    def outbreaks(self, prefix: Optional[str] = None,
                  since: Optional[int] = None,
                  until: Optional[int] = None) -> dict[str, Any]:
        return self._get("/outbreaks", {"prefix": prefix, "since": since,
                                        "until": until})

    def zombies(self) -> dict[str, Any]:
        return self._get("/zombies")

    def zombie(self, prefix: str) -> dict[str, Any]:
        return self._get("/zombies/" + quote(str(prefix), safe=""))

    def resurrections(self, prefix: Optional[str] = None,
                      since: Optional[int] = None,
                      until: Optional[int] = None) -> dict[str, Any]:
        return self._get("/resurrections", {"prefix": prefix, "since": since,
                                            "until": until})

    def metrics(self) -> str:
        return self._get("/metrics", raw=True)
