"""Programmatic client for the observatory HTTP API (stdlib only).

Transport is ``http.client`` so the two phases of a request get their
own clocks: ``connect_timeout`` bounds the TCP connect and
``read_timeout`` bounds each subsequent socket read.  The split is what
makes long-lived streaming subscriptions possible — a stream sits idle
between events far longer than any sane *connect* deadline, and before
the split the single shared timeout had to be short enough to fail fast
on a dead server yet long enough to sit through a quiet stream.  It
also sharpens retry semantics: the bounded exponential-backoff retry
covers the *connect* phase (connection refused, DNS, unreachable) and
5xx responses, where retrying is safe and cheap; a connection that dies
*mid-read* raises :class:`ObservatoryUnreachable` immediately, because
blindly re-reading hides half-delivered responses and double-charges
slow servers.  API-level errors (4xx with a JSON body) raise
:class:`ObservatoryError` without any retry, and a 200 whose body is
not valid JSON (a misconfigured proxy, a half-written error page)
raises :class:`ObservatoryProtocolError` — callers never see a bare
``json.JSONDecodeError``.

The client revalidates transparently: every 200 with an ``ETag`` is
remembered per URL, repeat requests carry ``If-None-Match``, and a
``304 Not Modified`` answer is satisfied from the cached body without
the server re-rendering (or re-sending) anything.  Callers just see
the JSON; :attr:`ObservatoryClient.revalidations` counts the 304s.
:meth:`ObservatoryClient.paginate` walks a paginated listing page by
page, following ``next_cursor`` until the listing is exhausted.

:meth:`ObservatoryClient.stream` tails the ``/stream/*`` SSE endpoints:
it yields event dicts as the server publishes them, heartbeat-checks
the connection with ``idle_timeout``, and on any transport failure
reconnects with the ``Last-Event-ID`` resume token of the last frame it
delivered — so a consumer sees every event exactly once, in seq order,
across server restarts.  A stream ``reset`` frame (store generation
bump: truncate/compact rewrote history) is surfaced as a
``{"kind": "reset", ...}`` dict so consumers know to re-sync their
derived state via the query endpoints.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Iterator, Optional
from urllib.parse import quote, urlencode, urlsplit

from repro.observatory.stream import encode_token

__all__ = ["ObservatoryClient", "ObservatoryError",
           "ObservatoryProtocolError", "ObservatoryUnreachable"]


class ObservatoryError(Exception):
    """An API-level error response (4xx/5xx with a JSON body)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ObservatoryProtocolError(Exception):
    """A response that is not valid observatory protocol — e.g. a 200
    whose body is not JSON.  Keeps the offending body (truncated) for
    the error message without letting ``json.JSONDecodeError`` escape."""

    def __init__(self, url: str, body: str, cause: Exception):
        snippet = body[:120] + ("…" if len(body) > 120 else "")
        super().__init__(f"{url}: malformed response body: {cause} "
                         f"(body: {snippet!r})")
        self.url = url
        self.body = body
        self.cause = cause


class ObservatoryUnreachable(Exception):
    """The server could not be reached after exhausting the retries."""

    def __init__(self, url: str, attempts: int, cause: Exception):
        super().__init__(
            f"{url} unreachable after {attempts} attempt(s): {cause}")
        self.url = url
        self.attempts = attempts
        self.cause = cause


#: Stream names accepted by :meth:`ObservatoryClient.stream`.
STREAMS = ("events", "outbreaks", "resurrections")


class ObservatoryClient:
    """Thin JSON client: one method per endpoint.

    ``connect_timeout`` bounds TCP connection establishment,
    ``read_timeout`` bounds each socket read of a response; the legacy
    ``timeout`` argument sets whichever of the two was not given
    explicitly.  ``retries`` extra attempts are made on connect
    failures and 5xx responses, sleeping ``backoff * 2**attempt``
    between them, never more than ``backoff_cap`` seconds (``sleep`` is
    injectable for tests).  A numeric ``Retry-After`` on a 5xx answer
    overrides the computed backoff — the server knows how long it needs
    — but is capped the same way.

    When the answer came from a degraded federated observatory, the
    shard names it was missing are surfaced in :attr:`last_partial`
    (from the ``X-Observatory-Partial`` header); ``None`` means the
    answer was complete.
    """

    #: Most-recently validated (etag, body) pairs kept per URL.
    CACHE_ENTRIES = 256

    def __init__(self, base_url: str, timeout: Optional[float] = None,
                 retries: int = 2, backoff: float = 0.2,
                 sleep: Callable[[float], None] = time.sleep,
                 connect_timeout: Optional[float] = None,
                 read_timeout: Optional[float] = None,
                 backoff_cap: float = 30.0):
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", "https") or not split.netloc:
            raise ValueError(f"not an observatory URL: {base_url!r}")
        self._scheme = split.scheme
        self._netloc = split.netloc
        self.connect_timeout = (connect_timeout if connect_timeout is not None
                                else timeout if timeout is not None else 5.0)
        self.read_timeout = (read_timeout if read_timeout is not None
                             else timeout if timeout is not None else 10.0)
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._etag_cache: dict[str, tuple[str, str]] = {}
        #: Requests answered 304 and served from the local cache.
        self.revalidations = 0
        #: Resume token of the last event yielded by :meth:`stream`.
        self.stream_token: Optional[str] = None
        #: Shard names missing from the last answer (the federated
        #: ``X-Observatory-Partial`` header), or ``None`` if complete.
        self.last_partial: Optional[tuple[str, ...]] = None

    def _delay(self, attempt: int,
               retry_after: Optional[str] = None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based): capped
        exponential backoff, overridden by a numeric ``Retry-After``
        (still capped — the cap is the client's own patience)."""
        if retry_after is not None:
            try:
                return min(self.backoff_cap, max(0.0, float(retry_after)))
            except ValueError:
                pass  # HTTP-date form: fall back to computed backoff
        return min(self.backoff_cap, self.backoff * (2 ** attempt))

    def _remember(self, url: str, etag: str, body: str) -> None:
        self._etag_cache.pop(url, None)
        self._etag_cache[url] = (etag, body)
        while len(self._etag_cache) > self.CACHE_ENTRIES:
            self._etag_cache.pop(next(iter(self._etag_cache)))

    # -- transport --------------------------------------------------------

    def _connect(self, read_timeout: Optional[float]
                 ) -> http.client.HTTPConnection:
        """Open a connection under ``connect_timeout``, then switch the
        socket to the read clock.  The two-clock trick: ``http.client``
        applies its ``timeout`` at connect, and once the socket exists
        we re-arm it for reads."""
        conn_cls = (http.client.HTTPSConnection if self._scheme == "https"
                    else http.client.HTTPConnection)
        conn = conn_cls(self._netloc, timeout=self.connect_timeout)
        conn.connect()
        assert conn.sock is not None
        conn.sock.settimeout(read_timeout)
        return conn

    def _get(self, path: str, params: Optional[dict[str, Any]] = None,
             raw: bool = False):
        query = {k: v for k, v in (params or {}).items() if v is not None}
        url = self.base_url + path
        target = path + ("?" + urlencode(query) if query else "")
        if query:
            url += "?" + urlencode(query)
        cached = self._etag_cache.get(url) if not raw else None
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                conn = self._connect(self.read_timeout)
            except OSError as exc:
                # Connect failures are the retryable class: nothing was
                # sent, so trying again cannot double-deliver anything.
                last = exc
                if attempt < self.retries:
                    self._sleep(self._delay(attempt))
                continue
            try:
                headers = {"Connection": "close"}
                if cached is not None:
                    headers["If-None-Match"] = cached[0]
                conn.request("GET", target, headers=headers)
                response = conn.getresponse()
                status = response.status
                etag = response.getheader("ETag")
                retry_after = response.getheader("Retry-After")
                partial = response.getheader("X-Observatory-Partial")
                body = response.read().decode("utf-8", "replace")
            except (OSError, http.client.HTTPException) as exc:
                # Mid-request/mid-read death: the server may have acted
                # on (or half-answered) the request — do not retry.
                raise ObservatoryUnreachable(url, attempt + 1, exc) from exc
            finally:
                conn.close()
            if status == 304:
                if cached is not None:
                    # Fresh parse per call so a caller mutating the
                    # result cannot poison the cache.
                    self.revalidations += 1
                    self.last_partial = (tuple(partial.split(","))
                                         if partial else None)
                    return json.loads(cached[1])
                raise ObservatoryProtocolError(
                    url, "", ValueError("304 without a cached body")
                ) from None
            if status >= 400:
                try:
                    detail = json.loads(body).get("error", body)
                except ValueError:
                    detail = body
                if status < 500:
                    raise ObservatoryError(status, detail) from None
                last = ObservatoryError(status, detail)
                if attempt < self.retries:
                    self._sleep(self._delay(attempt, retry_after))
                continue
            self.last_partial = (tuple(partial.split(","))
                                 if partial else None)
            if raw:
                return body
            try:
                parsed = json.loads(body)
            except ValueError as exc:
                raise ObservatoryProtocolError(url, body, exc) from exc
            if etag:
                self._remember(url, etag, body)
            return parsed
        if isinstance(last, ObservatoryError):
            raise last
        assert last is not None
        raise ObservatoryUnreachable(url, self.retries + 1, last) from None

    # -- endpoints --------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._get("/healthz")

    def outbreaks(self, prefix: Optional[str] = None,
                  since: Optional[int] = None,
                  until: Optional[int] = None,
                  limit: Optional[int] = None,
                  cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/outbreaks", {"prefix": prefix, "since": since,
                                        "until": until, "limit": limit,
                                        "cursor": cursor})

    def zombies(self, limit: Optional[int] = None,
                cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/zombies", {"limit": limit, "cursor": cursor})

    def zombie(self, prefix: str) -> dict[str, Any]:
        return self._get("/zombies/" + quote(str(prefix), safe=""))

    def forensics(self, outbreak_id: str) -> dict[str, Any]:
        """The pre-outbreak snapshot for one outbreak event (use the
        ``id`` field of an ``/outbreaks`` row)."""
        return self._get("/outbreaks/" + quote(str(outbreak_id), safe="")
                         + "/forensics")

    def resurrections(self, prefix: Optional[str] = None,
                      since: Optional[int] = None,
                      until: Optional[int] = None,
                      limit: Optional[int] = None,
                      cursor: Optional[str] = None) -> dict[str, Any]:
        return self._get("/resurrections", {"prefix": prefix, "since": since,
                                            "until": until, "limit": limit,
                                            "cursor": cursor})

    def paginate(self, what: str, page_size: int = 500,
                 prefix: Optional[str] = None,
                 since: Optional[int] = None,
                 until: Optional[int] = None) -> Iterator[dict[str, Any]]:
        """Iterate every item of a paginated listing, fetching
        ``page_size`` rows per request and following ``next_cursor``
        until the server reports no more.  ``what`` is one of
        ``outbreaks`` / ``zombies`` / ``resurrections``; the filters
        apply where the endpoint supports them."""
        if what not in ("outbreaks", "zombies", "resurrections"):
            raise ValueError(f"not a paginated listing: {what!r}")
        params: dict[str, Any] = {"limit": page_size}
        if what != "zombies":
            params.update(prefix=prefix, since=since, until=until)
        cursor: Optional[str] = None
        while True:
            body = self._get("/" + what, {**params, "cursor": cursor})
            yield from body[what]
            cursor = body.get("next_cursor")
            if cursor is None:
                break

    def metrics(self) -> str:
        return self._get("/metrics", raw=True)

    # -- streaming --------------------------------------------------------

    def stream(self, what: str = "events", cursor: Optional[str] = None,
               from_seq: Optional[int] = None, reconnect: bool = True,
               idle_timeout: float = 60.0) -> Iterator[dict[str, Any]]:
        """Tail a ``/stream/*`` endpoint, yielding one dict per event.

        ``what`` is ``events`` / ``outbreaks`` / ``resurrections``.
        ``cursor`` is a ``"<generation>:<next_seq>"`` resume token (from
        a previous run's :attr:`stream_token`); ``from_seq`` asks the
        server to replay history from that seq on the *first* connect.
        Generation bumps surface as ``{"kind": "reset", "generation":
        G, "next_seq": N}`` — everything derived from earlier events is
        unverified after one.

        The generator reconnects transparently: any transport failure
        (reset, timeout past ``idle_timeout``, mid-read EOF) re-dials
        with the ``Last-Event-ID`` of the last *yielded* frame, so no
        event is lost or repeated across reconnects.  Consecutive
        failed connects beyond ``retries`` raise
        :class:`ObservatoryUnreachable`; with ``reconnect=False`` the
        generator returns at the first disconnect instead.  The server
        heartbeats idle streams well inside ``idle_timeout``, so a
        tripped idle clock means a dead peer, not a quiet one.
        """
        if what not in STREAMS:
            raise ValueError(f"not a stream: {what!r} (expected one of "
                             f"{', '.join(STREAMS)})")
        path = f"/stream/{what}"
        url = self.base_url + path
        token = cursor
        first = True
        failures = 0
        last_error: Optional[Exception] = None
        while True:
            try:
                conn = self._connect(idle_timeout)
            except OSError as exc:
                failures += 1
                last_error = exc
                if failures > self.retries:
                    raise ObservatoryUnreachable(
                        url, failures, exc) from exc
                self._sleep(self._delay(failures - 1))
                continue
            try:
                target = path
                headers = {"Accept": "text/event-stream"}
                if token is not None:
                    headers["Last-Event-ID"] = token
                elif first and from_seq is not None:
                    target += "?" + urlencode({"from_seq": from_seq})
                conn.request("GET", target, headers=headers)
                response = conn.getresponse()
                if response.status != 200:
                    body = response.read().decode("utf-8", "replace")
                    try:
                        detail = json.loads(body).get("error", body)
                    except ValueError:
                        detail = body
                    raise ObservatoryError(response.status, detail)
                first = False
                for frame_id, kind, data in self._read_frames(response):
                    failures = 0  # a live connection resets the budget
                    if frame_id is not None:
                        token = frame_id
                    event = json.loads(data)
                    if kind == "reset":
                        event = {"kind": "reset", **event}
                    self.stream_token = token
                    yield event
                # Orderly EOF (server shut down): fall through to
                # reconnect just like a failure, without burning sleep.
                last_error = ConnectionError("stream closed by server")
                failures += 1
            except ObservatoryError:
                raise
            except (OSError, ValueError, http.client.HTTPException) as exc:
                failures += 1
                last_error = exc
            finally:
                conn.close()
            if not reconnect:
                return
            if failures > self.retries:
                assert last_error is not None
                raise ObservatoryUnreachable(
                    url, failures, last_error) from last_error
            if failures:
                self._sleep(self._delay(failures - 1))

    @staticmethod
    def _read_frames(response: http.client.HTTPResponse
                     ) -> Iterator[tuple[Optional[str], str, str]]:
        """Parse SSE frames off the wire: yields ``(id, event, data)``
        per dispatched frame, skipping comments (keepalives)."""
        frame_id: Optional[str] = None
        kind = "message"
        data: list[str] = []
        for raw_line in iter(response.readline, b""):
            line = raw_line.decode("utf-8").rstrip("\r\n")
            if not line:
                if data:
                    yield frame_id, kind, "\n".join(data)
                frame_id, kind, data = None, "message", []
                continue
            if line.startswith(":"):
                continue  # comment — the heartbeat keepalive
            name, _, value = line.partition(":")
            value = value.removeprefix(" ")
            if name == "id":
                frame_id = value
            elif name == "event":
                kind = value
            elif name == "data":
                data.append(value)

    @staticmethod
    def resume_token(generation: int, next_seq: int) -> str:
        """The token that resumes a stream at ``(generation, next_seq)``
        — what a consumer should persist alongside processed events."""
        return encode_token(generation, next_seq)
