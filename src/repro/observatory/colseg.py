"""Sealed binary columnar event segments (``.colseg``).

The JSONL store pays ``json.loads`` per event on every scan; a sealed
segment is immutable, so that work can be done once at compaction time
and the result laid out so readers touch only what a query needs.  A
``.colseg`` file holds the same events as the JSONL segment it
replaces, grouped by event kind, one packed column per field:

* ``int`` columns are little-endian ``int64`` arrays (the
  :mod:`repro.mrt.attr_codec` precompiled-``struct`` idiom, read back
  as a zero-copy ``memoryview.cast`` over the ``mmap``);
* ``bool`` columns are one byte per row;
* ``str`` columns are a UTF-8 blob plus a ``uint32`` end-offset array;
* anything else (lists, nested objects, nulls, mixed types) falls back
  to a ``json`` column — per-value canonical JSON in a blob, so every
  JSON-representable event round-trips exactly;
* a column whose values repeat (prefixes, peer lists) is
  dictionary-encoded: a ``uint32`` index array into a pool of unique
  values, decoded once.

Fields absent from some rows carry a presence bytemap.  The event
``kind`` is implicit in the group and costs nothing.

File layout::

    "CSEG0001"            8-byte magic
    <column data region>  8-byte-aligned blobs, back to back
    <footer>              JSON: counts, per-group/per-column offsets,
                          per-column min/max, crc32 of the data region
    <footer length>       uint32, little-endian
    "CSEGEND1"            8-byte tail magic

The footer's per-group ``min_seq``/``max_seq``/``min_time``/
``max_time``/``min_prefix``/``max_prefix`` let
:meth:`ColumnarSegment.scan` skip whole kind groups, and decode only
the filter columns (seq, time, prefix) when a group partially
overlaps — full event dicts are built only for surviving rows.
Decoded columns and materialized rows are cached on the instance:
a sealed segment never changes, so the cache can never go stale.

Writing is deterministic: the same events always produce the same
bytes, which is what lets two identically-compacted stores stay
byte-identical (the determinism contract the chaos tests enforce).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from heapq import merge as _heapq_merge
from itertools import repeat
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

__all__ = ["ColsegError", "ColumnarSegment", "write_segment",
           "COLSEG_SUFFIX"]

COLSEG_SUFFIX = ".colseg"

_MAGIC = b"CSEG0001"
_TAIL_MAGIC = b"CSEGEND1"
_VERSION = 1

#: Dictionary-encode a str/json column when the unique values would
#: occupy at most half the rows — below that the index array plus the
#: pool is both smaller and faster to decode than per-row values.
_DICT_RATIO = 2

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_LITTLE = sys.byteorder == "little"

_MISSING = object()


class ColsegError(ValueError):
    """A ``.colseg`` file that cannot be read: bad magic, unsupported
    version, an unparseable footer, or column geometry that does not
    agree with the footer's counts."""


# ---------------------------------------------------------------------------
# writing


class _BlobWriter:
    """Accumulates the 8-byte-aligned column data region."""

    def __init__(self) -> None:
        self.buffer = bytearray()

    def write(self, data: bytes) -> tuple[int, int]:
        """Append one blob; returns ``(offset, length)`` (offsets are
        relative to the start of the data region)."""
        pad = (-len(self.buffer)) % 8
        self.buffer += b"\x00" * pad
        offset = len(self.buffer)
        self.buffer += data
        return offset, len(data)


def _classify(values: Sequence[Any]) -> str:
    if all(isinstance(v, bool) for v in values):
        return "bool"
    if all(isinstance(v, int) and not isinstance(v, bool)
           and _INT64_MIN <= v <= _INT64_MAX for v in values):
        return "int"
    if all(isinstance(v, str) for v in values):
        return "str"
    return "json"


def _encode_values(blobs: _BlobWriter, values: Sequence[Any],
                   kind: str) -> dict[str, Any]:
    """Encode one run of present values as a typed column body."""
    desc: dict[str, Any] = {"type": kind}
    if kind == "int":
        offset, length = blobs.write(
            struct.pack(f"<{len(values)}q", *values))
        desc.update(offset=offset, length=length,
                    min=min(values) if values else None,
                    max=max(values) if values else None)
    elif kind == "bool":
        offset, length = blobs.write(bytes(1 if v else 0 for v in values))
        desc.update(offset=offset, length=length)
    else:  # str / json blobs with uint32 end offsets
        if kind == "json":
            encoded = [json.dumps(v, sort_keys=True).encode("utf-8")
                       for v in values]
        else:
            encoded = [v.encode("utf-8") for v in values]
        ends, cursor = [], 0
        for piece in encoded:
            cursor += len(piece)
            ends.append(cursor)
        if cursor > 0xFFFFFFFF:
            raise ColsegError("column blob exceeds uint32 offsets; "
                             "use smaller segments")
        ends_off, ends_len = blobs.write(struct.pack(f"<{len(ends)}I", *ends))
        blob_off, blob_len = blobs.write(b"".join(encoded))
        desc.update(ends_offset=ends_off, ends_length=ends_len,
                    blob_offset=blob_off, blob_length=blob_len)
    return desc


def _encode_column(blobs: _BlobWriter, name: str, rows: list[dict[str, Any]]
                   ) -> dict[str, Any]:
    present = [name in row for row in rows]
    values = [row[name] for row in rows if name in row]
    kind = _classify(values)
    if kind in ("str", "json") and values:
        # Dictionary-encode repetitive columns (prefixes, peer lists):
        # unique pool in first-occurrence order keeps the bytes
        # deterministic for identical event histories.
        keys = values if kind == "str" else [
            json.dumps(v, sort_keys=True) for v in values]
        pool_index: dict[str, int] = {}
        indexes = []
        pool_values = []
        for key, value in zip(keys, values):
            slot = pool_index.get(key)
            if slot is None:
                slot = len(pool_values)
                pool_index[key] = slot
                pool_values.append(value)
            indexes.append(slot)
        if len(pool_values) * _DICT_RATIO <= len(values):
            idx_off, idx_len = blobs.write(
                struct.pack(f"<{len(indexes)}I", *indexes))
            desc = {"type": "dict", "index_offset": idx_off,
                    "index_length": idx_len,
                    "values": _encode_values(blobs, pool_values, kind)}
        else:
            desc = _encode_values(blobs, values, kind)
    else:
        desc = _encode_values(blobs, values, kind)
    desc["name"] = name
    if all(present):
        desc["present"] = None
    else:
        offset, length = blobs.write(bytes(1 if p else 0 for p in present))
        desc["present"] = {"offset": offset, "length": length,
                           "count": len(values)}
    return desc


def write_segment(path: Union[str, Path],
                  events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Write ``events`` (seq-ascending) as one ``.colseg`` file.

    Returns the footer that was written (handy for tests).  The caller
    owns atomicity — write to a temp name and rename, as compaction
    does.
    """
    events = list(events)
    if not events:
        raise ColsegError("a columnar segment cannot be empty")
    last = None
    for event in events:
        seq = event["seq"]
        if last is not None and seq <= last:
            raise ColsegError("events must be strictly seq-ascending")
        last = seq

    groups: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        groups.setdefault(event["kind"], []).append(event)

    blobs = _BlobWriter()
    group_descs = []
    for kind in sorted(groups):
        rows = groups[kind]
        names = sorted({name for row in rows for name in row} - {"kind"})
        columns = [_encode_column(blobs, name, rows) for name in names]
        seqs = [row["seq"] for row in rows]
        times = [row["time"] for row in rows
                 if isinstance(row.get("time"), int)]
        prefixes = [row["prefix"] for row in rows
                    if isinstance(row.get("prefix"), str)]
        group_descs.append({
            "kind": kind,
            "count": len(rows),
            "min_seq": seqs[0],
            "max_seq": seqs[-1],
            "min_time": min(times) if times else None,
            "max_time": max(times) if times else None,
            # Prefix bounds are only a safe skip test when every row
            # has a string prefix; otherwise a filtered scan must look
            # at the rows.
            "min_prefix": min(prefixes) if len(prefixes) == len(rows)
            else None,
            "max_prefix": max(prefixes) if len(prefixes) == len(rows)
            else None,
            "columns": columns,
        })

    times = [e["time"] for e in events if isinstance(e.get("time"), int)]
    footer = {
        "version": _VERSION,
        "count": len(events),
        "first_seq": events[0]["seq"],
        "last_seq": events[-1]["seq"],
        "min_time": min(times) if times else None,
        "max_time": max(times) if times else None,
        "crc32": zlib.crc32(bytes(blobs.buffer)),
        "groups": group_descs,
    }
    footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(bytes(blobs.buffer))
        handle.write(footer_bytes)
        handle.write(struct.pack("<I", len(footer_bytes)))
        handle.write(_TAIL_MAGIC)
        handle.flush()
    return footer


# ---------------------------------------------------------------------------
# reading


class _Group:
    """One kind group: footer metadata plus lazily decoded columns."""

    def __init__(self, desc: dict[str, Any]) -> None:
        self.kind: str = desc["kind"]
        self.count: int = desc["count"]
        self.min_seq: int = desc["min_seq"]
        self.max_seq: int = desc["max_seq"]
        self.min_time: Optional[int] = desc["min_time"]
        self.max_time: Optional[int] = desc["max_time"]
        self.min_prefix: Optional[str] = desc.get("min_prefix")
        self.max_prefix: Optional[str] = desc.get("max_prefix")
        self.columns: list[dict[str, Any]] = desc["columns"]
        #: column name -> row-aligned value list (``_MISSING`` where the
        #: field is absent); filled on first touch.
        self.full_cols: dict[str, list[Any]] = {}
        self.rows: Optional[list[dict[str, Any]]] = None


class ColumnarSegment:
    """mmap-backed reader for one ``.colseg`` file.

    Opening validates the envelope and column geometry (cheap);
    :meth:`verify` additionally checks the data-region crc32 and
    recomputes every recorded min/max — the doctor's fsck pass.
    Decoded columns and built rows are cached on the instance (sealed
    segments are immutable), so repeated scans touch no disk at all.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < len(_MAGIC) + 4 + len(_TAIL_MAGIC):
                raise ColsegError(
                    f"not a columnar segment: {self.path.name}")
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ColsegError:
            self._file.close()
            raise
        except (OSError, ValueError) as exc:
            self._file.close()
            raise ColsegError(f"cannot map columnar segment "
                              f"{self.path.name}: {exc}")
        try:
            self._parse(memoryview(self._mmap), size)
        except Exception:
            self._data = memoryview(b"")
            self.close()
            raise

    def _parse(self, data: memoryview, size: int) -> None:
        if bytes(data[:len(_MAGIC)]) != _MAGIC:
            raise ColsegError(f"not a columnar segment: {self.path.name}")
        if bytes(data[-len(_TAIL_MAGIC):]) != _TAIL_MAGIC:
            raise ColsegError(f"truncated columnar segment "
                              f"(bad tail magic): {self.path.name}")
        (footer_len,) = struct.unpack_from(
            "<I", data, size - len(_TAIL_MAGIC) - 4)
        footer_end = size - len(_TAIL_MAGIC) - 4
        footer_start = footer_end - footer_len
        if footer_start < len(_MAGIC):
            raise ColsegError(f"footer length {footer_len} overruns the "
                              f"file: {self.path.name}")
        try:
            footer = json.loads(bytes(data[footer_start:footer_end]))
            if footer.get("version") != _VERSION:
                raise ColsegError(
                    f"unsupported columnar segment version "
                    f"{footer.get('version')!r}: {self.path.name}")
            self.count: int = footer["count"]
            self.first_seq: int = footer["first_seq"]
            self.last_seq: int = footer["last_seq"]
            self.min_time: Optional[int] = footer["min_time"]
            self.max_time: Optional[int] = footer["max_time"]
            self.crc32: int = footer["crc32"]
            self._groups = [_Group(desc) for desc in footer["groups"]]
        except ColsegError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ColsegError(f"unreadable columnar segment footer: "
                              f"{self.path.name}: {exc}")
        self._data = data[len(_MAGIC):footer_start]
        self._validate_geometry()

    # -- envelope ----------------------------------------------------------

    def close(self) -> None:
        """Unmap the file.  Column decode and :meth:`verify` need the
        map; already-decoded columns and cached rows are plain Python
        objects and stay usable."""
        self._data.release()
        self._data = memoryview(b"")
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # An in-flight exception traceback still references a
                # view of the map; it unmaps when that is collected.
                pass
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    @property
    def kinds(self) -> set[str]:
        return {group.kind for group in self._groups}

    def _validate_geometry(self) -> None:
        total = 0
        for group in self._groups:
            total += group.count
            for column in group.columns:
                self._check_column(group, column)
        if total != self.count:
            raise ColsegError(
                f"group counts sum to {total}, footer says {self.count}: "
                f"{self.path.name}")

    def _check_column(self, group: _Group, desc: dict[str, Any]) -> None:
        present = desc.get("present")
        count = group.count if present is None else present["count"]
        if present is not None:
            self._check_blob(present["offset"], present["length"])
            if present["length"] != group.count:
                raise ColsegError(
                    f"presence map length {present['length']} != group "
                    f"count {group.count} for column "
                    f"{desc.get('name')!r}: {self.path.name}")
        self._check_body(desc, count)

    def _check_body(self, desc: dict[str, Any], count: int) -> None:
        kind = desc["type"]
        name = desc.get("name", "<pool>")
        if kind == "int":
            self._check_blob(desc["offset"], desc["length"])
            if desc["length"] != 8 * count:
                raise ColsegError(f"int column {name!r} holds "
                                  f"{desc['length']} bytes for {count} "
                                  f"rows: {self.path.name}")
        elif kind == "bool":
            self._check_blob(desc["offset"], desc["length"])
            if desc["length"] != count:
                raise ColsegError(f"bool column {name!r} holds "
                                  f"{desc['length']} bytes for {count} "
                                  f"rows: {self.path.name}")
        elif kind in ("str", "json"):
            self._check_blob(desc["ends_offset"], desc["ends_length"])
            self._check_blob(desc["blob_offset"], desc["blob_length"])
            if desc["ends_length"] != 4 * count:
                raise ColsegError(f"offset column {name!r} holds "
                                  f"{desc['ends_length']} bytes for "
                                  f"{count} rows: {self.path.name}")
        elif kind == "dict":
            self._check_blob(desc["index_offset"], desc["index_length"])
            if desc["index_length"] != 4 * count:
                raise ColsegError(f"dict column {name!r} holds "
                                  f"{desc['index_length']} index bytes "
                                  f"for {count} rows: {self.path.name}")
            pool = desc["values"]
            pool_count = (pool["length"] // 8 if pool["type"] == "int"
                          else pool["length"] if pool["type"] == "bool"
                          else pool["ends_length"] // 4)
            self._check_body(pool, pool_count)
        else:
            raise ColsegError(f"unknown column type {kind!r}: "
                              f"{self.path.name}")

    def _check_blob(self, offset: int, length: int) -> None:
        if not (isinstance(offset, int) and isinstance(length, int)
                and 0 <= offset and 0 <= length
                and offset + length <= len(self._data)):
            raise ColsegError(f"column blob [{offset}, {offset}+{length}) "
                              f"overruns the data region: {self.path.name}")

    # -- column decode -----------------------------------------------------

    def _ints(self, offset: int, length: int) -> list[int]:
        view = self._data[offset:offset + length]
        if _LITTLE:
            return list(view.cast("q"))
        return list(struct.unpack(f"<{length // 8}q", view))

    def _u32s(self, offset: int, length: int) -> list[int]:
        view = self._data[offset:offset + length]
        if _LITTLE:
            return list(view.cast("I"))
        return list(struct.unpack(f"<{length // 4}I", view))

    def _body_values(self, desc: dict[str, Any]) -> list[Any]:
        kind = desc["type"]
        if kind == "int":
            return self._ints(desc["offset"], desc["length"])
        if kind == "bool":
            return [b == 1 for b in
                    bytes(self._data[desc["offset"]:desc["offset"]
                                     + desc["length"]])]
        if kind in ("str", "json"):
            ends = self._u32s(desc["ends_offset"], desc["ends_length"])
            blob = self._data[desc["blob_offset"]:desc["blob_offset"]
                              + desc["blob_length"]]
            out, start = [], 0
            if kind == "str":
                for end in ends:
                    out.append(bytes(blob[start:end]).decode("utf-8"))
                    start = end
            else:
                loads = json.loads
                for end in ends:
                    out.append(loads(bytes(blob[start:end])))
                    start = end
            return out
        # dict: index into the decoded unique pool
        pool = self._body_values(desc["values"])
        indexes = self._u32s(desc["index_offset"], desc["index_length"])
        if any(i >= len(pool) for i in indexes):
            raise ColsegError(f"dict column {desc.get('name')!r} indexes "
                              f"past its value pool: {self.path.name}")
        return [pool[i] for i in indexes]

    def _full_column(self, group: _Group, name: str) -> list[Any]:
        """Row-aligned values for one column (``_MISSING`` sentinel for
        rows the field is absent from); cached."""
        cached = group.full_cols.get(name)
        if cached is not None:
            return cached
        desc = next((c for c in group.columns if c["name"] == name), None)
        if desc is None:
            full: list[Any] = [_MISSING] * group.count
        else:
            values = self._body_values(desc)
            present = desc.get("present")
            if present is None:
                full = values
            else:
                flags = bytes(self._data[present["offset"]:
                                         present["offset"]
                                         + present["length"]])
                it = iter(values)
                full = [next(it) if flag else _MISSING for flag in flags]
        group.full_cols[name] = full
        return full

    # -- row materialization ----------------------------------------------

    def _rows(self, group: _Group) -> list[dict[str, Any]]:
        if group.rows is not None:
            return group.rows
        names = ["kind"] + [c["name"] for c in group.columns]
        cols: list[Any] = [repeat(group.kind, group.count)]
        partials = []
        for desc in group.columns:
            if desc.get("present") is None:
                cols.append(self._full_column(group, desc["name"]))
            else:
                # Patched in below; keep zip geometry with a filler.
                partials.append(desc["name"])
                cols.append(repeat(_MISSING, group.count))
        rows = [dict(zip(names, tup)) for tup in zip(*cols)]
        for name in partials:
            full = self._full_column(group, name)
            for row, value in zip(rows, full):
                if value is _MISSING:
                    del row[name]
                else:
                    row[name] = value
        group.rows = rows
        return rows

    def _build_row(self, group: _Group, index: int) -> dict[str, Any]:
        row = {"kind": group.kind}
        for desc in group.columns:
            value = self._full_column(group, desc["name"])[index]
            if value is not _MISSING:
                row[desc["name"]] = value
        return row

    # -- queries -----------------------------------------------------------

    def last_event(self) -> dict[str, Any]:
        """The event with the highest seq (the tail-probe primitive)."""
        group = max(self._groups, key=lambda g: g.max_seq)
        if group.rows is not None:
            return group.rows[-1]
        return self._build_row(group, group.count - 1)

    def scan(self, kinds: Optional[frozenset] = None,
             prefix: Optional[str] = None,
             since: Optional[int] = None,
             until: Optional[int] = None,
             min_seq: Optional[int] = None) -> Iterator[dict[str, Any]]:
        """Matching events in seq order.

        Filter semantics mirror ``EventStore.events``: ``kinds`` is a
        set of event kinds, ``prefix`` an exact match (rows without a
        prefix never match), ``[since, until)`` a half-open time window
        (rows without an integer time never match a windowed query),
        ``min_seq`` a watermark.  Groups the footer's min/max rule out
        are skipped without touching their columns; groups that pass
        outright are yielded from the cached row lists; only partially
        overlapping groups decode their filter columns, and full rows
        are built just for the survivors.
        """
        runs = []
        for group in self._groups:
            if kinds is not None and group.kind not in kinds:
                continue
            if min_seq is not None and group.max_seq < min_seq:
                continue
            if since is not None and group.max_time is not None \
                    and group.max_time < since and self._times_total(group):
                continue
            if until is not None and group.min_time is not None \
                    and group.min_time >= until:
                continue
            if prefix is not None and group.min_prefix is not None \
                    and not (group.min_prefix <= prefix
                             <= group.max_prefix):
                continue
            rows = self._scan_group(group, prefix, since, until, min_seq)
            if rows:
                runs.append(rows)
        if not runs:
            return iter(())
        if len(runs) == 1:
            return iter(runs[0])
        return _heapq_merge(*runs, key=lambda event: event["seq"])

    def _times_total(self, group: _Group) -> bool:
        """Whether the time bounds cover every row (no absent/non-int
        times), making max_time < since a safe whole-group skip.
        Windowed queries exclude timeless rows anyway, so min_time >=
        until is always safe; this guard only matters for max_time."""
        desc = next((c for c in group.columns if c["name"] == "time"), None)
        return (desc is not None and desc.get("present") is None
                and desc["type"] == "int")

    def _scan_group(self, group: _Group, prefix: Optional[str],
                    since: Optional[int], until: Optional[int],
                    min_seq: Optional[int]) -> list[dict[str, Any]]:
        need_seq = min_seq is not None and min_seq > group.min_seq
        need_time = ((since is not None
                      and not (group.min_time is not None
                               and group.min_time >= since
                               and self._times_total(group)))
                     or (until is not None
                         and not (group.max_time is not None
                                  and group.max_time < until
                                  and self._times_total(group))))
        need_prefix = prefix is not None and not (
            group.min_prefix is not None
            and group.min_prefix == group.max_prefix == prefix)
        if not (need_seq or need_time or need_prefix):
            return self._rows(group)

        start = 0
        if need_seq:
            seqs = self._full_column(group, "seq")
            lo, hi = 0, group.count  # rows are seq-ascending
            while lo < hi:
                mid = (lo + hi) // 2
                if seqs[mid] < min_seq:
                    lo = mid + 1
                else:
                    hi = mid
            start = lo
            if not (need_prefix or need_time):
                # Pure watermark delta (the views' refresh scan): slice
                # the cached rows instead of rebuilding them one by one.
                return self._rows(group)[start:]
        indexes = range(start, group.count)
        if need_prefix:
            prefixes = self._full_column(group, "prefix")
            indexes = [i for i in indexes if prefixes[i] == prefix]
        if need_time:
            times = self._full_column(group, "time")
            indexes = [i for i in indexes
                       if isinstance(times[i], int)
                       and (since is None or times[i] >= since)
                       and (until is None or times[i] < until)]
        if group.rows is not None:
            return [group.rows[i] for i in indexes]
        return [self._build_row(group, i) for i in indexes]

    # -- verification ------------------------------------------------------

    def verify(self) -> list[str]:
        """Deep fsck: crc32 of the data region, column min/max
        consistency, and per-group seq/time bound agreement.  Returns
        issue strings (empty == sound).  Envelope and geometry were
        already validated at open time."""
        issues = []
        actual_crc = zlib.crc32(bytes(self._data))
        if actual_crc != self.crc32:
            issues.append(f"data region crc32 {actual_crc:#010x} != "
                          f"footer {self.crc32:#010x}")
            return issues  # column contents are untrustworthy
        for group in self._groups:
            try:
                seqs = self._full_column(group, "seq")
            except ColsegError as exc:
                issues.append(str(exc))
                continue
            if seqs and (seqs[0] != group.min_seq
                         or seqs[-1] != group.max_seq
                         or any(b <= a for a, b in zip(seqs, seqs[1:]))):
                issues.append(f"group {group.kind!r} seq column disagrees "
                              f"with footer bounds "
                              f"[{group.min_seq}, {group.max_seq}]")
            for desc in group.columns:
                if desc["type"] != "int":
                    continue
                try:
                    values = [v for v in
                              self._full_column(group, desc["name"])
                              if v is not _MISSING]
                except ColsegError as exc:
                    issues.append(str(exc))
                    continue
                if values and (min(values) != desc["min"]
                               or max(values) != desc["max"]):
                    issues.append(
                        f"column {desc['name']!r} of group "
                        f"{group.kind!r}: recorded min/max "
                        f"[{desc['min']}, {desc['max']}] != actual "
                        f"[{min(values)}, {max(values)}]")
        return issues
