"""Event-store fsck: verify, and where possible repair, a store on disk.

The store's own open-time recovery only handles the *expected* crash
artefact (a partially written trailing line in the active segment).
The doctor handles the rest of the failure model:

* **torn segments** — partial trailing lines, in any JSONL segment;
* **bit rot** — a sealed segment whose bytes no longer match the
  sha256 recorded in the manifest at seal time, or a binary columnar
  segment whose envelope, column geometry, checksum, or footer
  min/max no longer hold together (columnar files are deep-checked
  with :meth:`~repro.observatory.colseg.ColumnarSegment.verify`);
* **orphaned files** — segment files on disk the manifest does not
  know about (artefacts of an interrupted truncate/compact);
* **manifest drift** — counts/indexes that disagree with segment
  contents, missing seal hashes, seq discontinuities between segments,
  or a manifest that is itself unreadable;
* **forensics drift** — on a structurally clean store, a semantic
  sweep of the pre-outbreak ``forensics`` snapshot records (DESIGN.md
  §16): required fields present, the snapshot's outbreak id pairs with
  an ``outbreak`` event actually in the store, and the prefix embedded
  in the id agrees with the snapshot's own prefix field.  Semantic
  drift is reported, never repaired — the snapshot is the evidence,
  and rewriting evidence is worse than flagging it.

Repair policy: consistency over completeness.  Torn JSONL tails are
cut back to the last complete line; orphans are moved aside (renamed
with an ``.orphan`` suffix, never deleted); drifted manifest entries
are rebuilt from segment contents; an unreadable manifest is rebuilt
from the segment files themselves.  Damage to *sealed* bytes — bit
rot, a corrupt columnar segment, or a missing sealed segment — cannot
be undone (a binary segment has no salvageable line-prefix), so repair
truncates the store at the first damaged seq to restore a consistent
prefix, and the run reports the loss: :func:`fsck` exits the CLI
nonzero whenever events were (or would be) lost.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.observatory.colseg import ColsegError, ColumnarSegment
from repro.observatory.store import (
    MANIFEST_VERSION,
    EventStore,
    _complete_lines,
    _Segment,
    file_sha256,
)
from repro.realtime.sinks import outbreak_prefix

__all__ = ["FsckReport", "fleet_shard_roots", "fsck", "fsck_fleet"]

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.(jsonl|colseg)$")


def _segment_files(root: Path) -> list[Path]:
    """Segment files of both formats, name-sorted (== seq-sorted)."""
    return sorted([*root.glob("seg-*.jsonl"), *root.glob("seg-*.colseg")])


def _not_ascending(seqs: list) -> bool:
    return any(b <= a for a, b in zip(seqs, seqs[1:]))


@dataclass
class FsckReport:
    """Everything one fsck pass found (and, under repair, did)."""

    root: str
    repair: bool
    segments_checked: int = 0
    events_checked: int = 0
    #: issue strings, in discovery order — empty means the store is clean.
    issues: list[str] = field(default_factory=list)
    #: repair actions taken (repair mode only).
    actions: list[str] = field(default_factory=list)
    torn_segments: int = 0
    bitrot_segments: int = 0
    missing_segments: int = 0
    orphan_files: int = 0
    drifted_entries: int = 0
    manifest_rebuilt: bool = False
    #: forensics snapshot records semantically swept (clean stores only).
    forensics_checked: int = 0
    #: events dropped (repair) or doomed (check) by unrecoverable damage.
    events_lost: int = 0

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def unrecoverable(self) -> bool:
        """True when event data was (or would be) lost — the condition
        the doctor CLI turns into a nonzero exit."""
        return self.events_lost > 0

    def issue(self, text: str) -> None:
        self.issues.append(text)

    def action(self, text: str) -> None:
        self.actions.append(text)

    def as_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "unrecoverable": self.unrecoverable,
            "segments_checked": self.segments_checked,
            "events_checked": self.events_checked,
            "torn_segments": self.torn_segments,
            "bitrot_segments": self.bitrot_segments,
            "missing_segments": self.missing_segments,
            "orphan_files": self.orphan_files,
            "drifted_entries": self.drifted_entries,
            "manifest_rebuilt": self.manifest_rebuilt,
            "forensics_checked": self.forensics_checked,
            "events_lost": self.events_lost,
            "issues": list(self.issues),
            "actions": list(self.actions),
        }


def _scan_segment(path: Path) -> tuple[Optional[_Segment], list[int], int]:
    """Parse one segment file: returns (rebuilt entry, seqs, torn bytes).

    The entry is built purely from the file's complete lines; ``None``
    when the file has no parseable events at all.  ``torn`` is how many
    trailing bytes are not part of a complete, parseable line.
    """
    data = path.read_bytes()
    lines, complete = _complete_lines(data)
    events = []
    good_end = 0
    offset = 0
    for line in lines:
        try:
            event = json.loads(line)
            if not isinstance(event, dict) or "seq" not in event:
                raise ValueError("not an event object")
        except ValueError:
            break  # treat everything from the first bad line as torn
        events.append(event)
        offset += len(line) + 1
        good_end = offset
    torn = len(data) - good_end
    if not events:
        return None, [], torn
    match = _SEGMENT_RE.match(path.name)
    first_seq = int(match.group(1)) if match else events[0]["seq"]
    entry = _Segment(name=path.name, first_seq=first_seq)
    for event in events:
        entry.note(event)
    return entry, [event["seq"] for event in events], torn


def _scan_columnar(path: Path
                   ) -> tuple[Optional[_Segment], list[int], list[str]]:
    """Deep-check one ``.colseg`` file: returns (rebuilt entry, seqs,
    issue strings).

    Open-time validation covers envelope magic/version, footer shape,
    and column-length agreement; :meth:`ColumnarSegment.verify` adds
    the data-region checksum and footer min/max consistency.  A file
    that fails any of it yields ``(None, [], issues)`` — a binary
    segment has no salvageable prefix the way a torn JSONL file does.
    """
    try:
        reader = ColumnarSegment(path)
    except (ColsegError, OSError) as exc:
        return None, [], [f"unreadable columnar segment {path.name}: {exc}"]
    try:
        issues = [f"{path.name}: {text}" for text in reader.verify()]
        events = list(reader.scan())
    except (ColsegError, ValueError) as exc:
        return None, [], [f"corrupt columnar segment {path.name}: {exc}"]
    finally:
        reader.close()
    if issues:
        return None, [], issues
    if not events:
        return None, [], [f"columnar segment {path.name} holds no events"]
    match = _SEGMENT_RE.match(path.name)
    first_seq = int(match.group(1)) if match else events[0]["seq"]
    entry = _Segment(name=path.name, first_seq=first_seq,
                     format="columnar")
    for event in events:
        entry.note(event)
    entry.sealed = True
    return entry, [event["seq"] for event in events], []


def _truncate_file(path: Path, keep: int) -> None:
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def _write_manifest(root: Path, segments: list[_Segment],
                    next_seq: int, generation: int) -> None:
    import os
    payload = {
        "version": MANIFEST_VERSION,
        "next_seq": next_seq,
        "generation": generation,
        "segments": [segment.to_json() for segment in segments],
    }
    tmp = root / "manifest.json.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, root / "manifest.json")


def _load_manifest(root: Path, report: FsckReport
                   ) -> Optional[tuple[list[_Segment], int, int]]:
    manifest = root / "manifest.json"
    if not manifest.exists():
        report.issue("manifest.json is missing")
        return None
    try:
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r}")
        segments = [_Segment.from_json(s) for s in payload["segments"]]
        return segments, payload["next_seq"], payload.get("generation", 0)
    except (ValueError, KeyError, TypeError) as exc:
        report.issue(f"manifest.json is unreadable: {exc}")
        return None


def fsck(root: Union[str, Path], repair: bool = False) -> FsckReport:
    """Check (and with ``repair=True`` fix) the store under ``root``.

    Always safe on a store no writer currently has open.  Check mode
    never touches the disk; repair mode performs the policy described
    in the module docstring and leaves a store that
    :class:`~repro.observatory.store.EventStore` opens cleanly.
    """
    root = Path(root)
    report = FsckReport(root=str(root), repair=repair)
    if not root.is_dir():
        report.issue(f"not a directory: {root}")
        return report

    loaded = _load_manifest(root, report)
    if loaded is None:
        return _rebuild_from_files(root, report)
    manifest_segments, next_seq, generation = loaded
    known = {segment.name for segment in manifest_segments}

    # Orphaned segment files: on disk, unknown to the manifest.
    for path in _segment_files(root):
        if path.name in known:
            continue
        report.orphan_files += 1
        report.issue(f"orphaned segment file: {path.name}")
        if repair:
            path.rename(path.with_name(path.name + ".orphan"))
            report.action(f"moved {path.name} aside as {path.name}.orphan")

    surviving: list[_Segment] = []
    damaged_from: Optional[int] = None  # seq where the consistent prefix ends
    expected_seq = None
    for position, entry in enumerate(manifest_segments):
        report.segments_checked += 1
        is_active = position == len(manifest_segments) - 1 \
            and not entry.sealed
        path = root / entry.name
        # Compaction folds events *inside* segments, so seqs are gapped
        # — both across and within segments — and only *order* can be
        # checked: overlap is damage, a gap is not.
        if expected_seq is not None and entry.first_seq < expected_seq:
            report.issue(
                f"overlapping seqs before {entry.name}: previous segment "
                f"ends at {expected_seq - 1}, manifest says first_seq "
                f"{entry.first_seq}")
            damaged_from = expected_seq
            break
        if not path.exists():
            if entry.count == 0 and is_active:
                # A crash between sealing and the first append of a new
                # segment legitimately leaves an empty active entry.
                surviving.append(entry)
                expected_seq = entry.first_seq
                continue
            report.missing_segments += 1
            report.issue(f"missing segment file: {entry.name} "
                         f"({entry.count} events)")
            damaged_from = entry.first_seq
            break
        if entry.sealed and entry.sha256 is not None:
            actual = file_sha256(path)
            if actual != entry.sha256:
                report.bitrot_segments += 1
                report.issue(
                    f"bit rot in sealed segment {entry.name}: sha256 "
                    f"{actual[:12]}… != manifest {entry.sha256[:12]}…")
                damaged_from = entry.first_seq
                break
        if entry.format == "columnar":
            rebuilt, seqs, colseg_issues = _scan_columnar(path)
            if rebuilt is None:
                report.bitrot_segments += 1
                for text in colseg_issues:
                    report.issue(text)
                damaged_from = entry.first_seq
                break
            report.events_checked += rebuilt.count
            if seqs[0] != entry.first_seq or _not_ascending(seqs):
                report.issue(f"non-ascending seqs inside {entry.name}")
                damaged_from = entry.first_seq
                break
            rebuilt.sha256 = entry.sha256
            if rebuilt.to_json() != entry.to_json():
                report.drifted_entries += 1
                report.issue(f"manifest entry for {entry.name} does not "
                             f"match segment contents")
            if entry.sha256 is None:
                report.issue(f"sealed segment {entry.name} has no "
                             f"recorded sha256")
                if repair:
                    rebuilt.sha256 = file_sha256(path)
                    report.action(f"recorded sha256 for {entry.name}")
            surviving.append(rebuilt)
            expected_seq = rebuilt.end_seq
            continue
        rebuilt, seqs, torn = _scan_segment(path)
        if torn:
            report.torn_segments += 1
            report.issue(f"torn segment {entry.name}: {torn} trailing "
                         f"bytes are not a complete event line")
            if entry.sealed:
                # A sealed segment must be complete; losing its tail is
                # real damage (its hash, if any, already failed above).
                damaged_from = (seqs[-1] + 1 if seqs else entry.first_seq)
                if repair:
                    _truncate_file(path, path.stat().st_size - torn)
                    report.action(f"cut {torn} torn bytes from {entry.name}")
                if rebuilt is not None:
                    rebuilt.sealed = False
                    surviving.append(rebuilt)
                break
            if repair:
                _truncate_file(path, path.stat().st_size - torn)
                report.action(f"cut {torn} torn bytes from {entry.name}")
        if rebuilt is None:
            rebuilt = _Segment(name=entry.name, first_seq=entry.first_seq)
        report.events_checked += rebuilt.count
        if seqs and (seqs[0] != entry.first_seq or _not_ascending(seqs)):
            report.issue(f"non-ascending seqs inside {entry.name}")
            damaged_from = entry.first_seq
            break
        expected = entry.to_json()
        rebuilt.sealed = entry.sealed
        rebuilt.sha256 = entry.sha256
        if not torn and rebuilt.to_json() != expected:
            report.drifted_entries += 1
            report.issue(f"manifest entry for {entry.name} does not match "
                         f"segment contents")
        if entry.sealed and entry.sha256 is None:
            report.issue(f"sealed segment {entry.name} has no recorded "
                         f"sha256")
            if repair:
                rebuilt.sha256 = file_sha256(path)
                report.action(f"recorded sha256 for {entry.name}")
        surviving.append(rebuilt)
        expected_seq = rebuilt.end_seq

    if damaged_from is not None:
        doomed = max(0, next_seq - damaged_from)
        report.events_lost += doomed
        if repair:
            kept_names = {segment.name for segment in surviving}
            for entry in manifest_segments:
                if entry.first_seq >= damaged_from \
                        and entry.name not in kept_names:
                    stale = root / entry.name
                    if stale.exists():
                        stale.rename(
                            stale.with_name(stale.name + ".orphan"))
                        report.action(f"moved damaged {entry.name} aside")
            next_seq = damaged_from
            report.action(f"truncated store at seq {damaged_from} "
                          f"({doomed} events lost)")
    else:
        tail_end = surviving[-1].end_seq if surviving else 0
        if next_seq != tail_end:
            report.issue(f"manifest next_seq {next_seq} != end of last "
                         f"segment {tail_end}")
            if repair:
                report.action(f"reset next_seq to {tail_end}")
            next_seq = tail_end

    if repair and not report.clean:
        # Reopen the tail for appends — a columnar tail stays sealed
        # (the binary format is immutable; the store appends after it).
        if surviving and surviving[-1].format == "jsonl":
            surviving[-1].sealed = False
            surviving[-1].sha256 = None
        # A new generation: watermark readers must not trust history
        # they read before the repair.
        _write_manifest(root, surviving, next_seq, generation + 1)
        report.action("rewrote manifest.json")
    if report.clean:
        # Only a structurally sound store earns the semantic sweep —
        # on a damaged one every finding would be noise on top of the
        # real (structural) problem.
        _check_forensics(root, report)
    return report


def _check_forensics(root: Path, report: FsckReport) -> None:
    """Semantic sweep of the pre-outbreak forensics records.

    Every ``forensics`` event must carry its identity fields, its
    ``peers`` ring excerpt must be a list, its ``outbreak_id`` must
    pair with an ``outbreak`` event the store actually holds, and the
    prefix embedded in the id must agree with the record's own prefix
    field (federation pins the owning shard off the id, so drift there
    means routed lookups would miss).  Findings are check-level only:
    the snapshot is evidence captured at detection time, and no repair
    can reconstruct it after the fact.
    """
    try:
        store = EventStore(root, readonly=True)
    except (OSError, ValueError):
        return  # structural checks already said everything useful
    try:
        outbreak_ids = set()
        for event in store.events(kinds=("outbreak",)):
            identifier = event.get("id")
            if identifier is not None:
                outbreak_ids.add(identifier)
        for event in store.events(kinds=("forensics",)):
            report.forensics_checked += 1
            where = f"forensics event seq {event.get('seq')}"
            missing = [name for name in ("outbreak_id", "prefix", "peers")
                       if name not in event]
            if missing:
                report.issue(f"{where}: missing field(s) "
                             f"{', '.join(missing)}")
                continue
            if not isinstance(event["peers"], list):
                report.issue(f"{where}: peers is not a list")
            identifier = event["outbreak_id"]
            if identifier not in outbreak_ids:
                report.issue(f"{where}: snapshot for unknown outbreak "
                             f"{identifier!r} (no matching outbreak event)")
            embedded = outbreak_prefix(identifier)
            if not embedded:
                report.issue(f"{where}: malformed outbreak id "
                             f"{identifier!r}")
            elif embedded != event["prefix"]:
                report.issue(f"{where}: prefix {event['prefix']!r} "
                             f"disagrees with outbreak id {identifier!r}")
    finally:
        store.close()


def _rebuild_from_files(root: Path, report: FsckReport) -> FsckReport:
    """Manifest gone or unreadable: reconstruct it from the segment
    files.  Integrity of sealed history can no longer be verified (the
    seal hashes died with the manifest), which the report says out loud."""
    segments: list[_Segment] = []
    expected_seq: Optional[int] = None
    for path in _segment_files(root):
        report.segments_checked += 1
        if path.suffix == ".colseg":
            entry, seqs, colseg_issues = _scan_columnar(path)
            if entry is None:
                report.bitrot_segments += 1
                for text in colseg_issues:
                    report.issue(text)
                if report.repair:
                    path.rename(path.with_name(path.name + ".orphan"))
                    report.action(f"moved corrupt {path.name} aside")
                continue
        else:
            entry, seqs, torn = _scan_segment(path)
            if torn:
                report.torn_segments += 1
                report.issue(f"torn segment {path.name}: {torn} "
                             f"trailing bytes")
                if report.repair:
                    _truncate_file(path, path.stat().st_size - torn)
                    report.action(f"cut {torn} torn bytes from {path.name}")
            if entry is None:
                continue
        # Seq gaps are legitimate (compaction folds events in place),
        # so only *order* violations condemn a file here.
        if expected_seq is not None and entry.first_seq < expected_seq:
            report.issue(f"overlapping seqs before {path.name}: previous "
                         f"file ends at {expected_seq - 1}, this one "
                         f"starts at {entry.first_seq}")
            report.events_lost += entry.count
            if report.repair:
                path.rename(path.with_name(path.name + ".orphan"))
                report.action(f"moved overlapping {path.name} aside")
            continue
        report.events_checked += entry.count
        if seqs[0] != entry.first_seq or _not_ascending(seqs):
            report.issue(f"non-ascending seqs inside {path.name}")
            report.events_lost += entry.count
            if report.repair:
                path.rename(path.with_name(path.name + ".orphan"))
                report.action(f"moved inconsistent {path.name} aside")
            continue
        entry.sealed = True
        if report.repair:
            entry.sha256 = file_sha256(path)
        segments.append(entry)
        expected_seq = entry.end_seq
    report.issue("sealed-history integrity is unverifiable without the "
                 "original manifest hashes")
    if report.repair:
        next_seq = segments[-1].end_seq if segments else 0
        if segments and segments[-1].format == "jsonl":
            segments[-1].sealed = False
            segments[-1].sha256 = None
        _write_manifest(root, segments, next_seq,
                        _salvage_generation(root))
        report.manifest_rebuilt = True
        report.action("rebuilt manifest.json from segment files")
    return report


def _salvage_generation(root: Path) -> int:
    """A generation for the rebuilt manifest that is unambiguously new.

    A tailing reader (views/ETags) that knew generation N would miss
    the history rewrite if the rebuilt store landed on a generation it
    had already seen — which hardcoding a constant does for any store
    that was ever truncated/compacted.  Best effort: fish the old value
    out of whatever manifest bytes remain and go one past it; with
    nothing to salvage, fall back to the epoch clock, far above any
    incrementally bumped generation."""
    best = None
    for name in ("manifest.json", "manifest.json.tmp"):
        try:
            text = (root / name).read_text(encoding="utf-8",
                                           errors="replace")
        except OSError:
            continue
        for match in re.findall(r'"generation"\s*:\s*(\d+)', text):
            value = int(match)
            best = value if best is None else max(best, value)
    if best is not None:
        return best + 1
    import time
    return int(time.time())


def fleet_shard_roots(root: Union[str, Path]) -> list[Path]:
    """Shard store roots under a fleet directory, shard-index order.

    A directory counts as a shard store when it matches the fleet's
    ``shard-NN`` naming and holds either a ``shard.json`` sidecar (a
    routed shard) or a store manifest (a shard mid-initialization).
    An empty list means ``root`` is not a fleet root.
    """
    root = Path(root)
    return sorted(path for path in root.glob("shard-*")
                  if path.is_dir() and ((path / "shard.json").exists()
                                        or (path / "manifest.json").exists()))


def fsck_fleet(root: Union[str, Path],
               repair: bool = False) -> dict[str, FsckReport]:
    """Run :func:`fsck` over every shard store of a fleet root.

    Shards are independent stores with independent failure domains, so
    the fan-out is just one report per shard, keyed by shard name —
    damage in one shard never blocks checking (or repairing) the rest.
    """
    shard_roots = fleet_shard_roots(root)
    if not shard_roots:
        raise FileNotFoundError(f"{root}: no shard stores (shard-*/ "
                                f"directories) found")
    return {path.name: fsck(path, repair=repair) for path in shard_roots}
