"""Fault-tolerant scatter-gather query tier over a shard fleet.

One :class:`FederatedObservatoryServer` fronts N shard observatories
(:mod:`repro.observatory.fleet`) and answers the same API a monolithic
observatory answers — and, when every shard is healthy, answers it
**byte-identically**: shard stores preserve global seqs, every listing
has a deterministic total order (seq / prefix / ``(time, seq)``), and a
k-way merge of per-shard pages reconstructs exactly the page a single
store would have served, ``next_cursor`` included.  The pagination
algebra is the reason the identity holds under paging: every shard is
asked with the *same* ``limit`` and ``cursor``, so the first ``limit``
rows of the global listing after the cursor are all contained in the
union of the per-shard pages; more rows exist globally iff the union
overflows the limit or any shard reported a ``next_cursor`` of its own.

The point of the tier, though, is how it behaves when shards *don't*
answer.  Degradation is graceful and explicit, never silent:

* every shard fetch runs under a hard per-request **deadline**; connect
  errors (and only connect errors — an accepted request may have side
  effects some day) are retried with jittered exponential backoff
  inside that deadline;
* per-shard **circuit breakers** stop hammering a dead shard: after
  ``breaker_threshold`` consecutive failures the circuit opens and the
  shard is declared down for ``breaker_open_seconds`` without paying
  the deadline, then a single half-open probe decides between closing
  the circuit and re-opening it;
* optionally a **hedged** second request races the first after
  ``hedge_after`` seconds (tail-latency insurance, paid only when the
  shard is slow);
* a missing shard removes its rows from the merged answer, sets the
  ``X-Observatory-Partial`` header to the missing shard names, and the
  answer still returns within the deadline.

Revalidation survives all of that because the **ETag is a vector** of
per-shard ``(generation, next_seq)`` positions — ``"0:1-52|1:down|2:1-48-<digest>"``
— so a shard restart (same position), a shard death (``down`` component)
and a shard catch-up (position advance) each change exactly the
component they should: a 304 is only served when every shard that
contributed to the cached answer is in the same logical position, and a
partial answer can never revalidate against a complete one.  Cursors
need no vector: they are global sort keys, meaningful against every
shard, so a pagination walk survives shard restarts unchanged.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import random
import time
from typing import Any, Callable, Optional
from urllib.parse import unquote, urlencode, urlsplit

from repro.observatory.asyncserver import AsyncHTTPTransport
from repro.observatory.fleet import shard_for, shard_name
from repro.observatory.forensics import outbreak_prefix
from repro.observatory.server import (
    CACHE_CONTROL,
    ObservatoryApp,
    _BadRequest,
    forensics_outbreak_id,
)
from repro.observatory.views import CursorError, pair_cursor, seq_cursor

__all__ = ["CircuitBreaker", "FederatedObservatoryServer", "PARTIAL_HEADER",
           "ShardUnavailable"]

#: Names the shards missing from a degraded merged answer.
PARTIAL_HEADER = "X-Observatory-Partial"


class ShardUnavailable(Exception):
    """A shard that cannot be asked right now (circuit open, connect
    failure after retries, deadline exceeded, or a non-answer)."""


class CircuitBreaker:
    """Per-shard circuit breaker: closed → open → half-open.

    Closed: requests flow; ``threshold`` *consecutive* failures open
    the circuit.  Open: requests are refused outright for
    ``open_seconds`` — a dead shard costs nothing instead of a deadline
    per query.  Half-open: exactly one probe request is let through;
    success closes the circuit, failure re-opens it for another
    ``open_seconds``.

    Confined to the server's event loop, so no locking.
    """

    def __init__(self, threshold: int = 3, open_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = threshold
        self.open_seconds = open_seconds
        self._clock = clock
        self.failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.open_seconds:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        state = self.state
        if state == "closed":
            return True
        if state == "open":
            return False
        if self._probing:
            return False  # one probe at a time
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self._opened_at = self._clock()


#: Listing endpoint -> (body key, row sort key, next_cursor formatter,
#: local param validator replicating the monolithic validation order).
def _validate_outbreaks(params: dict) -> None:
    cursor = _param(params, "cursor")
    if cursor is not None:
        seq_cursor(cursor)
    _int_param(params, "since")
    _int_param(params, "until")


def _validate_zombies(params: dict) -> None:
    pass  # the prefix-string cursor accepts anything


def _validate_resurrections(params: dict) -> None:
    _int_param(params, "since")
    _int_param(params, "until")
    cursor = _param(params, "cursor")
    if cursor is not None:
        pair_cursor(cursor)


LISTINGS: dict[str, dict[str, Any]] = {
    "/outbreaks": {
        "name": "outbreaks",
        "key": lambda row: row["seq"],
        "format": str,
        "validate": _validate_outbreaks,
    },
    "/zombies": {
        "name": "zombies",
        "key": lambda row: row["prefix"],
        "format": lambda key: key,
        "validate": _validate_zombies,
    },
    "/resurrections": {
        "name": "resurrections",
        "key": lambda row: (row["time"], row["seq"]),
        "format": lambda key: f"{key[0]}:{key[1]}",
        "validate": _validate_resurrections,
    },
}


def _param(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[0] if values else None


def _int_param(params: dict, name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer")


def _limit_param(params: dict) -> Optional[int]:
    limit = _int_param(params, "limit")
    if limit is not None and limit <= 0:
        raise _BadRequest("parameter 'limit' must be a positive integer")
    return limit


class FederatedObservatoryServer(AsyncHTTPTransport):
    """Scatter-gather observatory API over shard servers.

    ``shard_urls`` are the shard base URLs in shard-index order (the
    index *is* the routing function's output, so order matters); pass a
    live :class:`~repro.observatory.fleet.ShardFleet` as ``fleet`` to
    fold supervisor state into ``/healthz``.
    """

    #: Merged 200s kept, keyed by canonical query (same budget as the
    #: monolithic response cache).
    CACHE_ENTRIES = 128

    def __init__(self, shard_urls: list[str], host: str = "127.0.0.1",
                 port: int = 0, *, shard_names: Optional[list[str]] = None,
                 deadline: float = 2.0, retries: int = 1,
                 backoff: float = 0.05, backoff_cap: float = 1.0,
                 jitter: float = 0.5, seed: int = 0,
                 breaker_threshold: int = 3, breaker_open_seconds: float = 5.0,
                 hedge_after: Optional[float] = None, fleet=None,
                 drain_timeout: float = 5.0):
        super().__init__(host=host, port=port, drain_timeout=drain_timeout)
        if not shard_urls:
            raise ValueError("need at least one shard URL")
        self.shard_urls = list(shard_urls)
        self.shard_names = (list(shard_names) if shard_names is not None
                            else [shard_name(index)
                                  for index in range(len(shard_urls))])
        if len(self.shard_names) != len(self.shard_urls):
            raise ValueError("need one shard name per shard URL")
        self.deadline = deadline
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.hedge_after = hedge_after
        self.fleet = fleet
        self._rng = random.Random(seed)
        self.breakers = [CircuitBreaker(breaker_threshold,
                                        breaker_open_seconds)
                         for _ in shard_urls]
        # All state below is event-loop-confined: no locks.
        self._cache: dict[str, dict[str, Any]] = {}
        self.requests_served = 0
        self.responses_dropped = 0
        self.not_modified_served = 0
        self.partial_responses = 0
        self.retried_connects = 0
        self.hedged_requests = 0
        self.shard_failures = [0] * len(shard_urls)
        self._shard_up = [True] * len(shard_urls)

    # -- transport hooks ---------------------------------------------------

    def count_request(self) -> None:
        self.requests_served += 1

    def count_dropped_response(self) -> None:
        self.responses_dropped += 1

    async def _dispatch(self, path: str, params: dict,
                        headers: dict[str, str],
                        writer: asyncio.StreamWriter,
                        keep_alive: bool) -> bool:
        self.count_request()
        status, response_headers, payload = await self.respond(
            path, params, headers.get("if-none-match"))
        self._write_head(writer, status, response_headers, keep_alive)
        writer.write(payload)
        await writer.drain()
        return keep_alive

    # -- one-request entry point ------------------------------------------

    async def respond(self, path: str, params: dict,
                      if_none_match: Optional[str] = None
                      ) -> tuple[int, list[tuple[str, str]], bytes]:
        """Answer one GET, federated: ``(status, headers, payload)``."""
        try:
            if path == "/metrics":
                return await self._metrics()
            if path == "/healthz":
                return await self._healthz()
            if path in LISTINGS:
                return await self._listing(path, params, if_none_match)
            if path.startswith("/zombies/"):
                return await self._routed(
                    path, if_none_match, unquote(path[len("/zombies/"):]))
            outbreak = forensics_outbreak_id(path)
            if outbreak is not None:
                # The outbreak ID leads with its prefix, and the shard
                # router partitions forensics events by that same
                # prefix — so the ID alone names the single owner.
                return await self._routed(
                    path, if_none_match, outbreak_prefix(outbreak))
            return ObservatoryApp._json_response(
                404, {"error": f"no such resource: {path}"})
        except (_BadRequest, CursorError) as exc:
            return ObservatoryApp._json_response(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - bugs become 500s
            return ObservatoryApp._json_response(
                500, {"error": "internal server error: "
                               f"{type(exc).__name__}: {exc}"})

    # -- shard fetch -------------------------------------------------------

    async def _http_get(self, index: int, target: str,
                        if_none_match: Optional[str]
                        ) -> tuple[int, dict[str, str], bytes]:
        """One raw HTTP GET to one shard; connect errors are retried
        with jittered exponential backoff, anything after the connect
        is not (the shard may already be acting on the request)."""
        split = urlsplit(self.shard_urls[index])
        attempt = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    split.hostname, split.port)
            except OSError:
                if attempt >= self.retries:
                    raise
                self.retried_connects += 1
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** attempt))
                await asyncio.sleep(
                    delay + self.jitter * delay * self._rng.random())
                attempt += 1
                continue
            try:
                lines = [f"GET {target} HTTP/1.1",
                         f"Host: {split.hostname}:{split.port}",
                         "Connection: close"]
                if if_none_match is not None:
                    lines.append(f"If-None-Match: {if_none_match}")
                writer.write(("\r\n".join(lines) + "\r\n\r\n"
                              ).encode("latin-1"))
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status, headers = self._parse_response_head(head)
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                return status, headers, body
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass

    @staticmethod
    def _parse_response_head(head: bytes) -> tuple[int, dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"bad status line: {lines[0]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return int(parts[1]), headers

    async def _hedged_get(self, index: int, target: str,
                          if_none_match: Optional[str]
                          ) -> tuple[int, dict[str, str], bytes]:
        """The fetch, optionally hedged: if the primary request has not
        answered within ``hedge_after``, race a second one and take the
        first answer."""
        if self.hedge_after is None:
            return await self._http_get(index, target, if_none_match)
        primary = asyncio.ensure_future(
            self._http_get(index, target, if_none_match))
        try:
            return await asyncio.wait_for(asyncio.shield(primary),
                                          self.hedge_after)
        except asyncio.TimeoutError:
            pass
        except asyncio.CancelledError:
            primary.cancel()
            raise
        self.hedged_requests += 1
        backup = asyncio.ensure_future(
            self._http_get(index, target, if_none_match))
        pending = {primary, backup}
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    if task.exception() is None:
                        return task.result()
            raise primary.exception()  # both failed: surface the primary's
        finally:
            for task in pending:
                task.cancel()

    async def _ask_shard(self, index: int, target: str,
                         if_none_match: Optional[str] = None
                         ) -> tuple[int, dict[str, str], bytes]:
        """Deadline-bounded, breaker-gated fetch from one shard."""
        breaker = self.breakers[index]
        if not breaker.allow():
            raise ShardUnavailable(
                f"{self.shard_names[index]}: circuit open")
        try:
            result = await asyncio.wait_for(
                self._hedged_get(index, target, if_none_match),
                timeout=self.deadline)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            breaker.record_failure()
            self.shard_failures[index] += 1
            self._shard_up[index] = False
            raise ShardUnavailable(
                f"{self.shard_names[index]}: {type(exc).__name__}: {exc}"
                ) from exc
        breaker.record_success()
        self._shard_up[index] = True
        return result

    async def _scatter(self, target: str,
                       if_none_match: Optional[dict[int, str]] = None
                       ) -> dict[int, tuple[int, dict[str, str], bytes]]:
        """Ask every shard; missing shards are simply absent from the
        result (the callers decide what absence means)."""
        conditions = if_none_match or {}
        tasks = [self._ask_shard(index, target, conditions.get(index))
                 for index in range(len(self.shard_urls))]
        settled = await asyncio.gather(*tasks, return_exceptions=True)
        results: dict[int, tuple[int, dict[str, str], bytes]] = {}
        for index, outcome in enumerate(settled):
            if isinstance(outcome, BaseException):
                continue
            results[index] = outcome
        return results

    # -- vector ETags ------------------------------------------------------

    @staticmethod
    def _position_of(etag: Optional[str]) -> Optional[str]:
        """``(generation, next_seq)`` component of a shard's strong
        ETag (``"gen-next-digest"``), or ``None`` if unparseable."""
        if not etag:
            return None
        parts = etag.strip('"').split("-")
        if len(parts) != 3:
            return None
        return f"{parts[0]}-{parts[1]}"

    def _vector_etag(self, canon: str, etags: dict[int, Optional[str]],
                     missing: set[int]) -> str:
        digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]
        components = []
        for index in range(len(self.shard_urls)):
            if index in missing:
                components.append(f"{index}:down")
            else:
                components.append(
                    f"{index}:{self._position_of(etags.get(index))}")
        return '"' + "|".join(components) + "-" + digest + '"'

    @staticmethod
    def _etag_matches(etag: str, header: Optional[str]) -> bool:
        if not header:
            return False
        return etag in (value.strip() for value in header.split(","))

    # -- listings ----------------------------------------------------------

    @staticmethod
    def _canon(path: str, params: dict) -> str:
        return path + "?" + "&".join(
            f"{key}={value}"
            for key in sorted(params)
            for value in params[key])

    @staticmethod
    def _target(path: str, params: dict) -> str:
        query = urlencode([(key, value)
                           for key in sorted(params)
                           for value in params[key]])
        return path + ("?" + query if query else "")

    def _missing_names(self, missing: set[int]) -> str:
        return ",".join(self.shard_names[index] for index in sorted(missing))

    async def _listing(self, path: str, params: dict,
                       if_none_match: Optional[str]
                       ) -> tuple[int, list[tuple[str, str]], bytes]:
        spec = LISTINGS[path]
        limit = _limit_param(params)
        spec["validate"](params)
        cursor = _param(params, "cursor")
        canon = self._canon(path, params)
        target = self._target(path, params)
        entry = self._cache.get(canon)
        conditions = dict(entry["etags"]) if entry else {}
        results = await self._scatter(target, conditions)
        missing = set(range(len(self.shard_urls))) - set(results)
        etags: dict[int, Optional[str]] = {}
        bodies: dict[int, dict[str, Any]] = {}
        for index, (status, headers, payload) in results.items():
            if status == 304 and entry is not None \
                    and index in entry["bodies"]:
                etags[index] = entry["etags"].get(index)
                bodies[index] = entry["bodies"][index]
            elif status == 200:
                etags[index] = headers.get("etag")
                bodies[index] = json.loads(payload)
            else:
                # A shard that answers but not usefully (a raced 304
                # with nothing cached, a 5xx) is missing, not wrong.
                missing.add(index)
        fed_etag = self._vector_etag(canon, etags, missing)
        partial = [(PARTIAL_HEADER, self._missing_names(missing))] \
            if missing else []
        if missing:
            self.partial_responses += 1
        if self._etag_matches(fed_etag, if_none_match):
            self.not_modified_served += 1
            return 304, [("ETag", fed_etag),
                         ("Cache-Control", CACHE_CONTROL),
                         ("Content-Length", "0")] + partial, b""
        if entry is not None and entry["fed_etag"] == fed_etag:
            payload = entry["payload"]
        else:
            body = self._merge(spec, bodies, limit, cursor)
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            self._remember(canon, {"etags": etags, "bodies": bodies,
                                   "fed_etag": fed_etag,
                                   "payload": payload})
        return 200, [("Content-Type", "application/json"),
                     ("Content-Length", str(len(payload))),
                     ("ETag", fed_etag),
                     ("Cache-Control", CACHE_CONTROL)] + partial, payload

    def _remember(self, canon: str, entry: dict[str, Any]) -> None:
        self._cache.pop(canon, None)
        self._cache[canon] = entry
        while len(self._cache) > self.CACHE_ENTRIES:
            self._cache.pop(next(iter(self._cache)))

    def _merge(self, spec: dict[str, Any],
               bodies: dict[int, dict[str, Any]],
               limit: Optional[int], cursor: Optional[str]
               ) -> dict[str, Any]:
        """Merge per-shard pages into exactly the page one store would
        serve (see the module docstring for why the algebra is exact)."""
        name, key = spec["name"], spec["key"]
        rows: list[dict[str, Any]] = []
        for body in bodies.values():
            rows.extend(body[name])
        rows.sort(key=key)
        if limit is None and cursor is None:
            return {"count": len(rows), name: rows}
        page = rows[:limit] if limit is not None else rows
        more = limit is not None and (
            len(rows) > limit
            or any(body.get("next_cursor") is not None
                   for body in bodies.values()))
        next_cursor = spec["format"](key(page[-1])) if page and more else None
        return {"count": len(page), name: page, "next_cursor": next_cursor}

    # -- single-owner routes -----------------------------------------------

    async def _routed(self, path: str, if_none_match: Optional[str],
                      pin_prefix: str
                      ) -> tuple[int, list[tuple[str, str]], bytes]:
        """A single-owner route (``/zombies/<prefix>``,
        ``/outbreaks/<id>/forensics``) lives on exactly one shard —
        the one ``pin_prefix`` hashes to: forward the request verbatim
        and pass the answer through byte-for-byte (the shard's scalar
        ETag is already restart-stable)."""
        owner = shard_for(pin_prefix, len(self.shard_urls))
        try:
            status, headers, payload = await self._ask_shard(
                owner, path, if_none_match)
        except ShardUnavailable as exc:
            self.partial_responses += 1
            retry_after = max(1, math.ceil(self.breakers[owner].open_seconds))
            status, error_headers, payload = ObservatoryApp._json_response(
                503, {"error": f"shard unavailable: {exc}"})
            return status, error_headers + [
                ("Retry-After", str(retry_after)),
                (PARTIAL_HEADER, self.shard_names[owner])], payload
        if status == 304:
            self.not_modified_served += 1
        passthrough = [(header_name, headers[header_key])
                       for header_name, header_key in
                       (("Content-Type", "content-type"),
                        ("ETag", "etag"),
                        ("Cache-Control", "cache-control"))
                       if header_key in headers]
        passthrough.append(("Content-Length", str(len(payload))))
        return status, passthrough, payload

    # -- health ------------------------------------------------------------

    async def _healthz(self) -> tuple[int, list[tuple[str, str]], bytes]:
        results = await self._scatter("/healthz")
        shards: dict[str, Any] = {}
        for index in range(len(self.shard_urls)):
            answer = results.get(index)
            if answer is None or answer[0] != 200:
                shards[self.shard_names[index]] = None
            else:
                shards[self.shard_names[index]] = json.loads(answer[2])
        missing = {index for index in range(len(self.shard_urls))
                   if shards[self.shard_names[index]] is None}
        if not missing:
            status_word = "ok"
        elif len(missing) < len(self.shard_urls):
            status_word = "degraded"
        else:
            status_word = "stalled"
        body: dict[str, Any] = {
            "status": status_word,
            "shard_count": len(self.shard_urls),
            "missing": [self.shard_names[index] for index in sorted(missing)],
            "breakers": {self.shard_names[index]: breaker.state
                         for index, breaker in enumerate(self.breakers)},
            "shards": shards,
        }
        if self.fleet is not None:
            body["fleet"] = self.fleet.stats()
        headers = []
        if missing:
            self.partial_responses += 1
            headers.append((PARTIAL_HEADER, self._missing_names(missing)))
        status, base_headers, payload = ObservatoryApp._json_response(
            200, body)
        return status, base_headers + headers, payload

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _relabel(line: str, shard: str) -> str:
        """Inject a ``shard`` label into one sample line."""
        name, _, value = line.partition(" ")
        if "{" in name:
            metric, _, labels = name.partition("{")
            return f'{metric}{{shard="{shard}",{labels} {value}'
        return f'{name}{{shard="{shard}"}} {value}'

    async def _metrics(self) -> tuple[int, list[tuple[str, str]], bytes]:
        results = await self._scatter("/metrics")
        lines: list[str] = []
        described: set[str] = set()

        def metric(name: str, value, help_text: str,
                   labels: str = "") -> None:
            if name not in described:
                kind = "counter" if name.endswith("_total") else "gauge"
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                described.add(name)
            lines.append(f"{name}{labels} {value}")

        metric("observatory_federation_requests_total", self.requests_served,
               "HTTP requests served by the federated query tier.")
        metric("observatory_federation_not_modified_total",
               self.not_modified_served,
               "Conditional requests answered 304 from the vector ETag.")
        metric("observatory_federation_partial_responses_total",
               self.partial_responses,
               "Merged answers missing at least one shard.")
        metric("observatory_federation_responses_dropped_total",
               self.responses_dropped,
               "Responses dropped because the client disconnected.")
        metric("observatory_federation_retried_connects_total",
               self.retried_connects,
               "Shard connect attempts retried after a connect error.")
        metric("observatory_federation_hedged_requests_total",
               self.hedged_requests,
               "Hedged second requests launched against slow shards.")
        for index, name in enumerate(self.shard_names):
            metric("observatory_federation_shard_up",
                   1 if self._shard_up[index] else 0,
                   "Whether the last exchange with the shard succeeded.",
                   labels=f'{{shard="{name}"}}')
            metric("observatory_federation_shard_failures_total",
                   self.shard_failures[index],
                   "Failed shard exchanges (deadline, connect, refusal).",
                   labels=f'{{shard="{name}"}}')
            for state in ("closed", "open", "half-open"):
                metric("observatory_federation_circuit_state",
                       1 if self.breakers[index].state == state else 0,
                       "Per-shard circuit-breaker state (one-hot).",
                       labels=f'{{shard="{name}",state="{state}"}}')
        # Shard expositions, relabeled: every per-shard series gains a
        # shard label; HELP/TYPE are kept once per metric name.
        for index in sorted(results):
            status, _, payload = results[index]
            if status != 200:
                continue
            shard = self.shard_names[index]
            keep_type_for: Optional[str] = None
            for line in payload.decode("utf-8").splitlines():
                if not line:
                    continue
                if line.startswith("# HELP "):
                    metric_name = line.split()[2]
                    if metric_name not in described:
                        described.add(metric_name)
                        lines.append(line)
                        keep_type_for = metric_name
                    else:
                        keep_type_for = None
                    continue
                if line.startswith("# TYPE "):
                    # TYPE follows its HELP in every exposition we
                    # merge; keep it only for first sightings.
                    if line.split()[2] == keep_type_for:
                        lines.append(line)
                    continue
                lines.append(self._relabel(line, shard))
        return ObservatoryApp._text_response(200, "\n".join(lines) + "\n")
