"""Sharded observatory fleet: one ingest+serve worker per shard.

The paper's measurement plane is federated — zombies are detected per
RIS collector and aggregated into one answer.  This module is the shard
side of that split; :mod:`repro.observatory.federation` is the query
tier in front of it.

**Routing.**  :func:`shard_for` hashes an event's prefix with a stable
hash (crc32 — Python's built-in ``hash`` is salted per process and
useless for cross-process routing), so every process — partitioner,
worker, federated query tier — agrees on which shard owns a prefix
without coordination.

**Global seqs.**  Shard stores keep the *source* store's seqs
(``EventStore.append(seq=...)``), holding a gapped-but-ascending subset
of the global stream.  That single decision is what makes federation
honest: merged listings sorted by seq are byte-identical to a
monolithic observatory — including every event's ``seq`` and every
``next_cursor`` — and a pagination cursor is meaningful against any
shard with no translation.  Gapped histories are already first-class in
the store (compaction folds events in place), so nothing downstream
needed to learn anything new.

**Workers.**  A :class:`ShardWorker` tails a source event store
(readonly, the same concurrent-reader protocol the views use), appends
the events it owns to its private shard store seq-preserved, and serves
that store through a full :class:`AsyncObservatoryServer` — views,
ETags, pagination, SSE and all.  Its durable resume point is the shard
store's own ``next_seq``: routing scans the source in ascending seq
order, so everything below the last routed seq has been considered,
and a restarted worker re-scans at most the filtered suffix once.  A
source generation bump (truncate/compact/repair upstream) rebuilds the
shard store from scratch, exactly like the materialized views.

**Fleet.**  :class:`ShardFleet` supervises one worker *subprocess* per
shard — a real process, so ``kill -9`` chaos tests exercise the real
failure — with the PR-4 supervisor state machine: seeded-jitter
exponential backoff between restarts, a consecutive-failure budget,
and a healthy/degraded/stalled state per shard and fleet-wide.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import zlib
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.observatory.asyncserver import AsyncObservatoryServer
from repro.observatory.store import EventStore

__all__ = ["ShardFleet", "ShardWorker", "partition_store", "pick_free_port",
           "shard_for", "shard_name"]

#: Shard worker states (the supervisor vocabulary, reused fleet-wide).
STATES = ("healthy", "degraded", "stalled")

SIDECAR_NAME = "shard.json"


def shard_for(prefix: str, count: int) -> int:
    """Which of ``count`` shards owns ``prefix`` — stable across
    processes and Python versions (crc32, not the salted ``hash``)."""
    if count <= 0:
        raise ValueError("shard count must be positive")
    return zlib.crc32(prefix.encode("utf-8")) % count


def shard_name(index: int) -> str:
    """Canonical shard directory/display name (``shard-00`` ...)."""
    return f"shard-{index:02d}"


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-and-release)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _event_payload(event: dict[str, Any]) -> dict[str, Any]:
    return {key: value for key, value in event.items()
            if key not in ("seq", "time", "kind")}


def _routing_key(event: dict[str, Any]) -> str:
    # Every observatory event kind carries a prefix; anything that does
    # not still needs exactly one deterministic owner.
    return event.get("prefix") or ""


def _write_sidecar(root: Path, index: int, count: int,
                   source_generation: Optional[int]) -> None:
    payload = {"version": 1, "index": index, "count": count,
               "source_generation": source_generation}
    tmp = root / (SIDECAR_NAME + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, root / SIDECAR_NAME)


def _read_sidecar(root: Path) -> Optional[dict[str, Any]]:
    path = root / SIDECAR_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def partition_store(source_root: Union[str, Path],
                    fleet_root: Union[str, Path], count: int) -> list[Path]:
    """Split one event store into ``count`` shard stores under
    ``fleet_root``, routing by prefix hash and preserving every event's
    global seq.  Returns the shard store roots (created even for shards
    that end up empty)."""
    source = EventStore(source_root, readonly=True)
    generation, next_seq = source.position()
    fleet_root = Path(fleet_root)
    roots = [fleet_root / shard_name(index) for index in range(count)]
    stores = [EventStore(root) for root in roots]
    try:
        for event in source.events():
            if event["seq"] >= next_seq:
                break
            stores[shard_for(_routing_key(event), count)].append(
                event["kind"], event["time"], _event_payload(event),
                seq=event["seq"])
    finally:
        for index, store in enumerate(stores):
            store.close()
            _write_sidecar(roots[index], index, count, generation)
    return roots


class ShardWorker:
    """One shard: tail the source store, keep what it owns, serve it.

    The shard store lives at ``shard_root`` with a ``shard.json``
    sidecar pinning ``(index, count)`` — reopening a shard under a
    different fleet geometry is refused rather than silently served
    wrong — plus the source generation its contents were routed from.
    """

    def __init__(self, source_root: Union[str, Path],
                 shard_root: Union[str, Path], index: int, count: int,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_interval: float = 0.05, use_view: bool = True):
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} out of range for "
                             f"{count} shard(s)")
        self.index = index
        self.count = count
        self.name = shard_name(index)
        self.poll_interval = poll_interval
        self.shard_root = Path(shard_root)
        self.store = EventStore(self.shard_root)
        sidecar = _read_sidecar(self.shard_root)
        if sidecar is not None and (sidecar.get("index") != index
                                    or sidecar.get("count") != count):
            raise ValueError(
                f"{self.shard_root} belongs to shard "
                f"{sidecar.get('index')}/{sidecar.get('count')}, not "
                f"{index}/{count}")
        self._source_generation: Optional[int] = (
            sidecar.get("source_generation") if sidecar is not None else None)
        self.source = EventStore(source_root, readonly=True)
        self.server = AsyncObservatoryServer(self.store, host=host,
                                             port=port, use_view=use_view)
        self.server.healthz_extra = {
            "shard": {"name": self.name, "index": index, "count": count}}
        self.events_routed = 0
        self.rebuilds = 0
        #: Source seqs below this were already considered (routed or
        #: skipped).  In-memory only: on restart it re-anchors at the
        #: shard store's next_seq, costing one re-scan of the filtered
        #: suffix — never a duplicate (min_seq skips everything routed).
        self._watermark = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- routing ----------------------------------------------------------

    def sync_once(self) -> int:
        """One tail pass: route everything new; returns events appended."""
        generation, next_seq = self.source.position()
        if generation != self._source_generation:
            # History behind us was rewritten upstream: rebuild, exactly
            # like the materialized views on a generation bump.
            if self._source_generation is not None or self.store.next_seq:
                self.store.truncate(0)
                self.rebuilds += 1
            self._source_generation = generation
            self._watermark = 0
            _write_sidecar(self.shard_root, self.index, self.count,
                           generation)
        appended = 0
        start = max(self._watermark, self.store.next_seq)
        for event in self.source.events(min_seq=start):
            seq = event["seq"]
            if seq >= next_seq:
                break  # appended after position() was read: next pass
            if shard_for(_routing_key(event), self.count) == self.index:
                self.store.append(event["kind"], event["time"],
                                  _event_payload(event), seq=seq)
                appended += 1
            self._watermark = seq + 1
        self._watermark = max(self._watermark, next_seq)
        if appended:
            self.store.sync()
            self.events_routed += appended
        return appended

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.sync_once()
            except FileNotFoundError:
                pass  # source mid-rewrite: retry next pass
            self._stop.wait(self.poll_interval)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ShardWorker":
        self.server.start()
        self._thread = threading.Thread(target=self._tail_loop,
                                        name=f"{self.name}-tail", daemon=True)
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.server.stop()
        self.store.close()

    def run_forever(self) -> int:
        """Foreground mode (the ``fleet worker`` subprocess entry):
        serve until SIGTERM/SIGINT, then drain and exit 0."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self._stop.set())
        self.server.start()
        thread = threading.Thread(target=self._tail_loop,
                                  name=f"{self.name}-tail", daemon=True)
        thread.start()
        print(f"{self.name} serving {self.shard_root} on {self.server.url} "
              f"({self.index + 1}/{self.count})", flush=True)
        while not self._stop.is_set():
            # signal.sigwait would miss KeyboardInterrupt on some
            # platforms; a polled Event is portable and cheap.
            self._stop.wait(0.2)
        thread.join(timeout=10)
        self.server.stop()
        self.store.close()
        return 0


class ShardFleet:
    """Supervise one :class:`ShardWorker` subprocess per shard.

    Workers are real processes (``python -m repro observatory fleet
    worker ...``), so a ``kill -9`` in a chaos test dies the way a
    production worker dies.  The supervisor loop restarts dead workers
    after an exponential backoff with seeded jitter and gives up on a
    shard after ``max_restarts`` consecutive failures — the PR-4
    supervisor state machine, applied fleet-wide:

    ``healthy``   every worker running, no restarts;
    ``degraded``  forward progress, but restarts happened (or a worker
                  is between death and its scheduled restart);
    ``stalled``   a shard exhausted its restart budget (or restarts are
                  held) and is down.
    """

    def __init__(self, source_root: Union[str, Path],
                 fleet_root: Union[str, Path], shards: int = 3,
                 host: str = "127.0.0.1",
                 ports: Optional[list[int]] = None,
                 poll_interval: float = 0.05,
                 backoff: float = 0.2, backoff_cap: float = 5.0,
                 jitter: float = 0.2, seed: int = 0,
                 max_restarts: int = 5, monitor_interval: float = 0.2,
                 python: str = sys.executable,
                 clock: Callable[[], float] = time.monotonic):
        if shards <= 0:
            raise ValueError("need at least one shard")
        self.source_root = Path(source_root)
        self.fleet_root = Path(fleet_root)
        self.shards = shards
        self.host = host
        self.poll_interval = poll_interval
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.max_restarts = max_restarts
        self.monitor_interval = monitor_interval
        self.python = python
        self._clock = clock
        self._rng = random.Random(seed)
        self.ports = list(ports) if ports is not None else [
            pick_free_port(host) for _ in range(shards)]
        if len(self.ports) != shards:
            raise ValueError("need one port per shard")
        #: Chaos hook: with auto_restart False the monitor observes
        #: deaths but never respawns (tests hold a shard down, assert
        #: partial answers, then flip it back on).
        self.auto_restart = True
        self.restarts = [0] * shards
        self._procs: list[Optional[subprocess.Popen]] = [None] * shards
        self._consecutive = [0] * shards
        self._gave_up = [False] * shards
        self._restart_at: list[Optional[float]] = [None] * shards
        self._last_ok: list[Optional[float]] = [None] * shards
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self._wake = threading.Event()

    # -- addressing -------------------------------------------------------

    def shard_root(self, index: int) -> Path:
        return self.fleet_root / shard_name(index)

    def shard_url(self, index: int) -> str:
        return f"http://{self.host}:{self.ports[index]}"

    def shard_urls(self) -> list[str]:
        return [self.shard_url(index) for index in range(self.shards)]

    # -- lifecycle --------------------------------------------------------

    def _spawn(self, index: int) -> subprocess.Popen:
        self.fleet_root.mkdir(parents=True, exist_ok=True)
        log_path = self.fleet_root / f"{shard_name(index)}.log"
        env = os.environ.copy()
        src = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        with open(log_path, "ab") as log:
            return subprocess.Popen(
                [self.python, "-m", "repro", "observatory", "fleet",
                 "worker", str(self.source_root),
                 str(self.shard_root(index)),
                 "--index", str(index), "--count", str(self.shards),
                 "--host", self.host, "--port", str(self.ports[index]),
                 "--poll-interval", str(self.poll_interval)],
                stdout=log, stderr=subprocess.STDOUT, env=env)

    def start(self) -> "ShardFleet":
        for index in range(self.shards):
            self._procs[index] = self._spawn(index)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="fleet-monitor", daemon=True)
        self._monitor.start()
        return self

    def _backoff_delay(self, index: int) -> float:
        base = self.backoff * (2 ** max(0, self._consecutive[index] - 1))
        return min(self.backoff_cap, base) + self.jitter * self._rng.random()

    def _monitor_loop(self) -> None:
        while not self._stopping:
            now = self._clock()
            for index in range(self.shards):
                proc = self._procs[index]
                alive = proc is not None and proc.poll() is None
                if alive:
                    self._restart_at[index] = None
                    if self._probe(index):
                        self._last_ok[index] = now
                        self._consecutive[index] = 0
                    continue
                if self._gave_up[index] or not self.auto_restart:
                    continue
                if self._restart_at[index] is None:
                    self._consecutive[index] += 1
                    if self._consecutive[index] > self.max_restarts:
                        self._gave_up[index] = True
                        continue
                    self._restart_at[index] = now + self._backoff_delay(index)
                if now >= self._restart_at[index]:
                    self._procs[index] = self._spawn(index)
                    self.restarts[index] += 1
                    self._restart_at[index] = None
            self._wake.wait(self.monitor_interval)

    def _probe(self, index: int) -> bool:
        try:
            with urllib.request.urlopen(
                    self.shard_url(index) + "/healthz", timeout=1.0) as resp:
                return resp.status == 200
        except (urllib.error.URLError, OSError, ValueError):
            return False

    def kill(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Chaos helper: signal one worker (default SIGKILL)."""
        proc = self._procs[index]
        if proc is not None and proc.poll() is None:
            proc.send_signal(sig)
            proc.wait(timeout=10)

    def restart_now(self, index: int) -> None:
        """Respawn a dead shard immediately, bypassing the backoff."""
        proc = self._procs[index]
        if proc is not None and proc.poll() is None:
            return
        self._gave_up[index] = False
        self._consecutive[index] = 0
        self._restart_at[index] = None
        self._procs[index] = self._spawn(index)
        self.restarts[index] += 1

    def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        for proc in self._procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 10
        for proc in self._procs:
            if proc is None:
                continue
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)

    # -- health -----------------------------------------------------------

    def shard_state(self, index: int) -> str:
        proc = self._procs[index]
        alive = proc is not None and proc.poll() is None
        if self._gave_up[index] or (not alive and not self.auto_restart):
            return "stalled"
        if not alive or self.restarts[index] > 0:
            return "degraded"
        return "healthy"

    @property
    def state(self) -> str:
        states = [self.shard_state(index) for index in range(self.shards)]
        return max(states, key=STATES.index)

    def stats(self) -> dict[str, Any]:
        """Fleet-wide counters for the federated ``/healthz``."""
        now = self._clock()
        shards = []
        for index in range(self.shards):
            proc = self._procs[index]
            last_ok = self._last_ok[index]
            shards.append({
                "name": shard_name(index),
                "state": self.shard_state(index),
                "url": self.shard_url(index),
                "pid": proc.pid if proc is not None else None,
                "alive": proc is not None and proc.poll() is None,
                "restarts": self.restarts[index],
                "gave_up": self._gave_up[index],
                "last_ok_age_seconds": (max(0.0, now - last_ok)
                                        if last_ok is not None else None),
            })
        return {"state": self.state, "shard_count": self.shards,
                "restarts": sum(self.restarts), "shards": shards}
