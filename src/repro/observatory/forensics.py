"""Pre-outbreak forensics: the bounded last-announcement ring and the
``/outbreaks/<id>/forensics`` body renderer.

The companion ``zombie-record-finder`` workflow answers "what was each
router's last AS_PATH before the outbreak?" by re-scanning the archive
after the fact — O(archive) per question.  The observatory instead
keeps a bounded per-(peer, prefix) *last-announcement ring* inside the
ingest loop: every update record for a watched beacon prefix refreshes
one entry, and the moment an outbreak event lands the ring is frozen
into a durable ``forensics`` event right next to it in the store.
Serving the question is then O(outbreak): one view lookup plus a render
over the (bounded) per-prefix snapshot.

Determinism is inherited, not re-proven: the ring is a pure function of
the consumed record stream, its snapshot rides in the versioned ingest
checkpoint, and the ``forensics`` append happens in the same
deterministic position as the ``outbreak`` append it documents — so
kill-resume byte-identity holds with the ring enabled.

The ring is insertion-ordered (a plain dict) and capacity-bounded:
every touch moves the entry to the tail, overflow evicts from the head
(least-recently-touched), which keeps both memory and snapshot size
O(capacity) regardless of archive length.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.beacons.aggregator import AggregatorClock
from repro.bgp.attributes import ASPath
from repro.bgp.messages import UpdateRecord
from repro.core.rootcause import build_palm_tree
from repro.core.state import PeerKey
from repro.realtime.sinks import outbreak_id, outbreak_prefix

__all__ = ["LastAnnouncementRing", "render_forensics",
           "outbreak_id", "outbreak_prefix", "RING_SNAPSHOT_VERSION"]

#: Ring snapshot document version (bumped on incompatible changes).
RING_SNAPSHOT_VERSION = 1

#: Default bound on tracked (peer, prefix) entries.  RIS beacon
#: monitoring is small: #beacon prefixes × #full-feed peers per
#: collector — a few thousand entries covers every deployment in the
#: paper with room to spare.
DEFAULT_RING_CAPACITY = 4096


class LastAnnouncementRing:
    """Bounded per-(peer, prefix) last-announcement state.

    ``observe`` consumes update records in stream order; ``snapshot`` /
    ``from_snapshot`` round-trip the exact state (including recency
    order) for the ingest checkpoint; ``snapshot_for`` freezes one
    prefix's entries for a ``forensics`` event.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 prefixes: Optional[Iterable[str]] = None,
                 excluded_peers: frozenset[PeerKey] = frozenset()):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        #: watched prefixes (None = watch everything).
        self.prefixes = frozenset(str(p) for p in prefixes) \
            if prefixes is not None else None
        self.excluded_peers = excluded_peers
        self.evictions = 0
        #: (prefix, collector, peer_address) -> entry, in recency order.
        self._entries: dict[tuple[str, str, str], dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, record: Any) -> None:
        """Fold one record (announcements refresh an entry, withdrawals
        stamp ``withdrawn_at``; session records are ignored — the last
        *path* remains forensic evidence even if the session bounced)."""
        if not isinstance(record, UpdateRecord):
            return
        prefix = str(record.prefix)
        if self.prefixes is not None and prefix not in self.prefixes:
            return
        if (record.collector, record.peer_address) in self.excluded_peers:
            return
        key = (prefix, record.collector, record.peer_address)
        if record.is_announcement:
            attributes = record.attributes
            aggregator = attributes.aggregator
            entry = {
                "prefix": prefix,
                "collector": record.collector,
                "peer_address": record.peer_address,
                "peer_asn": record.peer_asn,
                "path": str(attributes.as_path),
                "announced_at": record.timestamp,
                "withdrawn_at": None,
                "aggregator_asn":
                    aggregator.asn if aggregator is not None else None,
                "aggregator_address":
                    aggregator.address if aggregator is not None else None,
            }
        else:
            entry = self._entries.pop(key, None)
            if entry is None:
                return  # withdrawal for a route we never saw announced
            entry["withdrawn_at"] = record.timestamp
        self._entries.pop(key, None)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1

    def snapshot_for(self, prefix: str) -> list[dict[str, Any]]:
        """The frozen per-peer entries for one prefix, recency-ordered
        (an O(capacity) scan — the ring is bounded by construction)."""
        return [dict(entry) for (entry_prefix, _, _), entry
                in self._entries.items() if entry_prefix == prefix]

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe document for the ingest checkpoint; order matters
        (it IS the eviction order) and is preserved verbatim."""
        return {
            "version": RING_SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "evictions": self.evictions,
            "entries": [dict(entry) for entry in self._entries.values()],
        }

    @classmethod
    def from_snapshot(cls, document: dict[str, Any],
                      prefixes: Optional[Iterable[str]] = None,
                      excluded_peers: frozenset[PeerKey] = frozenset()
                      ) -> "LastAnnouncementRing":
        if document.get("version") != RING_SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported ring snapshot version: "
                f"{document.get('version')!r}")
        ring = cls(document["capacity"], prefixes=prefixes,
                   excluded_peers=excluded_peers)
        ring.evictions = document["evictions"]
        for entry in document["entries"]:
            key = (entry["prefix"], entry["collector"],
                   entry["peer_address"])
            ring._entries[key] = dict(entry)
        return ring


def forensics_payload(alert_payload: dict[str, Any], origin_asn: int,
                      ring: LastAnnouncementRing) -> dict[str, Any]:
    """The durable ``forensics`` event body for one outbreak event.

    Carries ``prefix`` so the shard router co-locates it with its
    outbreak, and the full ring snapshot for that prefix so serving
    never needs the archive again.
    """
    return {
        "outbreak_id": alert_payload["id"],
        "prefix": alert_payload["prefix"],
        "origin_asn": origin_asn,
        "collector": alert_payload["collector"],
        "peer_address": alert_payload["peer_address"],
        "peer_asn": alert_payload["peer_asn"],
        "announce_time": alert_payload["announce_time"],
        "withdraw_time": alert_payload["withdraw_time"],
        "detected_at": alert_payload["detected_at"],
        "peers": ring.snapshot_for(alert_payload["prefix"]),
    }


def render_forensics(event: dict[str, Any]) -> dict[str, Any]:
    """The ``/outbreaks/<id>/forensics`` body for one stored event.

    A pure function of the event, so the threaded engine, the asyncio
    engine and every federation shard render byte-identical answers.
    Peers that never withdrew by snapshot time are the zombie-path
    candidates fed to the palm tree; ``rooted_paths``/``total_paths``
    let the caller tell "no suspect" from "no evidence".
    """
    origin_asn = event["origin_asn"]
    peers = []
    stuck_paths = []
    for entry in event["peers"]:
        address = entry.get("aggregator_address")
        origin_time = None
        if address is not None and AggregatorClock.is_clock_address(address):
            origin_time = AggregatorClock.decode(address,
                                                 entry["announced_at"])
        peers.append({**entry, "origin_time": origin_time})
        if entry["withdrawn_at"] is None and entry["path"]:
            stuck_paths.append(ASPath.from_string(entry["path"]))
    tree = build_palm_tree(stuck_paths, origin_asn)
    return {
        "outbreak_id": event["outbreak_id"],
        "prefix": event["prefix"],
        "origin_asn": origin_asn,
        "collector": event["collector"],
        "peer_address": event["peer_address"],
        "peer_asn": event["peer_asn"],
        "announce_time": event["announce_time"],
        "withdraw_time": event["withdraw_time"],
        "detected_at": event["detected_at"],
        "snapshot_seq": event["seq"],
        "snapshot_time": event["time"],
        "peers": peers,
        "root_cause": {
            "suspect": tree.suspect,
            "trunk": list(tree.trunk),
            "branches": sorted(tree.branches),
            "rooted_paths": tree.rooted_paths,
            "total_paths": tree.total_paths,
            "verdict": tree.verdict,
        },
    }
