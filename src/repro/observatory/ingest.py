"""Incremental, checkpointed ingest: archive → detectors → event store.

The engine tails an on-disk RIS archive through the indexed read path
(:class:`repro.ris.Archive`), interleaves the update stream with the
8-hourly RIB dump stream, and feeds three incremental consumers:

* :class:`~repro.realtime.streaming.StreamingDetector` — zombie
  outbreaks at withdrawal + threshold (``outbreak`` events);
* :class:`~repro.realtime.streaming.ResurrectionMonitor` — update-scale
  §5.1 resurrections (``resurrection`` events);
* :class:`~repro.core.lifespan.LifespanSession` — dump-scale presence /
  lifespans (cumulative ``lifespan`` events, resurrections flagged).

Determinism is the load-bearing property.  The archive merge order is
total (``record_sort_key``), dumps are fed by the fixed rule "every dump
with timestamp <= the next record's timestamp goes first", and every
event append is a pure function of the consumed stream position.  So a
checkpoint of (stream watermarks, snapshots, events-appended) plus
:meth:`EventStore.truncate` back to the checkpoint makes a killed and
resumed ingest produce a byte-identical store to an uninterrupted one —
the property the round-trip tests assert.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union

from repro.beacons.schedule import BeaconInterval
from repro.core.lifespan import LifespanSession
from repro.core.state import PeerKey
from repro.mrt.tabledump import RibDump
from repro.net.prefix import Prefix
from repro.observatory.checkpoint import load_checkpoint, save_checkpoint
from repro.observatory.forensics import (
    DEFAULT_RING_CAPACITY,
    LastAnnouncementRing,
    forensics_payload,
)
from repro.observatory.store import EventStore
from repro.realtime.sinks import serialise_alert
from repro.realtime.streaming import (
    ResurrectionAlert,
    ResurrectionMonitor,
    StreamingDetector,
    ZombieAlert,
    _interval_from_json,
    _interval_to_json,
)
from repro.ris.archive import Archive
from repro.utils.timeutil import DAY, MINUTE

__all__ = ["ObservatoryIngest", "intervals_from_json"]


class ObservatoryIngest:
    """One ingest session over the window ``[start, end)``.

    Constructing the engine either starts fresh (registering every
    beacon interval with the detector and the monitor's schedule filter)
    or — when ``checkpoint_path`` holds a checkpoint — resumes: the
    detector, monitor and lifespan session are restored from their
    snapshots, the event store is rolled back to the checkpointed event
    count, and the archive streams are re-opened at the watermarks.
    """

    def __init__(self, archive: Archive, store: EventStore,
                 checkpoint_path: Union[str, Path],
                 intervals: Iterable[BeaconInterval],
                 start: int, end: int,
                 threshold: int = 90 * MINUTE, dedup: bool = True,
                 excluded_peers: frozenset[PeerKey] = frozenset(),
                 quiet: int = 120 * MINUTE,
                 late_first_seen: int = 2 * DAY,
                 checkpoint_every: int = 1000,
                 ring_capacity: int = DEFAULT_RING_CAPACITY):
        self.archive = archive
        self.store = store
        self.checkpoint_path = Path(checkpoint_path)
        self.intervals = sorted(
            (i for i in intervals if not i.discarded),
            key=lambda i: (i.announce_time, str(i.prefix)))
        self.start = start
        self.end = end
        self.threshold = threshold
        self.dedup = dedup
        self.excluded_peers = excluded_peers
        self.quiet = quiet
        self.late_first_seen = late_first_seen
        self.checkpoint_every = checkpoint_every
        self.ring_capacity = ring_capacity

        self.records_ingested = 0
        self.dumps_ingested = 0
        self.finished = False
        self.counters: dict[str, int] = {
            "outbreak_events": 0,
            "forensics_events": 0,
            "resurrection_events": 0,
            "lifespan_events": 0,
            "rib_resurrection_events": 0,
            "checkpoints_written": 0,
        }
        self._updates_watermark: Optional[int] = None
        self._updates_at_watermark = 0
        self._ribs_watermark: Optional[int] = None
        self._ribs_at_watermark = 0
        self._updates: Optional[Iterator] = None
        self._dumps: Optional[Iterator[RibDump]] = None
        self._next_dump: Optional[RibDump] = None

        document = load_checkpoint(self.checkpoint_path)
        if document is not None:
            self._restore(document)
        else:
            self._fresh()

    # -- construction -----------------------------------------------------

    def _fresh(self) -> None:
        self.detector = StreamingDetector(
            threshold=self.threshold, dedup=self.dedup,
            excluded_peers=self.excluded_peers)
        self.detector.add_intervals(self.intervals)
        prefixes = {interval.prefix for interval in self.intervals}
        self.monitor = ResurrectionMonitor(
            prefixes, quiet=self.quiet,
            scheduled_announcements=[(i.prefix, i.announce_time)
                                     for i in self.intervals])
        self.session = LifespanSession(
            self._final_withdrawals(), excluded_peers=self.excluded_peers,
            min_stuck=self.threshold, late_first_seen=self.late_first_seen)
        self.ring = LastAnnouncementRing(
            self.ring_capacity, prefixes=self._watched_prefixes(),
            excluded_peers=self.excluded_peers)

    def _watched_prefixes(self) -> set[str]:
        return {str(interval.prefix) for interval in self.intervals}

    def _final_withdrawals(self) -> dict[Prefix, int]:
        out: dict[Prefix, int] = {}
        for interval in self.intervals:
            current = out.get(interval.prefix, 0)
            out[interval.prefix] = max(current, interval.withdraw_time)
        return out

    def _restore(self, document: dict[str, Any]) -> None:
        if document["window"] != [self.start, self.end]:
            raise ValueError(
                f"checkpoint window {document['window']} does not match "
                f"configured window {[self.start, self.end]}")
        self.detector = StreamingDetector.from_snapshot(document["detector"])
        self.monitor = ResurrectionMonitor.from_snapshot(document["monitor"])
        self.session = LifespanSession.from_snapshot(document["lifespans"])
        updates = document["updates"]
        self._updates_watermark = updates["watermark"]
        self._updates_at_watermark = updates["at_watermark"]
        self.records_ingested = updates["ingested"]
        ribs = document["ribs"]
        self._ribs_watermark = ribs["watermark"]
        self._ribs_at_watermark = ribs["at_watermark"]
        self.dumps_ingested = ribs["ingested"]
        self.finished = document["finished"]
        self.counters.update(document["counters"])
        ring = document.get("ring")  # absent in pre-forensics checkpoints
        if ring is not None:
            self.ring = LastAnnouncementRing.from_snapshot(
                ring, prefixes=self._watched_prefixes(),
                excluded_peers=self.excluded_peers)
        else:
            self.ring = LastAnnouncementRing(
                self.ring_capacity, prefixes=self._watched_prefixes(),
                excluded_peers=self.excluded_peers)
        # Roll the store back to the exact checkpointed position; the
        # re-ingested suffix then re-emits the dropped events verbatim.
        self.store.truncate(document["events_appended"])

    # -- stream positioning ----------------------------------------------

    def _update_stream(self) -> Iterator:
        watermark = self._updates_watermark
        skip = self._updates_at_watermark if watermark is not None else 0
        first = self.start if watermark is None else watermark
        for record in self.archive.iter_updates(first, self.end):
            if skip and record.timestamp == watermark:
                skip -= 1
                continue
            yield record

    def _dump_stream(self) -> Iterator[RibDump]:
        watermark = self._ribs_watermark
        skip = self._ribs_at_watermark if watermark is not None else 0
        first = self.start if watermark is None else watermark
        for dump in self.archive.iter_ribs(first, self.end):
            if skip and dump.timestamp == watermark:
                skip -= 1
                continue
            yield dump

    def _advance_dump(self) -> None:
        if self._dumps is None:
            self._dumps = self._dump_stream()
        self._next_dump = next(self._dumps, None)

    def _feed_dumps(self, limit: Optional[int]) -> None:
        """Ingest every pending dump with timestamp <= ``limit``
        (all remaining dumps when ``limit`` is None)."""
        if self._dumps is None:
            self._advance_dump()
        while self._next_dump is not None and (
                limit is None or self._next_dump.timestamp <= limit):
            self._ingest_dump(self._next_dump)
            self._advance_dump()

    # -- ingestion --------------------------------------------------------

    def _ingest_record(self, record) -> None:
        # Detector first, ring second: a forensics snapshot reflects
        # every record *before* the one whose arrival triggered the
        # evaluation — "last path before the outbreak", not including a
        # same-instant re-announcement of the beacon prefix itself.
        for alert in self.detector.observe(record):
            self._append_outbreak(alert)
        self.ring.observe(record)
        resurrection = self.monitor.observe(record)
        if resurrection is not None:
            self._append_resurrection(resurrection)
        if record.timestamp == self._updates_watermark:
            self._updates_at_watermark += 1
        else:
            self._updates_watermark = record.timestamp
            self._updates_at_watermark = 1
        self.records_ingested += 1

    def _ingest_dump(self, dump: RibDump) -> None:
        deltas = self.session.observe(dump)
        self._append_lifespans(deltas)
        if dump.timestamp == self._ribs_watermark:
            self._ribs_at_watermark += 1
        else:
            self._ribs_watermark = dump.timestamp
            self._ribs_at_watermark = 1
        self.dumps_ingested += 1

    def _append_outbreak(self, alert: ZombieAlert) -> None:
        payload = serialise_alert(alert)
        self.store.append("outbreak", alert.detected_at, payload)
        self.counters["outbreak_events"] += 1
        # Freeze the pre-outbreak ring state right next to the outbreak
        # it documents: same deterministic stream position, so the
        # kill-resume byte-identity proof covers it unchanged.
        self.store.append(
            "forensics", alert.detected_at,
            forensics_payload(payload, alert.interval.origin_asn, self.ring))
        self.counters["forensics_events"] += 1

    def _append_resurrection(self, alert: ResurrectionAlert) -> None:
        self.store.append("resurrection", alert.resurrected_at,
                          serialise_alert(alert))
        self.counters["resurrection_events"] += 1

    def _append_lifespans(self, deltas) -> None:
        for delta in deltas:
            lifespan = self.session.lifespan_for(delta.prefix)
            payload = {
                "prefix": str(delta.prefix),
                "visible": delta.visible,
                "started_segment": delta.started_segment,
                "resurrection": delta.resurrection,
                "peers": sorted([c, a] for c, a in delta.peers),
                "withdraw_time": lifespan.withdraw_time,
                "first_seen": lifespan.first_seen,
                "last_seen": lifespan.last_seen,
                "duration_seconds": lifespan.duration_seconds,
                "segment_count": len(lifespan.segments),
                "resurrection_count": lifespan.resurrection_count,
            }
            self.store.append("lifespan", delta.instant, payload)
            self.counters["lifespan_events"] += 1
            if delta.resurrection:
                self.counters["rib_resurrection_events"] += 1

    # -- driving ----------------------------------------------------------

    def run(self, max_records: Optional[int] = None) -> int:
        """Consume up to ``max_records`` further update records (all of
        them when None), feeding dumps as their instants are passed;
        returns how many records were ingested.  A periodic checkpoint
        is written every ``checkpoint_every`` records."""
        if self._updates is None:
            self._updates = self._update_stream()
        ingested = 0
        while max_records is None or ingested < max_records:
            record = next(self._updates, None)
            if record is None:
                break
            self._feed_dumps(record.timestamp)
            self._ingest_record(record)
            ingested += 1
            if self.checkpoint_every \
                    and self.records_ingested % self.checkpoint_every == 0:
                self.checkpoint()
        return ingested

    def reopen(self) -> None:
        """Re-open the archive streams at the current watermarks.

        A tailing deployment (e.g. following a mirror that ``mirror
        watch`` is continuously syncing) calls this after draining the
        streams: archive files that appeared since the last scan are
        picked up, and the watermark skip rule guarantees records at the
        resume instant are not double-ingested.  No-op cheap: the next
        :meth:`run` rebuilds the scan plan lazily.
        """
        self._updates = None
        self._dumps = None
        self._next_dump = None

    def finish(self) -> None:
        """Drain both streams, commit the trailing lifespan instant,
        evaluate every detector deadline up to the window end, and
        checkpoint.  Idempotent."""
        if self.finished:
            return
        self.run()
        self._feed_dumps(None)
        self._append_lifespans(self.session.finalize())
        for alert in self.detector.advance(self.end):
            self._append_outbreak(alert)
        self.finished = True
        self.checkpoint()

    def checkpoint(self) -> None:
        """Persist the complete resumable state (atomic)."""
        document = {
            "window": [self.start, self.end],
            "threshold": self.threshold,
            "quiet": self.quiet,
            "intervals": [_interval_to_json(i) for i in self.intervals],
            "updates": {"watermark": self._updates_watermark,
                        "at_watermark": self._updates_at_watermark,
                        "ingested": self.records_ingested},
            "ribs": {"watermark": self._ribs_watermark,
                     "at_watermark": self._ribs_at_watermark,
                     "ingested": self.dumps_ingested},
            "events_appended": self.store.next_seq,
            "finished": self.finished,
            "detector": self.detector.snapshot(),
            "monitor": self.monitor.snapshot(),
            "lifespans": self.session.snapshot(),
            "ring": self.ring.snapshot(),
            "counters": dict(self.counters),
        }
        save_checkpoint(self.checkpoint_path, document)
        self.store.sync()
        self.counters["checkpoints_written"] += 1

    def stats(self) -> dict[str, Any]:
        """Ingest counters for ``/metrics``."""
        return {
            "records_ingested": self.records_ingested,
            "dumps_ingested": self.dumps_ingested,
            "events_appended": self.store.next_seq,
            "pending_evaluations": self.detector.pending_evaluations,
            "finished": self.finished,
            "ring_entries": len(self.ring),
            "ring_evictions": self.ring.evictions,
            **self.counters,
        }


def intervals_from_json(payloads: Iterable[dict[str, Any]]
                        ) -> list[BeaconInterval]:
    """Rehydrate intervals persisted by a checkpoint or scenario file."""
    return [_interval_from_json(payload) for payload in payloads]
