"""JSON HTTP query layer over the event store (stdlib-only).

Endpoints::

    GET /healthz                liveness + store position
    GET /outbreaks              outbreak events  (?prefix= &since= &until=)
    GET /outbreaks/<id>/forensics   pre-outbreak snapshot: per-peer last
                                    paths, aggregator clock, suspect AS
    GET /zombies                latest lifespan summary per zombie prefix
    GET /zombies/<prefix>       one prefix: lifespan + outbreaks + resurrections
    GET /resurrections          update- and dump-scale resurrections, merged
    GET /metrics                Prometheus text exposition

The server can share an in-process :class:`EventStore` with a running
ingest, or open a store ``readonly`` and serve while a *separate*
process appends to it (the store's recovery rules make concurrent reads
safe).  ``/metrics`` folds in the ingest counters and the archive
read-path counters (decoded-file cache hits/misses/evictions, index
skip-scan) when those objects are attached.

The module is split along a transport seam: :class:`ObservatoryApp`
holds everything HTTP-agnostic — routing, ETags, pagination, counters,
metrics rendering — and answers one request at a time through
:meth:`ObservatoryApp.respond`; :class:`ObservatoryServer` is the
threaded (``ThreadingHTTPServer``) transport over it, kept as the
escape hatch and the parity baseline.  The default serve path is the
asyncio transport in :mod:`repro.observatory.asyncserver`, which adds
the ``/stream/*`` SSE endpoints on the same app core — both transports
produce byte-identical bodies because they share ``respond``.

The read path is built for *repeated* queries (the §5 lifespan workload
asked at production rate):

* by default responses come from :class:`.views.MaterializedViews`,
  which folds only newly appended events per request instead of
  re-scanning the store (``use_view=False`` restores full scans);
* every data endpoint carries a strong ``ETag`` derived from the
  store's ``(generation, next_seq)`` position plus the canonical query,
  honours ``If-None-Match`` with ``304 Not Modified``, and sends
  ``Cache-Control: max-age=0, must-revalidate`` so caches always
  revalidate (one cheap position read) instead of serving stale data;
* the list endpoints (``/outbreaks``, ``/zombies``, ``/resurrections``)
  paginate with ``?limit=&cursor=``: pages are slices of a
  deterministically ordered listing and the cursor is the sort key of
  the last row served, so pages already served never shift while an
  ingest appends.  Without paging parameters the bodies are identical
  to the historical full listings.
"""

from __future__ import annotations

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, unquote, urlparse

from repro.observatory.forensics import outbreak_prefix, render_forensics
from repro.observatory.store import EventStore
from repro.observatory.views import (
    CursorError,
    MaterializedViews,
    paginate,
    pair_cursor,
    seq_cursor,
)

__all__ = ["ObservatoryApp", "ObservatoryServer", "forensics_outbreak_id"]

#: Data responses may be cached but must be revalidated (the ETag makes
#: revalidation a 304 with no body).
CACHE_CONTROL = "max-age=0, must-revalidate"

_FORENSICS_HEAD = "/outbreaks/"
_FORENSICS_TAIL = "/forensics"


def forensics_outbreak_id(path: str) -> Optional[str]:
    """The decoded outbreak ID of a ``/outbreaks/<id>/forensics`` path
    (None when the path is not a forensics route).  Shared with the
    federation router, which derives the owning shard from the ID."""
    if not (path.startswith(_FORENSICS_HEAD)
            and path.endswith(_FORENSICS_TAIL)):
        return None
    identifier = path[len(_FORENSICS_HEAD):-len(_FORENSICS_TAIL)]
    return unquote(identifier) if identifier else None


def _int_param(params: dict, name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer")


def _str_param(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[0] if values else None


def _limit_param(params: dict) -> Optional[int]:
    limit = _int_param(params, "limit")
    if limit is not None and limit <= 0:
        raise _BadRequest("parameter 'limit' must be a positive integer")
    return limit


class _BadRequest(Exception):
    pass


class _NotFound(Exception):
    """A routing miss: unknown path or unknown resource.

    Deliberately distinct from ``KeyError`` — a ``KeyError`` escaping a
    handler is a *data* bug (e.g. a lifespan event missing a field) and
    must surface as a 500, not masquerade as "no such resource".
    """


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-observatory"
    #: Bound every blocking socket read/write: a wedged client cannot
    #: hold a handler thread (and the graceful-shutdown join) forever.
    timeout = 30

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the test/CI output clean

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        observatory: "ObservatoryServer" = self.server.observatory  # type: ignore[attr-defined]
        url = urlparse(self.path)
        params = parse_qs(url.query)
        status, headers, payload = observatory.respond(
            url.path, params, self.headers.get("If-None-Match"))
        self._transmit(status, headers, payload)

    def _send_json(self, status: int, body: dict[str, Any],
                   etag: Optional[str] = None) -> None:
        self._transmit(*ObservatoryApp._json_response(status, body,
                                                      etag=etag))

    def _send_not_modified(self, etag: str) -> None:
        self._transmit(304, [("ETag", etag),
                             ("Cache-Control", CACHE_CONTROL),
                             ("Content-Length", "0")], b"")

    def _transmit(self, status: int, headers: list[tuple[str, str]],
                  payload: bytes) -> None:
        """Write one response, tolerating a client that hung up: a
        disconnect mid-response is the client's business, not a stderr
        traceback — drop it and count it."""
        try:
            self.send_response(status)
            for name, value in headers:
                self.send_header(name, value)
            self.end_headers()
            if payload:
                self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            observatory: "ObservatoryServer" = self.server.observatory  # type: ignore[attr-defined]
            observatory.count_dropped_response()
            self.close_connection = True


class ObservatoryApp:
    """Transport-neutral core of the observatory API.

    Holds the store, the materialized views and every request counter,
    and answers one request at a time through :meth:`respond` — pure
    ``(path, params, If-None-Match) -> (status, headers, payload)``.
    Both HTTP transports (:class:`ObservatoryServer`,
    :class:`repro.observatory.asyncserver.AsyncObservatoryServer`) call
    it from concurrent threads, so the counters stay lock-guarded here.

    ``use_view=False`` disables the materialized views and serves every
    query with a full store scan (the pre-view behaviour, kept for
    benchmarking and as an escape hatch).
    """

    def __init__(self, store: EventStore, ingest=None, archive=None,
                 supervisor=None, use_view: bool = True):
        self.store = store
        self.ingest = ingest
        self.archive = archive
        self.supervisor = supervisor
        self.views = MaterializedViews(store) if use_view else None
        #: Handler threads run concurrently; all request counters share
        #: one lock so none of them undercount.
        self._counter_lock = threading.Lock()
        self._requests_served = 0
        self._responses_dropped = 0
        self._not_modified = 0
        #: Rendered 200s keyed by strong ETag.  The ETag names the
        #: store position *and* the canonical query, so a hit is
        #: byte-identical to a re-render by definition; repeat polls of
        #: an unchanged listing skip the view lookup and the JSON dump.
        self._response_cache: dict[
            str, tuple[int, list[tuple[str, str]], bytes]] = {}
        self._response_cache_hits = 0
        #: Attached by the async transport's stream hub; when present,
        #: ``render_metrics`` folds the ``observatory_stream_*`` series.
        self.stream_stats = None
        #: Extra keys merged into the ``/healthz`` body — shard workers
        #: use this to announce their fleet identity.
        self.healthz_extra: Optional[dict[str, Any]] = None

    # -- one-request entry point ------------------------------------------

    def respond(self, path: str, params: dict,
                if_none_match: Optional[str] = None
                ) -> tuple[int, list[tuple[str, str]], bytes]:
        """Answer one GET: ``(status, headers, payload)``.

        Every behaviour the endpoints promise — ETag/304 revalidation,
        pagination, the 400/404/500 error split — lives here, so any
        transport that forwards requests verbatim is body-identical to
        any other by construction.
        """
        self.count_request()
        try:
            if path == "/metrics":
                return self._text_response(200, self.render_metrics())
            etag = None
            if self.cacheable(path):
                etag = self.etag_for(path, params)
                if self._etag_matches(etag, if_none_match):
                    self.count_not_modified()
                    return 304, [("ETag", etag),
                                 ("Cache-Control", CACHE_CONTROL),
                                 ("Content-Length", "0")], b""
                cached = self._cached_response(etag)
                if cached is not None:
                    return cached
            body = self.handle(path, params)
        except _BadRequest as exc:
            return self._json_response(400, {"error": str(exc)})
        except CursorError as exc:
            return self._json_response(400, {"error": str(exc)})
        except _NotFound:
            return self._json_response(
                404, {"error": f"no such resource: {path}"})
        except Exception as exc:  # noqa: BLE001 - data bugs become 500s
            return self._json_response(
                500, {"error": "internal server error: "
                               f"{type(exc).__name__}: {exc}"})
        response = self._json_response(200, body, etag=etag)
        if etag is not None:
            self._remember_response(etag, response)
        return response

    #: Rendered responses kept; enough for every listing's recent pages.
    RESPONSE_CACHE_ENTRIES = 128

    def _cached_response(self, etag: str
                         ) -> Optional[tuple[int, list[tuple[str, str]],
                                             bytes]]:
        with self._counter_lock:
            response = self._response_cache.get(etag)
            if response is not None:
                self._response_cache_hits += 1
                # Re-insert: plain-dict LRU, eviction pops oldest.
                self._response_cache.pop(etag)
                self._response_cache[etag] = response
            return response

    def _remember_response(self, etag: str,
                           response: tuple[int, list[tuple[str, str]],
                                           bytes]) -> None:
        with self._counter_lock:
            self._response_cache.pop(etag, None)
            self._response_cache[etag] = response
            while len(self._response_cache) > self.RESPONSE_CACHE_ENTRIES:
                self._response_cache.pop(next(iter(self._response_cache)))

    @staticmethod
    def _etag_matches(etag: str, header: Optional[str]) -> bool:
        if not header:
            return False
        # Concrete matches only: honouring ``*`` ("any current
        # representation") would answer 304 for resources that do not
        # exist, since the match runs before the data lookup.
        return etag in (value.strip() for value in header.split(","))

    @staticmethod
    def _json_response(status: int, body: dict[str, Any],
                       etag: Optional[str] = None
                       ) -> tuple[int, list[tuple[str, str]], bytes]:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        headers = [("Content-Type", "application/json"),
                   ("Content-Length", str(len(payload)))]
        if etag is not None:
            headers += [("ETag", etag), ("Cache-Control", CACHE_CONTROL)]
        return status, headers, payload

    @staticmethod
    def _text_response(status: int, text: str
                       ) -> tuple[int, list[tuple[str, str]], bytes]:
        payload = text.encode("utf-8")
        return status, [
            ("Content-Type", "text/plain; version=0.0.4; charset=utf-8"),
            ("Content-Length", str(len(payload)))], payload

    # -- counters ---------------------------------------------------------

    def count_request(self) -> None:
        with self._counter_lock:
            self._requests_served += 1

    def count_dropped_response(self) -> None:
        with self._counter_lock:
            self._responses_dropped += 1

    def count_not_modified(self) -> None:
        with self._counter_lock:
            self._not_modified += 1

    @property
    def requests_served(self) -> int:
        with self._counter_lock:
            return self._requests_served

    @property
    def responses_dropped(self) -> int:
        with self._counter_lock:
            return self._responses_dropped

    @property
    def not_modified_served(self) -> int:
        with self._counter_lock:
            return self._not_modified

    # -- caching ----------------------------------------------------------

    @staticmethod
    def cacheable(path: str) -> bool:
        """Pattern-level test for paths that serve cacheable data.
        The conditional-request short-circuit only runs on these, so a
        request for an unknown path falls through to its 404 instead of
        being answered 304 (``etag_for`` succeeds for *any* path)."""
        return (path in ("/outbreaks", "/zombies", "/resurrections")
                or path.startswith("/zombies/")
                or forensics_outbreak_id(path) is not None)

    def etag_for(self, path: str, params: dict) -> str:
        """Strong ETag for one request: the store's logical position
        (generation + next_seq — together they identify the visible
        content exactly) plus a digest of the canonical query."""
        generation, next_seq = self.store.position()
        canon = path + "?" + "&".join(
            f"{key}={value}"
            for key in sorted(params)
            for value in params[key])
        digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]
        return f'"{generation}-{next_seq}-{digest}"'

    # -- routing ----------------------------------------------------------

    def handle(self, path: str, params: dict) -> dict[str, Any]:
        if self.views is not None and path != "/healthz":
            self.views.refresh()
        if path == "/healthz":
            return self._healthz()
        if path == "/outbreaks":
            return self._outbreaks(params)
        outbreak = forensics_outbreak_id(path)
        if outbreak is not None:
            return self._forensics(outbreak)
        if path == "/zombies":
            return self._zombies(params)
        if path.startswith("/zombies/"):
            return self._zombie(unquote(path[len("/zombies/"):]))
        if path == "/resurrections":
            return self._resurrections(params)
        raise _NotFound(path)

    def _healthz(self) -> dict[str, Any]:
        stats = self.store.stats()
        body = {"status": "ok", "events": stats["next_seq"],
                "segments": stats["segments"],
                "segment_formats": stats["by_format"],
                "generation": stats["generation"],
                "ingest_finished": (self.ingest.finished
                                    if self.ingest is not None else None)}
        if self.views is not None:
            body["view"] = self.views.stats()
        if self.supervisor is not None:
            state = self.supervisor.state
            body["ingest_state"] = state
            body["supervisor"] = self.supervisor.stats()
            if state != "healthy":
                # Liveness stays "ok" while degraded (the daemon is
                # making progress); a stalled ingest is a real outage.
                body["status"] = "ok" if state == "degraded" else "stalled"
        if self.healthz_extra:
            body.update(self.healthz_extra)
        return body

    def _outbreaks(self, params: dict) -> dict[str, Any]:
        limit = _limit_param(params)
        cursor = _str_param(params, "cursor")
        min_seq = None
        if cursor is not None:
            # Push the cursor down into the segment skip: pages deep in
            # a long history never open the segments before them.
            min_seq = seq_cursor(cursor) + 1
        events = list(self.store.events(
            kinds=("outbreak",),
            prefix=_str_param(params, "prefix"),
            since=_int_param(params, "since"),
            until=_int_param(params, "until"),
            min_seq=min_seq))
        if limit is None and cursor is None:
            return {"count": len(events), "outbreaks": events}
        page, next_key = paginate(events, key=lambda e: e["seq"],
                                  limit=limit)
        return {"count": len(page), "outbreaks": page,
                "next_cursor": str(next_key) if next_key is not None
                else None}

    def _latest_lifespans(self, prefix: Optional[str] = None
                          ) -> dict[str, dict[str, Any]]:
        latest: dict[str, dict[str, Any]] = {}
        for event in self.store.events(kinds=("lifespan",), prefix=prefix):
            latest[event["prefix"]] = event  # seq order: last one wins
        return latest

    def _zombie_rows(self) -> list[dict[str, Any]]:
        if self.views is not None:
            return self.views.zombies()
        return [event for _, event in sorted(self._latest_lifespans().items())
                if event["segment_count"] > 0]

    def _zombies(self, params: dict) -> dict[str, Any]:
        limit = _limit_param(params)
        cursor = _str_param(params, "cursor")
        rows = self._zombie_rows()
        if limit is None and cursor is None:
            return {"count": len(rows), "zombies": rows}
        page, next_key = paginate(rows, key=lambda e: e["prefix"],
                                  cursor=cursor, limit=limit)
        return {"count": len(page), "zombies": page, "next_cursor": next_key}

    def _zombie(self, prefix: str) -> dict[str, Any]:
        if self.views is not None:
            lifespan = self.views.latest_lifespan(prefix)
        else:
            lifespan = self._latest_lifespans(prefix).get(prefix)
        outbreaks = list(self.store.events(kinds=("outbreak",), prefix=prefix))
        resurrections = list(self.store.events(kinds=("resurrection",),
                                               prefix=prefix))
        if lifespan is None and not outbreaks and not resurrections:
            raise _NotFound(prefix)
        counts = (self.views.counts(prefix) if self.views is not None
                  else {"outbreaks": len(outbreaks),
                        "resurrections": len(resurrections)})
        return {"prefix": prefix, "lifespan": lifespan,
                "outbreaks": outbreaks, "resurrections": resurrections,
                "outbreak_count": counts["outbreaks"],
                "resurrection_count": counts["resurrections"]}

    def _forensics(self, outbreak_id: str) -> dict[str, Any]:
        """The pre-outbreak snapshot for one outbreak — O(outbreak):
        one view lookup plus a render over the bounded per-prefix
        snapshot, never a history scan (the no-view fallback scans only
        ``forensics`` events for the ID's prefix)."""
        if self.views is not None:
            event = self.views.forensics(outbreak_id)
        else:
            event = None
            prefix = outbreak_prefix(outbreak_id) or None
            for candidate in self.store.events(kinds=("forensics",),
                                               prefix=prefix):
                if candidate["outbreak_id"] == outbreak_id:
                    event = candidate  # seq order: last one wins
        if event is None:
            raise _NotFound(outbreak_id)
        return render_forensics(event)

    def _resurrection_rows(self, prefix: Optional[str],
                           since: Optional[int],
                           until: Optional[int]) -> list[dict[str, Any]]:
        """Both §5.1 scales, merged: update-stream re-announcements and
        RIB-dump gap/reappearance events."""
        if self.views is not None:
            return self.views.resurrections(prefix=prefix, since=since,
                                            until=until)
        merged = []
        for event in self.store.events(kinds=("resurrection",), prefix=prefix,
                                       since=since, until=until):
            merged.append({**event, "scale": "updates"})
        for event in self.store.events(kinds=("lifespan",), prefix=prefix,
                                       since=since, until=until):
            if event["resurrection"]:
                merged.append({**event, "scale": "rib"})
        merged.sort(key=lambda e: (e["time"], e["seq"]))
        return merged

    def _resurrections(self, params: dict) -> dict[str, Any]:
        limit = _limit_param(params)
        cursor = _str_param(params, "cursor")
        rows = self._resurrection_rows(_str_param(params, "prefix"),
                                       _int_param(params, "since"),
                                       _int_param(params, "until"))
        if limit is None and cursor is None:
            return {"count": len(rows), "resurrections": rows}
        parsed = pair_cursor(cursor) if cursor is not None else None
        page, next_key = paginate(rows,
                                  key=lambda e: (e["time"], e["seq"]),
                                  cursor=parsed, limit=limit)
        return {"count": len(page), "resurrections": page,
                "next_cursor": (f"{next_key[0]}:{next_key[1]}"
                                if next_key is not None else None)}

    # -- metrics ----------------------------------------------------------

    def render_metrics(self) -> str:
        """Prometheus text exposition of every counter we hold."""
        lines: list[str] = []

        def metric(name: str, value, help_text: str, labels: str = "") -> None:
            if value is None:
                return
            if not any(line.startswith(f"# HELP {name} ") for line in lines):
                # Monotonic series (the `_total` convention) are
                # counters — `rate()` only works on counters; states
                # and levels stay gauges.
                kind = "counter" if name.endswith("_total") else "gauge"
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{labels} {value}")

        store = self.store.stats()
        metric("observatory_events_total", store["next_seq"],
               "Events appended to the store over its lifetime.")
        metric("observatory_store_segments", store["segments"],
               "Segment files in the event store.")
        for fmt, count in sorted(store["by_format"].items()):
            metric("observatory_store_segment_files", count,
                   "Segment files in the event store by on-disk format.",
                   labels=f'{{format="{fmt}"}}')
        metric("observatory_store_generation", store["generation"],
               "History rewrites (truncate/compact/repair) the store "
               "has seen.")
        for kind, count in sorted(store["by_kind"].items()):
            metric("observatory_events", count,
                   "Events currently in the store by kind.",
                   labels=f'{{kind="{kind}"}}')
        metric("observatory_http_requests_total", self.requests_served,
               "HTTP requests served.")
        metric("observatory_http_not_modified_total",
               self.not_modified_served,
               "Conditional requests answered 304 from the ETag.")
        metric("observatory_http_responses_dropped_total",
               self.responses_dropped,
               "Responses dropped because the client disconnected.")
        metric("observatory_http_response_cache_hits_total",
               self._response_cache_hits,
               "200s served from the rendered-response cache (strong "
               "ETag hit: same store position, same canonical query).")
        if self.stream_stats is not None:
            stream = self.stream_stats
            metric("observatory_stream_subscribers", stream.subscribers,
                   "SSE subscribers currently connected to /stream/*.")
            metric("observatory_stream_events_sent_total",
                   stream.events_sent,
                   "Events written to SSE subscribers (catch-up + live).")
            metric("observatory_stream_lagged_total", stream.lagged,
                   "Slow subscribers dropped to their cursor (bounded "
                   "queue overflowed; they re-sync from the store).")
            metric("observatory_stream_resets_total", stream.resets,
                   "Re-sync signals sent after store generation bumps.")
        if self.views is not None:
            view = self.views.stats()
            metric("observatory_view_watermark", view["watermark"],
                   "Store seq the materialized views are caught up to.")
            metric("observatory_view_prefixes", view["prefixes"],
                   "Prefixes tracked in the latest-lifespan view.")
            metric("observatory_view_refreshes_total", view["refreshes"],
                   "Materialized view refresh passes.")
            metric("observatory_view_rebuilds_total", view["rebuilds"],
                   "Full view rebuilds (store generation changes).")
            metric("observatory_view_events_folded_total",
                   view["events_folded"],
                   "Events folded into the views incrementally.")
        if self.ingest is not None:
            ingest = self.ingest.stats()
            metric("observatory_ingest_records_total",
                   ingest["records_ingested"],
                   "Update records consumed from the archive.")
            metric("observatory_ingest_dumps_total", ingest["dumps_ingested"],
                   "RIB dumps consumed from the archive.")
            metric("observatory_ingest_checkpoints_total",
                   ingest["checkpoints_written"], "Checkpoints persisted.")
            metric("observatory_ingest_pending_evaluations",
                   ingest["pending_evaluations"],
                   "Beacon intervals awaiting their evaluation deadline.")
            metric("observatory_forensics_ring_entries",
                   ingest.get("ring_entries"),
                   "(peer, prefix) entries in the last-announcement ring.")
            metric("observatory_forensics_ring_evictions_total",
                   ingest.get("ring_evictions"),
                   "Ring entries evicted at the capacity bound.")
        if self.supervisor is not None:
            sup = self.supervisor.stats()
            metric("observatory_supervisor_restarts_total", sup["restarts"],
                   "Ingest engine restarts after crashes.")
            metric("observatory_ingest_records_skipped_total",
                   sup["records_skipped"],
                   "Poison records skipped by the tolerant decoder.")
            metric("observatory_ingest_bytes_quarantined_total",
                   sup["bytes_quarantined"],
                   "Raw bytes preserved in quarantine sidecars.")
            metric("observatory_ingest_lag_seconds", sup["ingest_lag_seconds"],
                   "Window time remaining ahead of the update watermark.")
            for state in ("healthy", "degraded", "stalled"):
                metric("observatory_ingest_state",
                       1 if sup["state"] == state else 0,
                       "Supervised ingest health state (one-hot).",
                       labels=f'{{state="{state}"}}')
        if self.archive is not None:
            stats = self.archive.stats()
            cache = stats["cache"]
            if cache is not None:
                metric("observatory_archive_cache_hits_total", cache["hits"],
                       "Decoded-file cache hits.")
                metric("observatory_archive_cache_misses_total",
                       cache["misses"], "Decoded-file cache misses.")
                metric("observatory_archive_cache_evictions_total",
                       cache["evictions"], "Decoded-file cache evictions.")
                metric("observatory_archive_cache_entries", cache["entries"],
                       "Decoded files currently cached.")
            scan = stats["scan"]
            metric("observatory_archive_files_considered_total",
                   scan["files_considered"],
                   "Archive files considered by scan planning.")
            metric("observatory_archive_files_skipped_total",
                   scan["files_skipped"],
                   "Archive files skipped via the sidecar index.")
        return "\n".join(lines) + "\n"


class _DrainingHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` with graceful drain semantics.

    Handler threads are non-daemon, so ``server_close()`` (and, as a
    backstop, interpreter exit) joins every in-flight handler instead
    of killing a response mid-write; ``_Handler.timeout`` bounds how
    long a wedged client can delay the join.
    """

    daemon_threads = False


class ObservatoryServer(ObservatoryApp):
    """The threaded transport: one handler thread per connection.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after construction) — the form every test uses.
    Kept as the parity baseline and escape hatch
    (``observatory serve --engine threaded``); the asyncio transport in
    :mod:`repro.observatory.asyncserver` is the default serve path and
    the only one with ``/stream/*``.
    """

    def __init__(self, store: EventStore, host: str = "127.0.0.1",
                 port: int = 0, ingest=None, archive=None, supervisor=None,
                 use_view: bool = True):
        super().__init__(store, ingest=ingest, archive=archive,
                         supervisor=supervisor, use_view=use_view)
        self._httpd = _DrainingHTTPServer((host, port), _Handler)
        self._httpd.observatory = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservatoryServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="observatory-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI foreground mode)."""
        self._httpd.serve_forever()

    def request_shutdown(self) -> None:
        """Signal-handler-safe shutdown request: asks ``serve_forever``
        to return without blocking on it.  (Calling ``shutdown()`` on
        the serving thread deadlocks — it waits for the serve loop the
        caller is standing on — hence the one-shot helper thread.)"""
        threading.Thread(target=self._httpd.shutdown, daemon=True).start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
