"""JSON HTTP query layer over the event store (stdlib-only).

Endpoints::

    GET /healthz                liveness + store position
    GET /outbreaks              outbreak events  (?prefix= &since= &until=)
    GET /zombies                latest lifespan summary per zombie prefix
    GET /zombies/<prefix>       one prefix: lifespan + outbreaks + resurrections
    GET /resurrections          update- and dump-scale resurrections, merged
    GET /metrics                Prometheus text exposition

The server can share an in-process :class:`EventStore` with a running
ingest, or open a store ``readonly`` and serve while a *separate*
process appends to it (the store's recovery rules make concurrent reads
safe).  ``/metrics`` folds in the ingest counters and the archive
read-path counters (decoded-file cache hits/misses/evictions, index
skip-scan) when those objects are attached.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, unquote, urlparse

from repro.observatory.store import EventStore

__all__ = ["ObservatoryServer"]


def _int_param(params: dict, name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer")


def _str_param(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[0] if values else None


class _BadRequest(Exception):
    pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-observatory"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the test/CI output clean

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        observatory: "ObservatoryServer" = self.server.observatory  # type: ignore[attr-defined]
        observatory.requests_served += 1
        url = urlparse(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/metrics":
                self._send_text(200, observatory.render_metrics())
                return
            body = observatory.handle(url.path, params)
            self._send_json(200, body)
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except KeyError:
            self._send_json(404, {"error": f"no such resource: {url.path}"})

    def _send_json(self, status: int, body: dict[str, Any]) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ObservatoryServer:
    """Serve one event store; optionally fold ingest/archive metrics in.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after construction) — the form every test uses.
    """

    def __init__(self, store: EventStore, host: str = "127.0.0.1",
                 port: int = 0, ingest=None, archive=None, supervisor=None):
        self.store = store
        self.ingest = ingest
        self.archive = archive
        self.supervisor = supervisor
        self.requests_served = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.observatory = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservatoryServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="observatory-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI foreground mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- routing ----------------------------------------------------------

    def handle(self, path: str, params: dict) -> dict[str, Any]:
        if path == "/healthz":
            return self._healthz()
        if path == "/outbreaks":
            return self._outbreaks(params)
        if path == "/zombies":
            return self._zombies()
        if path.startswith("/zombies/"):
            return self._zombie(unquote(path[len("/zombies/"):]))
        if path == "/resurrections":
            return self._resurrections(params)
        raise KeyError(path)

    def _healthz(self) -> dict[str, Any]:
        stats = self.store.stats()
        body = {"status": "ok", "events": stats["next_seq"],
                "segments": stats["segments"],
                "ingest_finished": (self.ingest.finished
                                    if self.ingest is not None else None)}
        if self.supervisor is not None:
            state = self.supervisor.state
            body["ingest_state"] = state
            body["supervisor"] = self.supervisor.stats()
            if state != "healthy":
                # Liveness stays "ok" while degraded (the daemon is
                # making progress); a stalled ingest is a real outage.
                body["status"] = "ok" if state == "degraded" else "stalled"
        return body

    def _outbreaks(self, params: dict) -> dict[str, Any]:
        events = list(self.store.events(
            kinds=("outbreak",),
            prefix=_str_param(params, "prefix"),
            since=_int_param(params, "since"),
            until=_int_param(params, "until")))
        return {"count": len(events), "outbreaks": events}

    def _latest_lifespans(self, prefix: Optional[str] = None
                          ) -> dict[str, dict[str, Any]]:
        latest: dict[str, dict[str, Any]] = {}
        for event in self.store.events(kinds=("lifespan",), prefix=prefix):
            latest[event["prefix"]] = event  # seq order: last one wins
        return latest

    def _zombies(self) -> dict[str, Any]:
        zombies = [event for _, event in sorted(self._latest_lifespans().items())
                   if event["segment_count"] > 0]
        return {"count": len(zombies), "zombies": zombies}

    def _zombie(self, prefix: str) -> dict[str, Any]:
        lifespan = self._latest_lifespans(prefix).get(prefix)
        outbreaks = list(self.store.events(kinds=("outbreak",), prefix=prefix))
        resurrections = list(self.store.events(kinds=("resurrection",),
                                               prefix=prefix))
        if lifespan is None and not outbreaks and not resurrections:
            raise KeyError(prefix)
        return {"prefix": prefix, "lifespan": lifespan,
                "outbreaks": outbreaks, "resurrections": resurrections}

    def _resurrections(self, params: dict) -> dict[str, Any]:
        """Both §5.1 scales, merged: update-stream re-announcements and
        RIB-dump gap/reappearance events."""
        prefix = _str_param(params, "prefix")
        since = _int_param(params, "since")
        until = _int_param(params, "until")
        merged = []
        for event in self.store.events(kinds=("resurrection",), prefix=prefix,
                                       since=since, until=until):
            merged.append({**event, "scale": "updates"})
        for event in self.store.events(kinds=("lifespan",), prefix=prefix,
                                       since=since, until=until):
            if event["resurrection"]:
                merged.append({**event, "scale": "rib"})
        merged.sort(key=lambda e: (e["time"], e["seq"]))
        return {"count": len(merged), "resurrections": merged}

    # -- metrics ----------------------------------------------------------

    def render_metrics(self) -> str:
        """Prometheus text exposition of every counter we hold."""
        lines: list[str] = []

        def gauge(name: str, value, help_text: str, labels: str = "") -> None:
            if value is None:
                return
            if not any(line.startswith(f"# HELP {name} ") for line in lines):
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {value}")

        store = self.store.stats()
        gauge("observatory_events_total", store["next_seq"],
              "Events appended to the store over its lifetime.")
        gauge("observatory_store_segments", store["segments"],
              "Segment files in the event store.")
        for kind, count in sorted(store["by_kind"].items()):
            gauge("observatory_events", count,
                  "Events currently in the store by kind.",
                  labels=f'{{kind="{kind}"}}')
        gauge("observatory_http_requests_total", self.requests_served,
              "HTTP requests served.")
        if self.ingest is not None:
            ingest = self.ingest.stats()
            gauge("observatory_ingest_records_total",
                  ingest["records_ingested"],
                  "Update records consumed from the archive.")
            gauge("observatory_ingest_dumps_total", ingest["dumps_ingested"],
                  "RIB dumps consumed from the archive.")
            gauge("observatory_ingest_checkpoints_total",
                  ingest["checkpoints_written"], "Checkpoints persisted.")
            gauge("observatory_ingest_pending_evaluations",
                  ingest["pending_evaluations"],
                  "Beacon intervals awaiting their evaluation deadline.")
        if self.supervisor is not None:
            sup = self.supervisor.stats()
            gauge("observatory_supervisor_restarts_total", sup["restarts"],
                  "Ingest engine restarts after crashes.")
            gauge("observatory_ingest_records_skipped_total",
                  sup["records_skipped"],
                  "Poison records skipped by the tolerant decoder.")
            gauge("observatory_ingest_bytes_quarantined_total",
                  sup["bytes_quarantined"],
                  "Raw bytes preserved in quarantine sidecars.")
            gauge("observatory_ingest_lag_seconds", sup["ingest_lag_seconds"],
                  "Window time remaining ahead of the update watermark.")
            for state in ("healthy", "degraded", "stalled"):
                gauge("observatory_ingest_state",
                      1 if sup["state"] == state else 0,
                      "Supervised ingest health state (one-hot).",
                      labels=f'{{state="{state}"}}')
        if self.archive is not None:
            stats = self.archive.stats()
            cache = stats["cache"]
            if cache is not None:
                gauge("observatory_archive_cache_hits_total", cache["hits"],
                      "Decoded-file cache hits.")
                gauge("observatory_archive_cache_misses_total",
                      cache["misses"], "Decoded-file cache misses.")
                gauge("observatory_archive_cache_evictions_total",
                      cache["evictions"], "Decoded-file cache evictions.")
                gauge("observatory_archive_cache_entries", cache["entries"],
                      "Decoded files currently cached.")
            scan = stats["scan"]
            gauge("observatory_archive_files_considered_total",
                  scan["files_considered"],
                  "Archive files considered by scan planning.")
            gauge("observatory_archive_files_skipped_total",
                  scan["files_skipped"],
                  "Archive files skipped via the sidecar index.")
        return "\n".join(lines) + "\n"
