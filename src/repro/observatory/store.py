"""Append-only event store: the observatory's durable output.

Layout (one directory per store)::

    <root>/manifest.json        atomic (write-temp + rename) manifest
    <root>/seg-00000000.jsonl   segment files, named by first seq
    <root>/seg-00000000.colseg  sealed binary columnar segments

Events are JSON lines with a monotonically increasing ``seq``; each
append is flushed so a crash loses at most a partially written trailing
line, which recovery (and every reader) tolerates by ignoring it.  The
manifest carries a per-segment index — time range, event kinds, format,
and (capped) prefix/peer sets — so queries skip whole segments without
opening them.  Sealed segments are immutable; the active (last) segment
is always re-scanned on open, which is what makes the store readable by
a concurrent process while an ingest appends to it.

Two segment formats coexist behind one manifest.  The *active* segment
is always JSONL — a torn trailing line is the whole crash story, and
recovery is a truncate.  ``compact(fmt="columnar")`` rewrites history
into sealed binary columnar segments (:mod:`repro.observatory.colseg`):
per-kind column groups read via ``mmap`` with per-column min/max, so
scans skip whole groups and decode only the columns a query touches.
Readers hold a small LRU of open columnar segments keyed by the
manifest's seal hash, which makes repeated scans of sealed history
entirely in-memory.

:meth:`EventStore.truncate` drops every event with ``seq >=`` a bound —
the recovery primitive behind the checkpointed ingest: roll the store
back to the checkpoint's event count, then re-emission is deterministic.
:meth:`EventStore.compact` folds superseded ``lifespan`` events (each is
a cumulative per-prefix summary, so only the latest per prefix matters)
while preserving the surviving events' bytes and seqs.

Both rewriting operations bump the manifest's ``generation``, which is
how watermark-based readers (:mod:`repro.observatory.views`) tell "the
store grew" apart from "history behind my watermark changed": an
unchanged generation plus a higher ``next_seq`` means everything below
the watermark is exactly as it was, so reading ``events(min_seq=...)``
is a complete delta.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from repro.observatory import colseg
from repro.observatory.colseg import ColsegError, ColumnarSegment

__all__ = ["EventStore", "MANIFEST_VERSION", "file_sha256"]

MANIFEST_VERSION = 1

#: Above this many distinct values, a segment's prefix/peer index is
#: dropped (``None`` = "may contain anything") to bound manifest size.
INDEX_VALUE_CAP = 64

#: Default number of events per segment file.
DEFAULT_SEGMENT_RECORDS = 1024

#: Open columnar segments (mmap + decoded-column cache) kept per store.
#: Sealed segments are immutable, so entries are validated against the
#: manifest's seal hash and never go stale — the cap only bounds memory.
DEFAULT_COLUMNAR_CACHE = 16


@dataclass
class _Segment:
    """In-memory form of one manifest segment entry."""

    name: str
    first_seq: int
    count: int = 0
    #: Highest seq in the segment.  Compaction folds events *inside*
    #: segments, so seqs are gapped and ``first_seq + count`` no longer
    #: bounds them — every "does seq X live here" question must go
    #: through :attr:`end_seq`.
    last_seq: Optional[int] = None
    min_time: Optional[int] = None
    max_time: Optional[int] = None
    kinds: set[str] = field(default_factory=set)
    prefixes: Optional[set[str]] = field(default_factory=set)
    peers: Optional[set[str]] = field(default_factory=set)
    sealed: bool = False
    #: Content hash, recorded at seal time; None while the segment is
    #: active (its bytes are still growing).  ``observatory doctor``
    #: verifies it to catch bit rot in sealed segments.
    sha256: Optional[str] = None
    #: On-disk format: ``"jsonl"`` (line-per-event, the only format the
    #: active segment may use) or ``"columnar"`` (sealed ``.colseg``).
    format: str = "jsonl"

    @property
    def end_seq(self) -> int:
        """One past the highest seq in the segment."""
        if self.last_seq is not None:
            return self.last_seq + 1
        return self.first_seq + self.count

    def note(self, event: dict[str, Any]) -> None:
        """Fold one event into the index."""
        self.count += 1
        seq = event["seq"]
        self.last_seq = seq if self.last_seq is None \
            else max(self.last_seq, seq)
        time = event.get("time")
        if time is not None:
            self.min_time = time if self.min_time is None else min(self.min_time, time)
            self.max_time = time if self.max_time is None else max(self.max_time, time)
        self.kinds.add(event["kind"])
        if self.prefixes is not None and "prefix" in event:
            self.prefixes.add(event["prefix"])
            if len(self.prefixes) > INDEX_VALUE_CAP:
                self.prefixes = None
        if self.peers is not None:
            peer = event.get("peer_address")
            if peer is not None:
                self.peers.add(peer)
                if len(self.peers) > INDEX_VALUE_CAP:
                    self.peers = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "first_seq": self.first_seq,
            "count": self.count,
            "last_seq": self.last_seq,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "kinds": sorted(self.kinds),
            "prefixes": sorted(self.prefixes) if self.prefixes is not None else None,
            "peers": sorted(self.peers) if self.peers is not None else None,
            "sealed": self.sealed,
            "sha256": self.sha256,
            "format": self.format,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "_Segment":
        return cls(
            name=payload["name"],
            first_seq=payload["first_seq"],
            count=payload["count"],
            last_seq=payload.get("last_seq"),
            min_time=payload["min_time"],
            max_time=payload["max_time"],
            kinds=set(payload["kinds"]),
            prefixes=(set(payload["prefixes"])
                      if payload["prefixes"] is not None else None),
            peers=set(payload["peers"]) if payload["peers"] is not None else None,
            sealed=payload["sealed"],
            sha256=payload.get("sha256"),
            format=payload.get("format", "jsonl"),
        )

    def may_match(self, kinds: Optional[frozenset],
                  prefix: Optional[str],
                  since: Optional[int], until: Optional[int]) -> bool:
        """Index skip test (only trustworthy for sealed segments)."""
        if self.count == 0:
            return False
        if kinds is not None and not (self.kinds & kinds):
            return False
        if prefix is not None and self.prefixes is not None \
                and prefix not in self.prefixes:
            return False
        if since is not None and self.max_time is not None \
                and self.max_time < since:
            return False
        if until is not None and self.min_time is not None \
                and self.min_time >= until:
            return False
        return True


def _segment_name(first_seq: int, fmt: str = "jsonl") -> str:
    extension = "colseg" if fmt == "columnar" else "jsonl"
    return f"seg-{first_seq:08d}.{extension}"


def file_sha256(path: Union[str, Path]) -> str:
    """Hex sha256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _complete_lines(data: bytes) -> tuple[list[bytes], int]:
    """Split raw segment bytes into complete lines; returns the lines
    and the byte length of the complete region (a partially written
    trailing line — crash artefact or concurrent append — is dropped)."""
    end = data.rfind(b"\n") + 1
    lines = data[:end].split(b"\n")[:-1] if end else []
    return lines, end


class EventStore:
    """Segmented JSON-lines event store (see module docstring).

    ``readonly=True`` opens the store for querying while another process
    appends: every query re-reads the manifest and re-scans unsealed
    segments, so newly appended events become visible without any
    coordination.
    """

    def __init__(self, root: Union[str, Path],
                 segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
                 readonly: bool = False,
                 columnar_cache_segments: int = DEFAULT_COLUMNAR_CACHE):
        if segment_max_records <= 0:
            raise ValueError("segment_max_records must be positive")
        self.root = Path(root)
        self.segment_max_records = segment_max_records
        self.readonly = readonly
        self.columnar_cache_segments = max(1, columnar_cache_segments)
        self._segments: list[_Segment] = []
        self._next_seq = 0
        self._generation = 0
        self._handle = None
        #: name -> (seal sha256, open ColumnarSegment); LRU-bounded.
        self._columnar_cache: "OrderedDict[str, tuple[Optional[str], ColumnarSegment]]" = OrderedDict()
        if readonly:
            if not (self.root / "manifest.json").exists():
                raise FileNotFoundError(
                    f"not an event store (no manifest): {self.root}")
            self._load_manifest()
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            if (self.root / "manifest.json").exists():
                self._load_manifest()
                self._recover_active()
            else:
                self._sync_manifest()

    # -- manifest ---------------------------------------------------------

    def _load_manifest(self) -> None:
        with open(self.root / "manifest.json", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported event store manifest version: "
                f"{payload.get('version')!r}")
        self._segments = [_Segment.from_json(s) for s in payload["segments"]]
        self._next_seq = payload["next_seq"]
        self._generation = payload.get("generation", 0)

    def _sync_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "next_seq": self._next_seq,
            "generation": self._generation,
            "segments": [segment.to_json() for segment in self._segments],
        }
        tmp = self.root / "manifest.json.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.root / "manifest.json")

    def _recover_active(self) -> None:
        """Rebuild the active segment's index by scanning its file,
        dropping any partially written trailing line."""
        if not self._segments:
            return
        active = self._segments[-1]
        if active.sealed:
            # A fully-columnar store (every chunk sealed by compaction)
            # has no mutable tail: the manifest is authoritative, and
            # the next append opens a fresh JSONL segment.
            return
        path = self.root / active.name
        data = path.read_bytes() if path.exists() else b""
        lines, complete = _complete_lines(data)
        if complete < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(complete)
        rebuilt = _Segment(name=active.name, first_seq=active.first_seq)
        last_seq = active.first_seq - 1
        for line in lines:
            event = json.loads(line)
            rebuilt.note(event)
            last_seq = event["seq"]
        rebuilt.sealed = active.sealed
        rebuilt.sha256 = active.sha256 if active.sealed else None
        self._segments[-1] = rebuilt
        self._next_seq = last_seq + 1

    # -- append path ------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The seq the next appended event will get (== events appended
        over the store's lifetime, net of truncation)."""
        return self._next_seq

    @property
    def generation(self) -> int:
        """Bumped whenever history is rewritten (truncate / compact /
        doctor repair).  Same generation + higher ``next_seq`` ==
        append-only growth."""
        return self._generation

    def position(self) -> tuple[int, int]:
        """``(generation, next_seq)`` — the store's logical position.

        Together the pair uniquely identifies the store's *visible*
        content, which is what the server's ETags and the materialized
        views key on.  A readonly store re-reads the manifest and then
        the active segment's file tail: a concurrent writer flushes
        every append but only syncs the manifest on segment roll /
        ``sync()``, and ``events()`` reads the file tail — so the
        position must advance with every append a reader can see, not
        just with every manifest sync.
        """
        if self.readonly:
            self._load_manifest()
            return self._generation, self._tail_next_seq()
        return self._generation, self._next_seq

    def _tail_next_seq(self) -> int:
        """``next_seq`` as visible in the active segment's file —
        possibly ahead of the manifest's value while a concurrent
        writer is mid-segment.  Reads only the last complete event."""
        if not self._segments:
            return self._next_seq
        active = self._segments[-1]
        if active.sealed:
            return self._next_seq
        event = self._last_event_in_segment(active)
        if event is None:
            return self._next_seq  # empty, torn, or garbled tail
        seq = event.get("seq")
        if not isinstance(seq, int):
            return self._next_seq  # garbled tail: doctor territory
        return max(self._next_seq, seq + 1)

    def _last_event_in_segment(self, segment: _Segment
                               ) -> Optional[dict[str, Any]]:
        """The last *complete* event in a segment's file, or ``None``.

        One probe shared by both formats: a columnar segment answers
        from its footer-indexed last row; a JSONL segment is read
        backwards in windows so only its tail is touched — a partially
        written trailing line (the crash artefact) is skipped, exactly
        as every reader skips it.
        """
        if segment.format == "columnar":
            try:
                return self._columnar(segment).last_event()
            except (ColsegError, OSError):
                return None
        path = self.root / segment.name
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                window = 1 << 16
                while True:
                    start = max(0, size - window)
                    handle.seek(start)
                    data = handle.read(size - start)
                    end = data.rfind(b"\n")
                    prev = data.rfind(b"\n", 0, end) if end != -1 else -1
                    if start == 0 or (end != -1 and prev != -1):
                        break
                    window *= 2  # a line longer than the window
        except OSError:
            return None
        if end == -1:
            return None  # no complete line yet
        try:
            event = json.loads(data[prev + 1:end])
        except ValueError:
            return None  # torn/garbled tail
        return event if isinstance(event, dict) else None

    def _open_segment(self, first_seq: int) -> None:
        # Named by the seq of the first event it will hold — for plain
        # appends that is ``next_seq``; a pinned append names it after
        # the pinned seq so the on-disk invariant every reader and the
        # doctor rely on (first event seq == first_seq) still holds.
        segment = _Segment(name=_segment_name(first_seq),
                           first_seq=first_seq)
        self._segments.append(segment)
        self._sync_manifest()
        self._handle = open(self.root / segment.name, "ab")

    def append(self, kind: str, time: int, payload: dict[str, Any],
               seq: Optional[int] = None) -> int:
        """Append one event; returns its seq.  Flushed immediately.

        ``seq`` pins the event's seq explicitly instead of taking the
        next one; it must be ``>= next_seq``.  Shard stores use this to
        keep the *source* store's global seqs while holding only a
        routed subset of its events — the resulting gapped-but-ascending
        histories are already first-class here (compaction folds events
        in place and leaves the same shape).
        """
        if self.readonly:
            raise RuntimeError("store opened readonly")
        if seq is None:
            seq = self._next_seq
        elif seq < self._next_seq:
            raise ValueError(f"cannot append seq {seq}: the store is "
                             f"already at {self._next_seq}")
        event = {"seq": seq, "time": time, "kind": kind}
        for key, value in payload.items():
            if key not in event:
                event[key] = value
        active = self._segments[-1] if self._segments else None
        if active is not None and not active.sealed and active.count == 0 \
                and seq != active.first_seq:
            # An empty active segment left by a crash between a roll and
            # its first append: re-open it under the pinned seq so the
            # first-event-matches-first_seq invariant readers and the
            # doctor check still holds.
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            stale = self.root / active.name
            if stale.exists():
                stale.unlink()
            self._segments.pop()
            active = self._segments[-1] if self._segments else None
        if active is None or active.sealed \
                or active.count >= self.segment_max_records:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if active is not None and not active.sealed:
                active.sealed = True
                path = self.root / active.name
                if path.exists():
                    active.sha256 = file_sha256(path)
            self._open_segment(seq)
            active = self._segments[-1]
        elif self._handle is None:
            self._handle = open(self.root / active.name, "ab")
        line = json.dumps(event, sort_keys=True) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        active.note(event)
        self._next_seq = seq + 1
        return event["seq"]

    def sync(self) -> None:
        """Flush the active segment and persist the manifest."""
        if self._handle is not None:
            self._handle.flush()
        if not self.readonly:
            self._sync_manifest()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
        self._drop_columnar_cache()
        if not self.readonly:
            self._sync_manifest()

    # -- read path --------------------------------------------------------

    def _columnar(self, segment: _Segment) -> ColumnarSegment:
        """The (cached) open columnar reader for one sealed segment.

        Entries are validated against the manifest's seal hash, so a
        compaction that reuses a name (same first seq, new contents)
        can never serve stale rows; eviction closes the mmap — decoded
        rows already handed out are plain dicts and stay valid.
        """
        cached = self._columnar_cache.get(segment.name)
        if cached is not None:
            sha, reader = cached
            if sha == segment.sha256:
                self._columnar_cache.move_to_end(segment.name)
                return reader
            del self._columnar_cache[segment.name]
            reader.close()
        reader = ColumnarSegment(self.root / segment.name)
        self._columnar_cache[segment.name] = (segment.sha256, reader)
        while len(self._columnar_cache) > self.columnar_cache_segments:
            _, (_, evicted) = self._columnar_cache.popitem(last=False)
            evicted.close()
        return reader

    def _drop_columnar_cache(self) -> None:
        while self._columnar_cache:
            _, (_, reader) = self._columnar_cache.popitem()
            reader.close()

    def _iter_segment(self, segment: _Segment,
                      kind_set: Optional[frozenset] = None,
                      prefix: Optional[str] = None,
                      since: Optional[int] = None,
                      until: Optional[int] = None,
                      min_seq: Optional[int] = None
                      ) -> Iterator[dict[str, Any]]:
        """Stream one segment's matching events in seq order.

        JSONL segments are read line by line (never materialized whole),
        stopping at a trailing line with no newline — the torn-write
        artefact every reader tolerates.  Columnar segments push the
        filters down into the column reader, which skips whole kind
        groups and decodes only the columns the filters touch.
        """
        path = self.root / segment.name
        if not path.exists():
            return
        if segment.format == "columnar":
            yield from self._columnar(segment).scan(
                kinds=kind_set, prefix=prefix, since=since, until=until,
                min_seq=min_seq)
            return
        with open(path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # partial trailing line: crash or live writer
                event = json.loads(line)
                if min_seq is not None and event["seq"] < min_seq:
                    continue
                if kind_set is not None and event["kind"] not in kind_set:
                    continue
                if prefix is not None and event.get("prefix") != prefix:
                    continue
                time = event.get("time")
                if since is not None and (time is None or time < since):
                    continue
                if until is not None and (time is None or time >= until):
                    continue
                yield event

    def events(self, kinds: Optional[Sequence[str]] = None,
               prefix: Optional[str] = None,
               since: Optional[int] = None,
               until: Optional[int] = None,
               min_seq: Optional[int] = None) -> Iterator[dict[str, Any]]:
        """Iterate matching events in seq order (a streaming generator:
        full scans and view rebuilds hold one segment's worth of state,
        not the whole store).

        ``kinds`` filters on the event kind, ``prefix`` on the exact
        prefix string, ``since``/``until`` on the half-open event time
        window ``[since, until)``, ``min_seq`` on ``seq >= min_seq`` —
        the watermark filter incremental readers use to fetch only what
        was appended since their last pass.  Sealed segments are skipped
        through the manifest index without being opened; ``min_seq``
        additionally skips sealed segments that end below it (the active
        segment is never skipped — its manifest count may trail the file
        when a concurrent writer is appending).
        """
        if self.readonly:
            # Pick up whatever a concurrent writer has published.
            self._load_manifest()
        kind_set = frozenset(kinds) if kinds is not None else None
        for segment in self._segments:
            if min_seq is not None and segment.sealed \
                    and segment.end_seq <= min_seq:
                continue
            if segment.sealed and not segment.may_match(
                    kind_set, prefix, since, until):
                continue
            yield from self._iter_segment(segment, kind_set, prefix,
                                          since, until, min_seq)

    def raw_bytes(self) -> bytes:
        """All segment bytes, concatenated in seq order (for the
        determinism tests: two stores with equal histories are
        byte-identical)."""
        return b"".join((self.root / segment.name).read_bytes()
                        for segment in self._segments
                        if (self.root / segment.name).exists())

    # -- maintenance ------------------------------------------------------

    def truncate(self, next_seq: int) -> int:
        """Drop every event with ``seq >= next_seq``; returns how many
        were dropped.  This is the checkpoint-recovery primitive."""
        if self.readonly:
            raise RuntimeError("store opened readonly")
        if next_seq > self._next_seq:
            raise ValueError(
                f"cannot truncate forward: store has {self._next_seq} "
                f"events, asked for {next_seq}")
        dropped = self._next_seq - next_seq
        if dropped == 0:
            return 0
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        kept: list[_Segment] = []
        for segment in self._segments:
            path = self.root / segment.name
            if segment.first_seq >= next_seq:
                if path.exists():
                    path.unlink()
                continue
            if segment.end_seq <= next_seq:
                kept.append(segment)
                continue
            # Segment straddles the bound: rewrite its surviving prefix.
            # A columnar segment is immutable, so its prefix is rewritten
            # as JSONL (the mutable format) under the jsonl name.
            new_name = _segment_name(segment.first_seq)
            rebuilt = _Segment(name=new_name, first_seq=segment.first_seq)
            tmp = self.root / (new_name + ".tmp")
            with open(tmp, "wb") as handle:
                for event in self._iter_segment(segment):
                    if event["seq"] >= next_seq:
                        break
                    handle.write((json.dumps(event, sort_keys=True)
                                  + "\n").encode("utf-8"))
                    rebuilt.note(event)
            if segment.name != new_name and path.exists():
                path.unlink()
            os.replace(tmp, self.root / new_name)
            kept.append(rebuilt)
        # Reopen the tail for appends — unless it is columnar, which
        # only holds JSON lines' worth of history in binary form; the
        # next append then starts a fresh JSONL segment after it.
        if kept and kept[-1].format == "jsonl":
            kept[-1].sealed = False
            kept[-1].sha256 = None
        self._segments = kept
        self._drop_columnar_cache()
        self._next_seq = next_seq
        self._generation += 1
        self._sync_manifest()
        return dropped

    def compact(self, fmt: str = "jsonl") -> dict[str, int]:
        """Fold superseded ``lifespan`` events.  Each lifespan event
        carries the full cumulative per-prefix summary, so intermediate
        ones add nothing — except segment-boundary markers
        (``started_segment`` / ``resurrection``), which are the §5.1
        dump-scale resurrection history and are preserved.  Every other
        kind survives unchanged (same values, same seqs).

        ``fmt`` picks the rewritten segments' on-disk format.  With
        ``"jsonl"`` (the default) the last chunk is left unsealed so
        appends continue into it, exactly as before.  With
        ``"columnar"`` every chunk becomes a sealed ``.colseg`` file —
        the binary format is immutable — and the next append opens a
        fresh JSONL segment after the history.  Survivors are streamed
        chunk by chunk, so compaction holds at most one segment's worth
        of events in memory.  Returns ``{"kept": n, "dropped": m}``."""
        if self.readonly:
            raise RuntimeError("store opened readonly")
        if fmt not in ("jsonl", "columnar"):
            raise ValueError(f"unknown segment format: {fmt!r}")
        latest: dict[str, int] = {}
        for event in self.events(kinds=("lifespan",)):
            latest[event["prefix"]] = event["seq"]
        # New chunks are staged under temp names while the old files are
        # still being streamed from, then swapped in all at once.
        staged: list[_Segment] = []
        chunk: list[dict[str, Any]] = []
        kept = dropped = 0

        def flush_chunk() -> None:
            nonlocal chunk
            if not chunk:
                return
            name = _segment_name(chunk[0]["seq"], fmt)
            entry = _Segment(name=name, first_seq=chunk[0]["seq"],
                             format=fmt)
            tmp = self.root / (name + ".tmp")
            if fmt == "columnar":
                colseg.write_segment(tmp, chunk)
            else:
                with open(tmp, "wb") as handle:
                    for event in chunk:
                        handle.write((json.dumps(event, sort_keys=True)
                                      + "\n").encode("utf-8"))
            for event in chunk:
                entry.note(event)
            entry.sealed = True
            entry.sha256 = file_sha256(tmp)
            staged.append(entry)
            chunk = []

        for segment in self._segments:
            for event in self._iter_segment(segment):
                if (event["kind"] == "lifespan"
                        and latest.get(event["prefix"]) != event["seq"]
                        and not event.get("started_segment")
                        and not event.get("resurrection")):
                    dropped += 1
                    continue
                kept += 1
                chunk.append(event)
                if len(chunk) >= self.segment_max_records:
                    flush_chunk()
        flush_chunk()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._drop_columnar_cache()
        for segment in self._segments:
            path = self.root / segment.name
            if path.exists():
                path.unlink()
        self._segments = []
        for entry in staged:
            os.replace(self.root / (entry.name + ".tmp"),
                       self.root / entry.name)
            self._segments.append(entry)
        if fmt == "jsonl" and self._segments:
            self._segments[-1].sealed = False
            self._segments[-1].sha256 = None
        self._generation += 1
        self._sync_manifest()
        return {"kept": kept, "dropped": dropped}

    def stats(self) -> dict[str, Any]:
        """Store-level counters for ``/metrics`` and dashboards."""
        by_kind: dict[str, int] = {}
        by_format: dict[str, int] = {}
        events = 0
        for segment in self._segments:
            events += segment.count
            by_format[segment.format] = by_format.get(segment.format, 0) + 1
        for event in self.events():
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        return {
            "root": str(self.root),
            "segments": len(self._segments),
            "events": events,
            "next_seq": self._next_seq,
            "generation": self._generation,
            "by_kind": by_kind,
            "by_format": by_format,
        }
