"""Live event streaming: resume tokens, SSE framing, and the fan-out hub.

The observatory's query endpoints answer *polls*; this module is the
push side — the machinery behind the ``/stream/*`` SSE endpoints of
:class:`repro.observatory.asyncserver.AsyncObservatoryServer`.  The
paper's core finding is that zombie routes linger for hours-to-days
precisely because nobody is watching live, so the platform's alerts
must reach subscribers while the anomaly is still ongoing, not on the
next archive re-scan.

Three load-bearing contracts, shared by server and client:

**Resume tokens** encode a subscriber's position as
``"<generation>:<next_seq>"`` — the store generation the subscriber was
reading plus the next event seq it expects.  A token survives server
restarts (it names a durable store position, not any server state) and
detects history rewrites: a truncate/compact bumps the generation, so a
stale token can never silently resume over rewritten history — the
server answers it with a ``reset`` signal instead.

**SSE framing**: every event rides one ``text/event-stream`` frame with
``id:`` carrying the resume token *after* this event, ``event:``
carrying the event kind, and ``data:`` carrying the exact
``json.dumps(event, sort_keys=True)`` bytes the query endpoints and the
``observatory query`` CLI emit — so a streamed feed is byte-comparable
to a subsequent paged query.  A generation bump mid-stream produces an
``event: reset`` frame whose data names the new ``(generation,
next_seq)``; subscribers must treat everything they derived from the
old generation as unverified and re-sync via the query endpoints.

**Backpressure drops subscribers to their cursor, never events.**  One
:class:`StreamHub` task tails the store (a single ``position()`` poll +
one ``events(min_seq=)`` delta read per pass, no matter how many
subscribers) and fans each new event into per-subscriber bounded
queues.  A subscriber that cannot keep up overflows its queue; the hub
marks it lagged and stops feeding it — the subscriber then re-reads the
store from its own cursor (exactly where it stopped) and rejoins the
live feed.  Every event is delivered exactly once, in seq order,
however slow the consumer.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

__all__ = ["StreamHub", "StreamStats", "Subscription", "TokenError",
           "encode_token", "format_comment", "format_event",
           "format_reset", "parse_token"]

#: Queue entry announcing a generation bump: ``(RESET, generation,
#: next_seq)``.  A plain marker object — event dicts never collide.
RESET = "__reset__"


class TokenError(ValueError):
    """A resume token that cannot be parsed."""


def encode_token(generation: int, next_seq: int) -> str:
    """The resume token naming a subscriber position: the next seq it
    expects, qualified by the generation it was reading."""
    return f"{generation}:{next_seq}"


def parse_token(raw: str) -> tuple[int, int]:
    """Parse ``"<generation>:<next_seq>"``; raises :class:`TokenError`."""
    generation, sep, next_seq = raw.partition(":")
    try:
        if not sep:
            raise ValueError(raw)
        parsed = int(generation), int(next_seq)
    except ValueError:
        raise TokenError(f"resume token must look like "
                         f"'<generation>:<next_seq>', got {raw!r}")
    if parsed[0] < 0 or parsed[1] < 0:
        raise TokenError(f"resume token fields must be non-negative, "
                         f"got {raw!r}")
    return parsed


# -- SSE framing ----------------------------------------------------------

def format_event(event: dict[str, Any], generation: int) -> bytes:
    """One event as an SSE frame.  The ``data:`` payload is the same
    sorted-keys JSON every query path emits; the ``id:`` is the resume
    token *after* this event (``seq + 1``), which is what an SSE client
    replays as ``Last-Event-ID`` on reconnect."""
    data = json.dumps(event, sort_keys=True)
    return (f"id: {encode_token(generation, event['seq'] + 1)}\n"
            f"event: {event['kind']}\n"
            f"data: {data}\n\n").encode("utf-8")


def format_reset(generation: int, next_seq: int) -> bytes:
    """The re-sync signal: history behind the subscriber was rewritten
    (truncate/compact/repair).  Carries — and sets, via ``id:`` — the
    position streaming continues from."""
    data = json.dumps({"generation": generation, "next_seq": next_seq},
                      sort_keys=True)
    return (f"id: {encode_token(generation, next_seq)}\n"
            f"event: reset\n"
            f"data: {data}\n\n").encode("utf-8")


def format_comment(text: str) -> bytes:
    """An SSE comment frame (the keepalive heartbeat)."""
    return f": {text}\n\n".encode("utf-8")


# -- fan-out hub ----------------------------------------------------------

class StreamStats:
    """Counters for ``/metrics`` (``observatory_stream_*`` series).

    Mutated only from the async server's event-loop thread and read
    from metrics-rendering executor threads — single-writer int updates,
    so no lock is needed.
    """

    def __init__(self) -> None:
        self.subscribers = 0
        self.events_sent = 0
        self.lagged = 0
        self.resets = 0


class Subscription:
    """One live-feed attachment: a bounded queue plus the lag flag.

    A subscriber holds a *fresh* instance per live phase; after a lag
    drop the old queue (and anything still in it) is discarded — the
    store, not the queue, is the source of truth for catch-up.
    """

    def __init__(self, queue_events: int):
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_events)
        self.lagged = False


class StreamHub:
    """The shared store tail: one poller feeding every subscriber.

    ``run()`` is a long-lived task on the server's event loop.  Each
    pass reads the store position (blocking file I/O, pushed to the
    executor) and, when the store grew, reads exactly the delta
    ``events(min_seq=watermark)`` in bounded batches — one read serving
    N subscribers, instead of N subscribers each polling the store.  A
    generation change broadcasts a :data:`RESET` entry instead of
    guessing what survived the rewrite.
    """

    def __init__(self, store, stats: StreamStats,
                 poll_interval: float = 0.05, batch_events: int = 1024):
        self.store = store
        self.stats = stats
        self.poll_interval = poll_interval
        self.batch_events = batch_events
        self._subscriptions: set[Subscription] = set()
        self._generation: Optional[int] = None
        self._watermark = 0

    @property
    def watermark(self) -> int:
        """Events below this seq have been broadcast (or predate the
        hub; subscribers cover them by store catch-up)."""
        return self._watermark

    def attach(self, subscription: Subscription) -> None:
        """Join the live feed.  The caller must already hold a store
        cursor at or below the hub watermark *or* catch up from the
        store after attaching — events broadcast before ``attach`` are
        not replayed by the hub."""
        self._subscriptions.add(subscription)

    def detach(self, subscription: Subscription) -> None:
        self._subscriptions.discard(subscription)

    def _read_batch(self, min_seq: int, stop_seq: int
                    ) -> list[dict[str, Any]]:
        """Up to ``batch_events`` events in ``[min_seq, stop_seq)`` —
        runs on an executor thread (store reads are blocking I/O).
        Clamped at the published position exactly like the materialized
        views: events appended after ``position()`` was read wait for
        the next pass."""
        batch: list[dict[str, Any]] = []
        for event in self.store.events(min_seq=min_seq):
            if event["seq"] >= stop_seq:
                break
            batch.append(event)
            if len(batch) >= self.batch_events:
                break
        return batch

    def _broadcast(self, entry: Any) -> None:
        """Feed one queue entry to every live subscriber; a full queue
        marks its subscriber lagged and detaches it (drop-to-cursor:
        the subscriber re-syncs from the store, no event is lost)."""
        for subscription in list(self._subscriptions):
            try:
                subscription.queue.put_nowait(entry)
            except asyncio.QueueFull:
                subscription.lagged = True
                self.stats.lagged += 1
                self._subscriptions.discard(subscription)

    async def run(self) -> None:
        """Poll-and-fan-out forever (cancelled at server shutdown)."""
        loop = asyncio.get_running_loop()
        while True:
            generation, next_seq = await loop.run_in_executor(
                None, self.store.position)
            if self._generation is None:
                # First pass: live subscribers start at the current tail.
                self._generation, self._watermark = generation, next_seq
            if generation != self._generation:
                self._generation = generation
                self._watermark = next_seq
                self._broadcast((RESET, generation, next_seq))
            elif next_seq > self._watermark:
                batch = await loop.run_in_executor(
                    None, self._read_batch, self._watermark, next_seq)
                for event in batch:
                    self._broadcast(event)
                if len(batch) >= self.batch_events:
                    # More to drain: advance and go again without sleeping.
                    self._watermark = batch[-1]["seq"] + 1
                    continue
                self._watermark = next_seq
            await asyncio.sleep(self.poll_interval)
