"""Crash-tolerant driver for a checkpointed ingest.

:class:`ObservatoryIngest` is deterministic and checkpointed but not
crash-*tolerant*: an exception escaping the decode path (a poisoned
archive file under the strict policy, a torn gzip stream, a bug) kills
the ingest loop, and whatever drove it has to notice, rebuild the
engine from the last checkpoint and resume.  The supervisor is that
driver:

* batches of ``batch_records`` are pulled through the engine, each one
  stamping a watchdog heartbeat (injectable clock, so tests freeze it);
* a crash — in the engine or in the caller's ``on_batch`` hook — is
  caught, counted and logged; the engine is rebuilt via the caller's
  factory (which restores from the checkpoint file) after an
  exponential backoff with seeded jitter, so a flapping archive does
  not spin a hot crash loop;
* ``max_restarts`` consecutive failures without forward progress stop
  the loop — better a dead daemon than one silently rewriting the same
  poisoned window forever.

The observable health is a three-state machine:

``healthy``     running (or finished) with no restarts and no records
                skipped by the tolerant decoder;
``degraded``    forward progress, but the run has survived restarts
                and/or the decoder has skipped or quarantined records;
``stalled``     the heartbeat is older than ``heartbeat_timeout``, or
                the supervisor exhausted its restart budget.

:class:`~repro.observatory.server.ObservatoryServer` surfaces the state
in ``/healthz`` and exports the counters (records skipped, bytes
quarantined, restarts, ingest lag) on ``/metrics``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional

from repro.mrt.resilient import DecodeStats
from repro.observatory.ingest import ObservatoryIngest

__all__ = ["ObservatorySupervisor"]

#: States :attr:`ObservatorySupervisor.state` can report.
STATES = ("healthy", "degraded", "stalled")


class ObservatorySupervisor:
    """Run an ingest to completion, restarting it across crashes.

    ``ingest_factory`` builds a fresh :class:`ObservatoryIngest` bound
    to the same checkpoint path every time it is called — constructing
    the engine *is* the recovery (the checkpoint restore rolls the
    store back to the last durable position).  ``on_batch``, when
    given, runs after every batch with the live engine; exceptions it
    raises are treated exactly like engine crashes (the chaos harness
    uses this to corrupt archive files mid-run and to force restarts).

    ``clock`` and ``sleep`` are injectable for tests; the jitter RNG is
    seeded, so a given crash history always produces the same backoff
    schedule.
    """

    def __init__(self, ingest_factory: Callable[[], ObservatoryIngest], *,
                 batch_records: int = 500,
                 max_restarts: int = 5,
                 backoff: float = 1.0,
                 backoff_cap: float = 60.0,
                 jitter: float = 0.5,
                 heartbeat_timeout: float = 300.0,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.ingest_factory = ingest_factory
        self.batch_records = batch_records
        self.max_restarts = max_restarts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.heartbeat_timeout = heartbeat_timeout
        self._rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep

        self.ingest: Optional[ObservatoryIngest] = None
        self.restarts = 0
        self.crashes = 0
        self.batches = 0
        self.gave_up = False
        self.finished = False
        self.last_error: Optional[str] = None
        self.last_heartbeat: Optional[float] = None
        self._consecutive_failures = 0
        #: Decode counters of retired (crashed) engines; the live
        #: engine's are folded in on read, so totals survive restarts.
        self._decode_retired = DecodeStats()

    # -- health -----------------------------------------------------------

    def heartbeat_age(self) -> Optional[float]:
        """Seconds since the last completed batch; None before the
        first one."""
        if self.last_heartbeat is None:
            return None
        return max(0.0, self._clock() - self.last_heartbeat)

    def decode_stats(self) -> DecodeStats:
        """Tolerant-decode counters across every engine this supervisor
        has run (retired ones plus the live one)."""
        total = DecodeStats()
        total.merge(self._decode_retired)
        if self.ingest is not None:
            total.merge(self.ingest.archive.decode_stats)
        return total

    @property
    def records_skipped(self) -> int:
        return self.decode_stats().records_skipped

    @property
    def bytes_quarantined(self) -> int:
        return self.decode_stats().bytes_quarantined

    @property
    def ingest_lag_seconds(self) -> Optional[int]:
        """How far the update watermark trails the window end — 0 once
        the window is fully consumed, None before any record."""
        if self.ingest is None:
            return None
        if self.finished:
            return 0
        watermark = self.ingest._updates_watermark
        if watermark is None:
            return self.ingest.end - self.ingest.start
        return max(0, self.ingest.end - watermark)

    @property
    def state(self) -> str:
        if self.gave_up:
            return "stalled"
        if not self.finished:
            age = self.heartbeat_age()
            if age is not None and age > self.heartbeat_timeout:
                return "stalled"
        if self.restarts > 0 or self.records_skipped > 0 \
                or self.bytes_quarantined > 0:
            return "degraded"
        return "healthy"

    # -- driving ----------------------------------------------------------

    def _backoff_delay(self) -> float:
        base = self.backoff * (2 ** max(0, self._consecutive_failures - 1))
        delay = min(self.backoff_cap, base)
        return delay + self.jitter * self._rng.random()

    def _spawn(self) -> bool:
        """(Re)build the engine from its checkpoint; a factory crash
        counts against the restart budget like any other."""
        try:
            self.ingest = self.ingest_factory()
            # Anchor recovery immediately: a crash in the very first
            # batch must restore to *this* store position, not re-append
            # on top of it (the engine only rolls the store back when a
            # checkpoint exists).
            self.ingest.checkpoint()
            return True
        except Exception as exc:
            self.ingest = None
            self._record_crash(exc)
            return False

    def _record_crash(self, exc: Exception) -> None:
        self.crashes += 1
        self._consecutive_failures += 1
        self.last_error = f"{type(exc).__name__}: {exc}"

    def run(self, on_batch: Optional[
            Callable[[ObservatoryIngest], None]] = None) -> bool:
        """Drive the ingest to :meth:`ObservatoryIngest.finish`.

        Returns True when the window completed; False when the restart
        budget ran out (state is then ``stalled`` and the last error is
        kept for the post-mortem).
        """
        while True:
            if self.ingest is None and not self._spawn():
                if self._consecutive_failures > self.max_restarts:
                    self.gave_up = True
                    return False
                self._sleep(self._backoff_delay())
                self.restarts += 1
                continue
            try:
                ingested = self.ingest.run(self.batch_records)
                if ingested > 0:
                    # Make the batch boundary durable before anything
                    # else can crash; recovery then replays at most one
                    # batch regardless of the engine's own cadence.
                    self.ingest.checkpoint()
                self.batches += 1
                self.last_heartbeat = self._clock()
                if on_batch is not None:
                    on_batch(self.ingest)
                if ingested > 0:
                    # Forward progress resets the failure streak: a
                    # crash per million records is weather, not a loop.
                    self._consecutive_failures = 0
                if ingested < self.batch_records:
                    self.ingest.finish()
                    self.finished = True
                    self.last_heartbeat = self._clock()
                    return True
            except Exception as exc:
                self._record_crash(exc)
                if self._consecutive_failures > self.max_restarts:
                    self.gave_up = True
                    return False
                self._sleep(self._backoff_delay())
                self.restarts += 1
                self._decode_retired.merge(
                    self.ingest.archive.decode_stats)
                self.ingest = None  # rebuild from checkpoint

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Supervisor counters for ``/metrics`` and ``/healthz``."""
        decode = self.decode_stats().as_dict()
        return {
            "state": self.state,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "batches": self.batches,
            "finished": self.finished,
            "gave_up": self.gave_up,
            "last_error": self.last_error,
            "heartbeat_age_seconds": self.heartbeat_age(),
            "ingest_lag_seconds": self.ingest_lag_seconds,
            "records_skipped": self.records_skipped,
            "bytes_quarantined": self.bytes_quarantined,
            "decode": decode,
        }
