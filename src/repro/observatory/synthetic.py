"""A small scripted campaign archive for exercising the observatory.

Builds a deterministic on-disk archive (updates + 8-hourly bview dumps)
whose record stream contains one of each phenomenon the observatory
reports on:

* a **stuck** prefix — one peer never sends the final withdrawal, cured
  a day and a half later (outbreak + multi-dump lifespan);
* an **update-scale resurrection** — withdrawn normally, re-announced
  170 minutes later (the §5.1 Fig. 2 uptick);
* a **dump-scale resurrection** — stuck, withdrawn after two dumps,
  re-announced a day later (a gap in the presence segments, §5.1
  Fig. 4).

Alongside the archive a ``scenario.json`` records the window and the
beacon intervals, so ``python -m repro observatory ingest`` can run
against the archive with no other configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.beacons.schedule import BeaconInterval
from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Announcement, Record, UpdateRecord, Withdrawal
from repro.net.prefix import Prefix
from repro.realtime.streaming import _interval_from_json, _interval_to_json
from repro.ris.archive import ArchiveWriter
from repro.simulator.ribgen import generate_rib_dumps
from repro.utils.timeutil import DAY, HOUR, MINUTE, ts

__all__ = ["SyntheticScenario", "build_synthetic_archive", "load_scenario"]

ORIGIN_ASN = 210312

#: (collector, peer address, peer ASN) — two collectors, two peers each.
PEERS: tuple[tuple[str, str, int], ...] = (
    ("rrc00", "2001:db8:a::1", 64500),
    ("rrc00", "2001:db8:b::1", 64501),
    ("rrc01", "2001:db8:c::1", 64502),
    ("rrc01", "2001:db8:d::1", 64503),
)


@dataclass(frozen=True)
class SyntheticScenario:
    """What :func:`build_synthetic_archive` produced."""

    root: Path
    start: int
    end: int
    intervals: tuple[BeaconInterval, ...]
    #: phenomenon name -> prefix string.
    scripted: dict[str, str]
    record_count: int
    scenario_path: Path


def _attrs(peer_asn: int, peer_address: str) -> PathAttributes:
    return PathAttributes(as_path=ASPath.of(peer_asn, 8298, ORIGIN_ASN),
                          next_hop=peer_address)


def build_synthetic_archive(root: Union[str, Path],
                            days: int = 2) -> SyntheticScenario:
    """Write the scripted archive under ``root``; fully deterministic.

    ``days`` is the number of beacon days (each prefix gets one
    announce/withdraw cycle per day; the zombie scripts ride on the
    final day's cycles).  The window extends two days past the beacon
    days so lifespans and resurrections play out across RIB dumps.
    """
    if days < 1:
        raise ValueError("need at least one beacon day")
    root = Path(root)
    start = ts(2024, 6, 1)
    end = start + (days + 2) * DAY
    prefixes = [Prefix(f"2a0d:3dc1:{0x1000 + i:x}::/48") for i in range(6)]

    intervals: list[BeaconInterval] = []
    for day in range(days):
        for index, prefix in enumerate(prefixes):
            announce = start + day * DAY + 2 * HOUR + index * HOUR
            intervals.append(BeaconInterval(
                prefix=prefix, announce_time=announce,
                withdraw_time=announce + 3 * HOUR, origin_asn=ORIGIN_ASN))

    stuck = prefixes[0]
    resur_updates = prefixes[1]
    resur_rib = prefixes[2]
    final_day = days - 1
    stuck_peer = PEERS[0]
    resur_updates_peer = PEERS[2]
    resur_rib_peer = PEERS[1]

    records: list[Record] = []

    def announce(peer, prefix: Prefix, when: int) -> None:
        collector, address, asn = peer
        records.append(UpdateRecord(when, collector, address, asn,
                                    Announcement(prefix, _attrs(asn, address))))

    def withdraw(peer, prefix: Prefix, when: int) -> None:
        collector, address, asn = peer
        records.append(UpdateRecord(when, collector, address, asn,
                                    Withdrawal(prefix)))

    for interval in intervals:
        is_final = interval.announce_time >= start + final_day * DAY
        for offset, peer in enumerate(PEERS):
            announce(peer, interval.prefix,
                     interval.announce_time + 10 + offset)
            if is_final and interval.prefix == stuck and peer == stuck_peer:
                continue  # the stuck peer never hears the withdrawal
            if is_final and interval.prefix == resur_rib \
                    and peer == resur_rib_peer:
                continue  # stuck too — scripted below
            withdraw(peer, interval.prefix,
                     interval.withdraw_time + 10 + offset)

    final_by_prefix = {p: max(i.withdraw_time for i in intervals
                              if i.prefix == p) for p in prefixes}

    # Stuck prefix: cured a day and a half after the final withdrawal.
    withdraw(stuck_peer, stuck, start + (final_day + 1) * DAY + 12 * HOUR + 10)

    # Update-scale resurrection: back 170 minutes after the withdrawal,
    # gone again an hour later (so it never reaches a RIB dump).
    wd = final_by_prefix[resur_updates]
    announce(resur_updates_peer, resur_updates, wd + 170 * MINUTE + 12)
    withdraw(resur_updates_peer, resur_updates, wd + 170 * MINUTE + HOUR + 12)

    # Dump-scale resurrection: stuck through two dumps, withdrawn, then
    # re-announced a day later and finally cured.
    withdraw(resur_rib_peer, resur_rib, start + (final_day + 1) * DAY + 6)
    announce(resur_rib_peer, resur_rib, start + (final_day + 2) * DAY + 6)
    withdraw(resur_rib_peer, resur_rib,
             start + (final_day + 2) * DAY + 12 * HOUR + 6)

    records.sort(key=lambda r: r.timestamp)
    writer = ArchiveWriter(root)
    by_collector: dict[str, list[Record]] = {}
    for record in records:
        by_collector.setdefault(record.collector, []).append(record)
    for collector, items in sorted(by_collector.items()):
        writer.write_updates(collector, items)
    for dump in generate_rib_dumps(records, start, end):
        writer.write_rib(dump)

    scenario_path = root / "scenario.json"
    with open(scenario_path, "w", encoding="utf-8") as handle:
        json.dump({
            "version": 1,
            "start": start,
            "end": end,
            "threshold": 90 * MINUTE,
            "quiet": 120 * MINUTE,
            "excluded_peers": [],
            "intervals": [_interval_to_json(i) for i in intervals],
            "scripted": {"stuck": str(stuck),
                         "resurrection_updates": str(resur_updates),
                         "resurrection_rib": str(resur_rib)},
        }, handle, indent=2, sort_keys=True)

    return SyntheticScenario(
        root=root, start=start, end=end, intervals=tuple(intervals),
        scripted={"stuck": str(stuck),
                  "resurrection_updates": str(resur_updates),
                  "resurrection_rib": str(resur_rib)},
        record_count=len(records), scenario_path=scenario_path)


def load_scenario(path: Union[str, Path]) -> dict:
    """Read a ``scenario.json``; intervals come back rehydrated."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise ValueError(f"unsupported scenario version: "
                         f"{payload.get('version')!r}")
    payload["intervals"] = [_interval_from_json(entry)
                            for entry in payload["intervals"]]
    payload["excluded_peers"] = frozenset(
        (c, a) for c, a in payload["excluded_peers"])
    return payload
