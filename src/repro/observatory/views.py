"""Materialized read views over the event store.

The §5 lifespan study is a *query* workload: "which prefixes are
zombies right now, and for how long" asked over and over against a
slowly growing event history.  Serving every such query with a full
store scan (`EventStore.events()`) costs O(events) per request;
:class:`MaterializedViews` makes repeated queries O(new events) by
keeping three derived structures up to date incrementally:

* the **latest lifespan per prefix** — each ``lifespan`` event is a
  cumulative per-prefix summary, so only the newest matters;
* **per-prefix outbreak / resurrection counts**;
* the **merged resurrection timeline** — update-scale ``resurrection``
  events and RIB-scale ``lifespan`` events flagged ``resurrection``,
  tagged with their scale and ordered by ``(time, seq)`` exactly as
  ``GET /resurrections`` has always returned them.

Refresh is keyed to the store's ``(generation, next_seq)`` position:
an unchanged generation means history behind the watermark is intact,
so :meth:`MaterializedViews.refresh` folds exactly the events in
``[watermark, next_seq)`` — never past the published position, so the
views always correspond to a position the server's ETags can name.
A generation bump (truncate, compact,
doctor repair) or a watermark regression triggers a full rebuild.
This works identically for a shared-process store and a readonly
store tailing a concurrent writer — the readonly store re-reads its
manifest inside ``position()`` / ``events()``.

The module also hosts the cursor pagination helpers shared by the
HTTP server and the ``observatory query`` CLI: pages are slices of a
deterministically ordered listing, the cursor is the sort key of the
last row served, and a follow-up page starts strictly after it — so
already-served pages never shift under concurrent appends.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Optional

from repro.observatory.store import EventStore

__all__ = ["CursorError", "MaterializedViews", "paginate",
           "pair_cursor", "seq_cursor"]


class CursorError(ValueError):
    """A pagination cursor that cannot be parsed."""


def seq_cursor(raw: str) -> int:
    """Cursor for seq-ordered listings: the last seq served."""
    try:
        return int(raw)
    except ValueError:
        raise CursorError(f"cursor must be an event seq, got {raw!r}")


def pair_cursor(raw: str) -> tuple[int, int]:
    """Cursor for ``(time, seq)``-ordered listings: ``"<time>:<seq>"``."""
    time, sep, seq = raw.partition(":")
    try:
        if not sep:
            raise ValueError(raw)
        return int(time), int(seq)
    except ValueError:
        raise CursorError(f"cursor must look like '<time>:<seq>', "
                          f"got {raw!r}")


def paginate(rows: list, key: Callable[[Any], Any],
             cursor: Optional[Any] = None,
             limit: Optional[int] = None) -> tuple[list, Optional[Any]]:
    """Slice ``rows`` (sorted ascending by ``key``) to one page.

    ``cursor`` is the *parsed* sort key of the last row of the previous
    page; the page starts strictly after it, so a cursor past the end
    yields an empty page.  Returns ``(page, next_cursor)`` where
    ``next_cursor`` is the new last key, or ``None`` when the page
    reaches the end of the listing (or no ``limit`` was given).
    """
    start = 0
    if cursor is not None:
        lo, hi = 0, len(rows)
        while lo < hi:  # bisect_right over key(rows[i])
            mid = (lo + hi) // 2
            if key(rows[mid]) <= cursor:
                lo = mid + 1
            else:
                hi = mid
        start = lo
    if limit is None:
        return rows[start:], None
    page = rows[start:start + limit]
    if page and start + limit < len(rows):
        return page, key(page[-1])
    return page, None


class MaterializedViews:
    """Incrementally maintained query views over one :class:`EventStore`.

    Call :meth:`refresh` before reading; it is cheap when nothing was
    appended (one manifest read for a readonly store, nothing at all
    for a shared-process one).
    """

    #: Bound on the settle loop: a refresh re-checks the generation
    #: after folding and rebuilds when a truncate/compact raced it.
    _MAX_SETTLE = 3

    def __init__(self, store: EventStore):
        self.store = store
        self.refreshes = 0
        self.rebuilds = 0
        self.events_folded = 0
        #: Wall time of the most recent refresh that involved a full
        #: rebuild — the store-format-sensitive number (a rebuild
        #: replays all of history; see ``scripts/bench_query.py``).
        self.last_rebuild_seconds: Optional[float] = None
        #: One lock for maintenance and reads: the server's handler
        #: threads refresh and query concurrently.
        self._lock = threading.RLock()
        self._reset()

    def _reset(self) -> None:
        self._generation: Optional[int] = None
        self._watermark = 0
        self._latest: dict[str, dict[str, Any]] = {}
        self._outbreak_counts: dict[str, int] = {}
        self._resurrection_counts: dict[str, int] = {}
        self._timeline_keys: list[tuple[int, int]] = []
        self._timeline: list[dict[str, Any]] = []
        #: outbreak id -> its ``forensics`` snapshot event (latest
        #: wins) — the O(1) lookup behind ``/outbreaks/<id>/forensics``.
        self._forensics: dict[str, dict[str, Any]] = {}

    # -- maintenance ------------------------------------------------------

    @property
    def watermark(self) -> int:
        """Events below this seq are folded into the views."""
        return self._watermark

    def refresh(self) -> int:
        """Bring the views up to the store's published position.

        Reads only events at or above the watermark; a generation bump
        or watermark regression discards everything and rebuilds (the
        first refresh of a fresh instance counts as a rebuild).
        Returns how many events were folded.
        """
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> int:
        self.refreshes += 1
        folded = 0
        started = time.perf_counter()
        rebuilds_before = self.rebuilds
        for _ in range(self._MAX_SETTLE):
            generation, next_seq = self.store.position()
            if generation != self._generation \
                    or next_seq < self._watermark:
                self._reset()
                self._generation = generation
                self.rebuilds += 1
            if next_seq <= self._watermark:
                break
            for event in self.store.events(min_seq=self._watermark):
                if event["seq"] >= next_seq:
                    # Appended after position() was read.  Folding it
                    # now would push the watermark past the published
                    # position (forcing a spurious rebuild on the next
                    # refresh) and serve content newer than the ETag
                    # the server derived from that position; the next
                    # refresh folds it instead.
                    break
                self._fold(event)
                folded += 1
            self._watermark = next_seq
            # If a truncate/compact raced the scan we may have folded a
            # mix of old and new history; the next pass detects the
            # generation change and rebuilds.
            if self.store.generation == self._generation:
                break
        if self.rebuilds > rebuilds_before:
            self.last_rebuild_seconds = time.perf_counter() - started
        self.events_folded += folded
        return folded

    def _fold(self, event: dict[str, Any]) -> None:
        kind = event["kind"]
        if kind == "lifespan":
            self._latest[event["prefix"]] = event
            if event["resurrection"]:
                self._timeline_insert({**event, "scale": "rib"})
        elif kind == "outbreak":
            prefix = event["prefix"]
            self._outbreak_counts[prefix] = \
                self._outbreak_counts.get(prefix, 0) + 1
        elif kind == "resurrection":
            prefix = event["prefix"]
            self._resurrection_counts[prefix] = \
                self._resurrection_counts.get(prefix, 0) + 1
            self._timeline_insert({**event, "scale": "updates"})
        elif kind == "forensics":
            self._forensics[event["outbreak_id"]] = event

    def _timeline_insert(self, entry: dict[str, Any]) -> None:
        key = (entry["time"], entry["seq"])
        index = bisect.bisect_left(self._timeline_keys, key)
        self._timeline_keys.insert(index, key)
        self._timeline.insert(index, entry)

    # -- queries ----------------------------------------------------------

    def latest_lifespan(self, prefix: str) -> Optional[dict[str, Any]]:
        """The latest ``lifespan`` event for one prefix, or ``None``."""
        with self._lock:
            return self._latest.get(prefix)

    def zombies(self) -> list[dict[str, Any]]:
        """Prefixes currently in a zombie segment, prefix-sorted —
        the ``GET /zombies`` listing."""
        with self._lock:
            return [event for _, event in sorted(self._latest.items())
                    if event["segment_count"] > 0]

    def resurrections(self, prefix: Optional[str] = None,
                      since: Optional[int] = None,
                      until: Optional[int] = None) -> list[dict[str, Any]]:
        """The merged two-scale timeline, ``(time, seq)``-ordered,
        optionally filtered like ``EventStore.events``."""
        rows = []
        with self._lock:
            for entry in self._timeline:
                if prefix is not None and entry.get("prefix") != prefix:
                    continue
                time = entry["time"]
                if since is not None and time < since:
                    continue
                if until is not None and time >= until:
                    continue
                rows.append(entry)
        return rows

    def forensics(self, outbreak_id: str) -> Optional[dict[str, Any]]:
        """The ``forensics`` snapshot event for one outbreak ID."""
        with self._lock:
            return self._forensics.get(outbreak_id)

    def counts(self, prefix: str) -> dict[str, int]:
        """Per-prefix ``outbreak`` / ``resurrection`` event counts."""
        with self._lock:
            return {
                "outbreaks": self._outbreak_counts.get(prefix, 0),
                "resurrections": self._resurrection_counts.get(prefix, 0),
            }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "watermark": self._watermark,
                "generation": self._generation,
                "prefixes": len(self._latest),
                "timeline_entries": len(self._timeline),
                "forensics_entries": len(self._forensics),
                "refreshes": self.refreshes,
                "rebuilds": self.rebuilds,
                "events_folded": self.events_folded,
                "last_rebuild_seconds": self.last_rebuild_seconds,
            }
