"""Real-time zombie detection (the paper's §6 operator platform)."""

from repro.realtime.sinks import (
    AlertDispatcher,
    AlertSink,
    CallbackSink,
    CountingSink,
    JsonLinesSink,
    StoreStreamSink,
    serialise_alert,
)
from repro.realtime.streaming import (
    ResurrectionAlert,
    ResurrectionMonitor,
    StreamingDetector,
    ZombieAlert,
)

__all__ = [
    "AlertDispatcher",
    "AlertSink",
    "CallbackSink",
    "CountingSink",
    "JsonLinesSink",
    "ResurrectionAlert",
    "ResurrectionMonitor",
    "StoreStreamSink",
    "StreamingDetector",
    "ZombieAlert",
    "serialise_alert",
]
