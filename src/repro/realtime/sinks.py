"""Alert sinks: where live zombie alerts go.

The paper's §6 operator platform needs notification plumbing; this keeps
it pluggable: callbacks, counters, JSON-lines files — and a dispatcher
that fans one alert out to all of them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Callable, IO, Optional, Union

from repro.realtime.streaming import ResurrectionAlert, ZombieAlert

__all__ = ["AlertSink", "CallbackSink", "CountingSink", "JsonLinesSink",
           "StoreStreamSink", "AlertDispatcher", "serialise_alert",
           "outbreak_id", "outbreak_prefix"]

#: Field separator for minted outbreak IDs.  ``~`` is URL-safe (RFC
#: 3986 unreserved) and cannot appear in a prefix, collector name or
#: peer address, so the ID parses back unambiguously.
_ID_SEPARATOR = "~"


def outbreak_id(payload: dict) -> str:
    """Mint the stable ID of one serialised outbreak alert.

    Deterministic in the alert's identity fields — the same outbreak
    gets the same ID across kill-resume, re-ingest and live streaming —
    and it *leads with the prefix*, so the federation tier can derive
    the owning shard from the ID alone (the prefix pins the shard).
    """
    return _ID_SEPARATOR.join((
        payload["prefix"], str(payload["announce_time"]),
        payload["collector"], payload["peer_address"]))


def outbreak_prefix(identifier: str) -> str:
    """The prefix component of a minted outbreak ID ("" if malformed)."""
    parts = identifier.split(_ID_SEPARATOR)
    return parts[0] if len(parts) == 4 else ""

Alert = Union[ZombieAlert, ResurrectionAlert]


class AlertSink:
    """Interface: receive one alert."""

    def emit(self, alert: Alert) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - optional hook
        pass


class CallbackSink(AlertSink):
    """Invoke a callable per alert."""

    def __init__(self, callback: Callable[[Alert], None]):
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


class CountingSink(AlertSink):
    """Count alerts per kind and per prefix (operator dashboard stats)."""

    def __init__(self):
        self.total = 0
        self.by_kind: dict[str, int] = {}
        self.by_prefix: dict[str, int] = {}

    def emit(self, alert: Alert) -> None:
        self.total += 1
        kind = type(alert).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        prefix = str(alert.prefix)
        self.by_prefix[prefix] = self.by_prefix.get(prefix, 0) + 1


class JsonLinesSink(AlertSink):
    """Append alerts as JSON lines (machine-readable feed)."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owned = True

    def emit(self, alert: Alert) -> None:
        payload = {"kind": type(alert).__name__}
        payload.update(serialise_alert(alert))
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owned:
            self._handle.close()


def serialise_alert(alert: Alert) -> dict:
    """Flat JSON-safe dict for one alert (shared by every persistent
    sink, including the observatory event store)."""
    return _serialise(alert)


def _serialise(alert: Alert) -> dict:
    if isinstance(alert, ZombieAlert):
        payload = {
            "prefix": str(alert.prefix),
            "collector": alert.peer[0],
            "peer_address": alert.peer[1],
            "peer_asn": alert.peer_asn,
            "announce_time": alert.interval.announce_time,
            "withdraw_time": alert.interval.withdraw_time,
            "detected_at": alert.detected_at,
            "path": str(alert.path) if alert.path is not None else None,
            "stale": alert.stale,
        }
        payload["id"] = outbreak_id(payload)
        return payload
    return {
        "prefix": str(alert.prefix),
        "collector": alert.peer[0],
        "peer_address": alert.peer[1],
        "peer_asn": alert.peer_asn,
        "withdrawn_at": alert.withdrawn_at,
        "resurrected_at": alert.resurrected_at,
        "quiet_seconds": alert.quiet_seconds,
        "path": str(alert.path) if alert.path is not None else None,
    }


class StoreStreamSink(AlertSink):
    """Append alerts straight into an observatory event store — the
    bridge that makes live detection the natural producer for the
    ``/stream/*`` SSE endpoints: every alert this sink sees becomes a
    store event, the serving process's stream hub picks it up on its
    next poll, and every connected subscriber has it one heartbeat
    later.

    Events are written exactly as the batch ingest path writes them
    (same kinds, same ``serialise_alert`` payloads), so consumers
    cannot tell — and need not care — whether an event arrived via
    archive replay or live detection.
    """

    def __init__(self, store):
        self.store = store
        self.appended = 0

    def emit(self, alert: Alert) -> None:
        if isinstance(alert, ZombieAlert):
            self.store.append("outbreak", alert.detected_at,
                              serialise_alert(alert))
        else:
            self.store.append("resurrection", alert.resurrected_at,
                              serialise_alert(alert))
        self.appended += 1
        # No close() override: the store flushes on every append (its
        # crash-loss contract), and its lifecycle belongs to the caller.


class AlertDispatcher(AlertSink):
    """Fan out alerts to several sinks."""

    def __init__(self, sinks: Optional[list[AlertSink]] = None):
        self.sinks: list[AlertSink] = list(sinks or [])

    def add(self, sink: AlertSink) -> None:
        self.sinks.append(sink)

    def emit(self, alert: Alert) -> None:
        for sink in self.sinks:
            sink.emit(alert)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
