"""Real-time (streaming) zombie detection — the paper's §6 vision.

"Real-time detection of a zombie outbreak and identification of the AS
causing it will notify the network operators of the infected ASes" —
this module implements that pipeline as an incremental consumer of the
RIS record stream:

* :class:`StreamingDetector` ingests records in timestamp order,
  schedules an evaluation for every beacon interval at
  ``withdraw_time + threshold``, and emits :class:`ZombieAlert` objects
  the moment the evaluation time passes — no batch reprocessing.
* Evaluations apply the same revised methodology as the offline
  detector: interval isolation, Aggregator-clock dedup, and noisy-peer
  exclusion, so streaming and offline results agree (tested).
* :class:`ResurrectionMonitor` watches withdrawn prefixes and raises a
  :class:`ResurrectionAlert` when a peer re-announces one after a quiet
  period — the §5.1 phenomenon, live.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.beacons.aggregator import AggregatorClock
from repro.beacons.schedule import BeaconInterval
from repro.bgp.attributes import ASPath
from repro.bgp.jsonio import record_from_json, record_to_json
from repro.bgp.messages import Record, StateRecord, UpdateRecord
from repro.core.state import PeerKey
from repro.net.prefix import Prefix
from repro.utils.timeutil import MINUTE

__all__ = ["ZombieAlert", "ResurrectionAlert", "StreamingDetector",
           "ResurrectionMonitor"]

#: Snapshot document version shared by both streaming components.
SNAPSHOT_VERSION = 1


def _interval_to_json(interval: BeaconInterval) -> dict[str, Any]:
    return {"prefix": str(interval.prefix),
            "announce_time": interval.announce_time,
            "withdraw_time": interval.withdraw_time,
            "origin_asn": interval.origin_asn,
            "discarded": interval.discarded}


def _interval_from_json(payload: dict[str, Any]) -> BeaconInterval:
    return BeaconInterval(prefix=Prefix(payload["prefix"]),
                          announce_time=payload["announce_time"],
                          withdraw_time=payload["withdraw_time"],
                          origin_asn=payload["origin_asn"],
                          discarded=payload["discarded"])


@dataclass(frozen=True)
class ZombieAlert:
    """A stuck route detected live."""

    prefix: Prefix
    peer: PeerKey
    peer_asn: int
    interval: BeaconInterval
    detected_at: int
    path: Optional[ASPath]
    stale: bool

    def __str__(self) -> str:
        collector, address = self.peer
        return (f"ALERT zombie {self.prefix} @ {collector}/{address} "
                f"(AS{self.peer_asn}) at {self.detected_at}"
                f"{' [old announcement]' if self.stale else ''}")


@dataclass(frozen=True)
class ResurrectionAlert:
    """A withdrawn prefix re-announced after a quiet period."""

    prefix: Prefix
    peer: PeerKey
    peer_asn: int
    withdrawn_at: int
    resurrected_at: int
    path: Optional[ASPath]

    @property
    def quiet_seconds(self) -> int:
        return self.resurrected_at - self.withdrawn_at


@dataclass
class _PeerPrefixState:
    """Live per-(peer, prefix) state."""

    present: bool = False
    last_announcement: Optional[UpdateRecord] = None
    #: announce-epoch: the interval announce time this state belongs to.
    seen_since: int = 0


class StreamingDetector:
    """Incremental revised-methodology detector.

    Usage::

        detector = StreamingDetector(threshold=90*60)
        detector.add_intervals(schedule.intervals(start, end))
        for record in stream:              # must be time-ordered
            for alert in detector.observe(record):
                notify(alert)
        alerts += detector.advance(end_of_stream_time)
    """

    def __init__(self, threshold: int = 90 * MINUTE, dedup: bool = True,
                 excluded_peers: frozenset[PeerKey] = frozenset()):
        self.threshold = threshold
        self.dedup = dedup
        self.excluded_peers = excluded_peers
        #: (eval_time, seq, interval) pending evaluations.
        self._pending: list[tuple[int, int, BeaconInterval]] = []
        self._seq = 0
        #: prefix -> (peer -> state); only beacon prefixes are tracked.
        self._state: dict[Prefix, dict[PeerKey, _PeerPrefixState]] = {}
        self._peer_asn: dict[PeerKey, int] = {}
        self._tracked: set[Prefix] = set()
        self._clock = 0
        self._alert_count = 0

    # -- interval registration ------------------------------------------

    def add_interval(self, interval: BeaconInterval) -> None:
        if interval.discarded:
            return
        eval_time = interval.withdraw_time + self.threshold
        heapq.heappush(self._pending, (eval_time, self._seq, interval))
        self._seq += 1
        self._tracked.add(interval.prefix)

    def add_intervals(self, intervals: Iterable[BeaconInterval]) -> None:
        for interval in intervals:
            self.add_interval(interval)

    @property
    def pending_evaluations(self) -> int:
        return len(self._pending)

    @property
    def alerts_emitted(self) -> int:
        return self._alert_count

    # -- ingestion ---------------------------------------------------------

    def observe(self, record: Record) -> list[ZombieAlert]:
        """Ingest one record (records must arrive in time order) and
        return any alerts whose evaluation time has now passed."""
        alerts = self.advance(record.timestamp)
        key: PeerKey = (record.collector, record.peer_address)
        self._peer_asn.setdefault(key, record.peer_asn)

        if isinstance(record, StateRecord):
            if record.is_session_down or record.is_session_up:
                for states in self._state.values():
                    state = states.get(key)
                    if state is not None:
                        state.present = False
                        state.last_announcement = None
            return alerts

        assert isinstance(record, UpdateRecord)
        if record.prefix not in self._tracked:
            return alerts
        states = self._state.setdefault(record.prefix, {})
        state = states.setdefault(key, _PeerPrefixState())
        if record.is_announcement:
            state.present = True
            state.last_announcement = record
            state.seen_since = min(state.seen_since or record.timestamp,
                                   record.timestamp)
        else:
            state.present = False
            state.last_announcement = None
        return alerts

    def advance(self, now: int) -> list[ZombieAlert]:
        """Advance the clock; evaluate every interval whose evaluation
        instant has passed."""
        self._clock = max(self._clock, now)
        alerts: list[ZombieAlert] = []
        while self._pending and self._pending[0][0] <= self._clock:
            _, _, interval = heapq.heappop(self._pending)
            alerts.extend(self._evaluate(interval))
        self._alert_count += len(alerts)
        return alerts

    def flush(self) -> list[ZombieAlert]:
        """Evaluate everything still pending (end of stream)."""
        if not self._pending:
            return []
        horizon = max(eval_time for eval_time, _, _ in self._pending)
        return self.advance(horizon)

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe document capturing the complete detector state:
        pending evaluations, per-(prefix, peer) live state including the
        supporting announcements, clocks and counters.  Restoring it with
        :meth:`from_snapshot` and continuing the stream produces exactly
        the alerts an uninterrupted detector would have produced."""
        state = []
        for prefix in sorted(self._state, key=str):
            for key in sorted(self._state[prefix]):
                s = self._state[prefix][key]
                state.append({
                    "prefix": str(prefix),
                    "collector": key[0],
                    "peer_address": key[1],
                    "present": s.present,
                    "seen_since": s.seen_since,
                    "last_announcement": (record_to_json(s.last_announcement)
                                          if s.last_announcement is not None
                                          else None),
                })
        return {
            "version": SNAPSHOT_VERSION,
            "threshold": self.threshold,
            "dedup": self.dedup,
            "excluded_peers": sorted([c, a] for c, a in self.excluded_peers),
            "pending": [[eval_time, seq, _interval_to_json(interval)]
                        for eval_time, seq, interval in sorted(self._pending)],
            "seq": self._seq,
            "clock": self._clock,
            "alert_count": self._alert_count,
            "peer_asns": [[c, a, asn]
                          for (c, a), asn in sorted(self._peer_asn.items())],
            "tracked": sorted(str(p) for p in self._tracked),
            "state": state,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "StreamingDetector":
        """Rebuild a detector from a :meth:`snapshot` document."""
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported StreamingDetector snapshot version: "
                f"{snapshot.get('version')!r}")
        detector = cls(
            threshold=snapshot["threshold"], dedup=snapshot["dedup"],
            excluded_peers=frozenset((c, a)
                                     for c, a in snapshot["excluded_peers"]))
        detector._pending = [(eval_time, seq, _interval_from_json(payload))
                             for eval_time, seq, payload in snapshot["pending"]]
        heapq.heapify(detector._pending)
        detector._seq = snapshot["seq"]
        detector._clock = snapshot["clock"]
        detector._alert_count = snapshot["alert_count"]
        detector._peer_asn = {(c, a): asn
                              for c, a, asn in snapshot["peer_asns"]}
        detector._tracked = {Prefix(text) for text in snapshot["tracked"]}
        for entry in snapshot["state"]:
            states = detector._state.setdefault(Prefix(entry["prefix"]), {})
            states[(entry["collector"], entry["peer_address"])] = \
                _PeerPrefixState(
                    present=entry["present"],
                    last_announcement=(
                        record_from_json(entry["last_announcement"])
                        if entry["last_announcement"] is not None else None),
                    seen_since=entry["seen_since"])
        return detector

    # -- evaluation -----------------------------------------------------------

    def _evaluate(self, interval: BeaconInterval) -> Iterator[ZombieAlert]:
        eval_time = interval.withdraw_time + self.threshold
        states = self._state.get(interval.prefix, {})
        for key in sorted(states):
            if key in self.excluded_peers:
                continue
            state = states[key]
            announcement = state.last_announcement
            if not state.present or announcement is None:
                continue
            # Interval isolation: the supporting announcement must have
            # been received within this interval.
            if announcement.timestamp < interval.announce_time:
                continue
            stale = self._is_stale(announcement, interval)
            if self.dedup and stale:
                continue
            yield ZombieAlert(
                prefix=interval.prefix, peer=key,
                peer_asn=self._peer_asn.get(key, 0),
                interval=interval, detected_at=eval_time,
                path=(announcement.attributes.as_path
                      if announcement.attributes else None),
                stale=stale)

    @staticmethod
    def _is_stale(announcement: UpdateRecord,
                  interval: BeaconInterval) -> bool:
        attrs = announcement.attributes
        if attrs is None or attrs.aggregator is None:
            return False
        address = attrs.aggregator.address
        if not AggregatorClock.is_clock_address(address):
            return False
        origin_time = AggregatorClock.decode(address, announcement.timestamp)
        return origin_time < interval.announce_time - MINUTE


class ResurrectionMonitor:
    """Live detector for §5.1 resurrections: a tracked prefix that was
    withdrawn at a peer and re-announced after at least ``quiet``
    seconds raises an alert."""

    def __init__(self, prefixes: Iterable[Prefix], quiet: int = 120 * MINUTE,
                 scheduled_announcements: Iterable[tuple[Prefix, int]] = (),
                 schedule_tolerance: int = 5 * MINUTE):
        self.quiet = quiet
        self.schedule_tolerance = schedule_tolerance
        self._tracked = set(prefixes)
        #: (peer, prefix) -> withdrawal time.
        self._withdrawn_at: dict[tuple[PeerKey, Prefix], int] = {}
        #: prefix -> sorted scheduled announce times: a re-announcement
        #: near one of these is the *beacon* speaking, not a zombie.
        self._scheduled: dict[Prefix, list[int]] = {}
        for prefix, time in scheduled_announcements:
            self._scheduled.setdefault(prefix, []).append(time)
        for times in self._scheduled.values():
            times.sort()

    def track(self, prefix: Prefix) -> None:
        self._tracked.add(prefix)

    def _is_scheduled(self, prefix: Prefix, time: int) -> bool:
        import bisect

        times = self._scheduled.get(prefix)
        if not times:
            return False
        index = bisect.bisect_left(times, time - self.schedule_tolerance)
        return (index < len(times)
                and times[index] <= time + self.schedule_tolerance)

    def observe(self, record: Record) -> Optional[ResurrectionAlert]:
        if not isinstance(record, UpdateRecord):
            return None
        if record.prefix not in self._tracked:
            return None
        key: PeerKey = (record.collector, record.peer_address)
        slot = (key, record.prefix)
        if record.is_withdrawal:
            self._withdrawn_at.setdefault(slot, record.timestamp)
            return None
        withdrawn_at = self._withdrawn_at.pop(slot, None)
        if withdrawn_at is None:
            return None
        if record.timestamp - withdrawn_at < self.quiet:
            return None
        if self._is_scheduled(record.prefix, record.timestamp):
            return None  # the beacon itself re-announced — not a zombie
        return ResurrectionAlert(
            prefix=record.prefix, peer=key, peer_asn=record.peer_asn,
            withdrawn_at=withdrawn_at, resurrected_at=record.timestamp,
            path=(record.attributes.as_path if record.attributes else None))

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe document capturing tracked prefixes, open withdrawal
        windows and the beacon schedule filter."""
        return {
            "version": SNAPSHOT_VERSION,
            "quiet": self.quiet,
            "schedule_tolerance": self.schedule_tolerance,
            "tracked": sorted(str(p) for p in self._tracked),
            "withdrawn_at": [[c, a, str(prefix), time]
                             for ((c, a), prefix), time
                             in sorted(self._withdrawn_at.items(),
                                       key=lambda kv: (kv[0][0],
                                                       str(kv[0][1])))],
            "scheduled": {str(prefix): times
                          for prefix, times in sorted(self._scheduled.items(),
                                                      key=lambda kv: str(kv[0]))},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "ResurrectionMonitor":
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported ResurrectionMonitor snapshot version: "
                f"{snapshot.get('version')!r}")
        monitor = cls((), quiet=snapshot["quiet"],
                      schedule_tolerance=snapshot["schedule_tolerance"])
        monitor._tracked = {Prefix(text) for text in snapshot["tracked"]}
        monitor._withdrawn_at = {
            ((c, a), Prefix(text)): time
            for c, a, text, time in snapshot["withdrawn_at"]}
        monitor._scheduled = {Prefix(text): list(times)
                              for text, times in snapshot["scheduled"].items()}
        return monitor
