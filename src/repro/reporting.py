"""One-shot paper-vs-measured report over every table and figure.

Library counterpart of ``examples/generate_report.py`` (and the backend
of ``python -m repro report``).
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.experiments import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
    build_figure7,
    build_paper_cases,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    campaign_run,
    render_figure2,
    render_figure3,
    render_figure4,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    replication_run,
    replication_runs,
)
from repro.experiments.cases import render_case
from repro.utils.timeutil import MINUTE

__all__ = ["generate"]


def generate(quick: bool = False, days: int = 6,
             stream: TextIO = sys.stdout) -> None:
    """Run both experiments and print every reproduced artefact."""

    def banner(text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=stream)

    started = time.time()
    banner("Simulating the 2024 beacon campaign")
    campaign = campaign_run(quick=quick)
    print(f"done in {time.time() - started:.0f}s: "
          f"{campaign.announcement_count} announcements, "
          f"{len(campaign.records)} records", file=stream)

    started = time.time()
    banner(f"Simulating the three replication periods ({days} days each)")
    runs = replication_runs(days=days)
    run_2018 = replication_run("2018", days=days)
    print(f"done in {time.time() - started:.0f}s", file=stream)

    banner("T1")
    print(render_table1(build_table1(runs)), file=stream)
    banner("T2")
    print(render_table2(build_table2(runs)), file=stream)
    banner("T3")
    print(render_table3(build_table3(runs)), file=stream)
    banner("T4")
    print(render_table4(build_table4(run_2018)), file=stream)
    banner("T5")
    print(render_table5(build_table5(campaign)), file=stream)

    banner("F2")
    print(render_figure2(build_figure2(
        campaign, thresholds_minutes=(90, 100, 110, 120, 130, 140, 150, 160,
                                      170, 175, 180))), file=stream)
    banner("F3")
    print(render_figure3(build_figure3(campaign)), file=stream)
    banner("F4")
    print(render_figure4(build_figure4(campaign)), file=stream)

    banner("F5 / F6 / F7 (2018 period)")
    fig5 = build_figure5(run_2018)
    print(f"F5 without-dc: zero-pairs={fig5.without_dc.zero_fraction:.1%} "
          f"mean v4={fig5.without_dc.mean_rate_v4:.4f} "
          f"v6={fig5.without_dc.mean_rate_v6:.4f}", file=stream)
    fig6 = build_figure6(run_2018)
    stats = fig6.without_dc
    print(f"F6 without-dc: normal(normal)="
          f"{stats.normal_at_normal_peers.mean():.2f} "
          f"normal(zombie)={stats.normal_at_zombie_peers.mean():.2f} "
          f"zombie={stats.zombie_paths.mean():.2f} "
          f"changed={stats.changed_path_fraction:.1%}", file=stream)
    fig7 = build_figure7(run_2018)
    print(f"F7 without-dc: v4 single={fig7.without_dc.single_fraction_v4:.1%} "
          f"v6 single={fig7.without_dc.single_fraction_v6:.1%}", file=stream)

    banner("C1 / C2")
    cases = build_paper_cases(campaign)
    print(render_case("impactful", cases["impactful"]), file=stream)
    print(render_case("long-lived", cases["long_lived"]), file=stream)

    banner("Headline §5 numbers")
    at_90 = campaign.detect(threshold=90 * MINUTE, exclude_noisy=True)
    at_180 = campaign.detect(threshold=180 * MINUTE, exclude_noisy=True)
    survival = (at_180.outbreak_count / at_90.outbreak_count
                if at_90.outbreak_count else 0.0)
    print(f"outbreaks @90min: {at_90.outbreak_count} "
          f"({at_90.outbreak_fraction():.1%}); @3h: {at_180.outbreak_count} "
          f"({at_180.outbreak_fraction():.1%}); survival {survival:.1%} "
          f"(paper: 31.4%)", file=stream)
