"""RIPE RIS substrate: collectors, peers and the raw-data archive."""

from repro.ris.archive import (
    DEFAULT_CACHE_FILES,
    RIB_DUMP_SECONDS,
    UPDATE_BIN_SECONDS,
    Archive,
    ArchiveWriter,
)
from repro.ris.cache import DecodedFileCache
from repro.ris.chaos import ChaosReport, build_reference_archive, corrupt_archive
from repro.ris.collectors import DEFAULT_COLLECTORS, Collector, PeerRegistry, RISPeer
from repro.ris.index import (
    INDEX_SUFFIX,
    FileIndex,
    build_index,
    build_rib_index,
    index_path,
    load_index,
    reindex_archive,
    write_index,
)
from repro.ris.pushdown import RecordFilter

__all__ = [
    "Archive",
    "ArchiveWriter",
    "UPDATE_BIN_SECONDS",
    "RIB_DUMP_SECONDS",
    "DEFAULT_CACHE_FILES",
    "ChaosReport",
    "DecodedFileCache",
    "build_reference_archive",
    "corrupt_archive",
    "RecordFilter",
    "FileIndex",
    "INDEX_SUFFIX",
    "index_path",
    "build_index",
    "build_rib_index",
    "write_index",
    "load_index",
    "reindex_archive",
    "Collector",
    "PeerRegistry",
    "RISPeer",
    "DEFAULT_COLLECTORS",
]
