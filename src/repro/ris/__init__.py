"""RIPE RIS substrate: collectors, peers and the raw-data archive."""

from repro.ris.archive import (
    RIB_DUMP_SECONDS,
    UPDATE_BIN_SECONDS,
    Archive,
    ArchiveWriter,
)
from repro.ris.collectors import DEFAULT_COLLECTORS, Collector, PeerRegistry, RISPeer

__all__ = [
    "Archive",
    "ArchiveWriter",
    "UPDATE_BIN_SECONDS",
    "RIB_DUMP_SECONDS",
    "Collector",
    "PeerRegistry",
    "RISPeer",
    "DEFAULT_COLLECTORS",
]
