"""On-disk RIS raw-data archive with the real RIPE layout.

Files live at::

    <root>/<collector>/<YYYY.MM>/updates.<YYYYMMDD>.<HHMM>.gz   (5-minute bins)
    <root>/<collector>/<YYYY.MM>/bview.<YYYYMMDD>.<HHMM>.gz     (8-hourly RIBs)

:class:`ArchiveWriter` bins a record stream into update files and writes
RIB snapshots; :class:`Archive` resolves time windows back to files and
iterates decoded records, merging collectors in time order — exactly the
access pattern the zombie pipeline (and pybgpstream) uses against the
real archive.

The read path is built for throughput:

* every update file carries a JSON sidecar index (``.idx``, see
  :mod:`repro.ris.index`) so window resolution and pushed-down
  peer/ipversion/prefix-family clauses can skip whole files without
  decompressing them;
* ``Archive(root, workers=N)`` decodes multi-file windows on a process
  pool (:mod:`repro.ris.parallel`) with an ordered heap-merge identical
  to the sequential path;
* a decoded-file LRU cache (:mod:`repro.ris.cache`), keyed by
  ``(path, size, mtime)``, makes re-scanning the same window with a
  different detector or filter nearly free;
* :meth:`Archive.iter_updates` accepts a
  :class:`~repro.ris.pushdown.RecordFilter` so stream-level clauses are
  applied at (or before) decode time.
"""

from __future__ import annotations

import gzip
import heapq
import warnings
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.bgp.messages import Record, record_sort_key
from repro.mrt.files import read_updates_file, write_updates_file
from repro.mrt.resilient import DecodeStats, ErrorPolicy
from repro.mrt.tabledump import RibDump, decode_rib_dump, encode_rib_dump
from repro.ris.cache import DecodedFileCache
from repro.ris.index import build_rib_index, load_index, write_index
from repro.ris.parallel import iter_plan_parallel, worker_pool
from repro.ris.pushdown import RecordFilter
from repro.utils.timeutil import align_down, to_datetime

__all__ = ["Archive", "ArchiveWriter", "UPDATE_BIN_SECONDS",
           "RIB_DUMP_SECONDS", "DEFAULT_CACHE_FILES"]

UPDATE_BIN_SECONDS = 5 * 60
RIB_DUMP_SECONDS = 8 * 3600

#: Default size (in files) of the per-archive decoded-file LRU cache.
DEFAULT_CACHE_FILES = 32


def _month_dir(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt.year:04d}.{dt.month:02d}"


def _file_stamp(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt:%Y%m%d}.{dt:%H%M}"


def _parse_file_stamp(name: str) -> int:
    """Timestamp from ``updates.YYYYMMDD.HHMM.gz`` / ``bview....`` names.

    Raises :class:`ValueError` for names that do not follow the archive
    convention (temp files, index sidecars, foreign drops).
    """
    parts = name.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an archive file name: {name!r}")
    date_part, time_part = parts[1], parts[2]
    dt = datetime.strptime(date_part + time_part, "%Y%m%d%H%M")
    return int(dt.replace(tzinfo=timezone.utc).timestamp())


def _warn_foreign_file(path: Path) -> None:
    """Default hook for non-conforming files found in month directories."""
    warnings.warn(f"skipping non-archive file in month directory: {path}",
                  RuntimeWarning, stacklevel=3)


class ArchiveWriter:
    """Write records and RIB dumps into an archive directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def write_updates(self, collector: str, records: Iterable[Record]) -> list[Path]:
        """Bin records into 5-minute update files; returns paths written.

        Records for bins that already exist on disk are merged with the
        existing content (needed when a simulation writes incrementally).
        Each file gets a fresh sidecar index (:mod:`repro.ris.index`).
        """
        bins: dict[int, list[Record]] = {}
        for record in records:
            if record.collector != collector:
                raise ValueError(
                    f"record for {record.collector} routed to {collector} writer")
            bin_start = align_down(record.timestamp, UPDATE_BIN_SECONDS)
            bins.setdefault(bin_start, []).append(record)

        written = []
        for bin_start, items in sorted(bins.items()):
            path = self.update_path(collector, bin_start)
            if path.exists():
                existing = list(read_updates_file(path, collector))
                items = existing + items
            items.sort(key=record_sort_key)
            write_updates_file(path, items, sort=False)
            write_index(path, items)
            written.append(path)
        return written

    def write_rib(self, dump: RibDump) -> Path:
        """Write one bview snapshot."""
        path = self.rib_path(dump.collector, dump.timestamp)
        path.parent.mkdir(parents=True, exist_ok=True)
        # mtime=0 + empty embedded filename: byte-identical re-writes,
        # stable transport manifest checksums.
        with open(path, "wb") as raw, \
                gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                              mtime=0) as handle:
            handle.write(encode_rib_dump(dump))
        write_index(path, (), index=build_rib_index(dump))
        return path

    def update_path(self, collector: str, bin_start: int) -> Path:
        return (self.root / collector / _month_dir(bin_start)
                / f"updates.{_file_stamp(bin_start)}.gz")

    def rib_path(self, collector: str, timestamp: int) -> Path:
        return (self.root / collector / _month_dir(timestamp)
                / f"bview.{_file_stamp(timestamp)}.gz")


class Archive:
    """Read-side of the archive.

    ``workers`` > 1 decodes multi-file windows on a process pool;
    ``cache_size`` bounds the decoded-file LRU cache (0 disables it);
    ``on_foreign_file`` is called with each non-conforming path found in
    a month directory (default: a :class:`RuntimeWarning`).

    ``error_policy`` selects the decode containment mode
    (:class:`~repro.mrt.resilient.ErrorPolicy`): ``None`` (default)
    keeps the legacy behaviour — per-record decode errors skipped
    silently, structural corruption raises; ``"strict"`` fails fast on
    any corruption; ``"skip"``/``"quarantine"`` contain bad bytes via
    header resync, counting them into :attr:`decode_stats` (and, under
    quarantine, preserving them in per-file sidecars).  The policy is
    applied identically on the serial and process-pool paths.
    """

    def __init__(self, root: Union[str, Path], workers: int = 1,
                 cache_size: int = DEFAULT_CACHE_FILES,
                 on_foreign_file: Optional[Callable[[Path], None]] = None,
                 error_policy: Optional[str] = None):
        self.root = Path(root)
        if not self.root.exists():
            raise FileNotFoundError(f"archive root does not exist: {self.root}")
        self.workers = max(1, int(workers))
        self.cache = DecodedFileCache(cache_size) if cache_size > 0 else None
        self.on_foreign_file = on_foreign_file or _warn_foreign_file
        self.error_policy = (ErrorPolicy.validate(error_policy)
                             if error_policy is not None else None)
        self.decode_stats = DecodeStats()
        self.files_considered = 0
        self.files_skipped = 0

    def collectors(self) -> list[str]:
        """Collector directories present in the archive."""
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name.startswith("rrc"))

    def _files(self, collector: str, kind: str, start: int, end: int) -> list[Path]:
        """Archive files of ``kind`` whose file stamp falls in [start, end)."""
        base = self.root / collector
        if not base.exists():
            return []
        out = []
        for month_dir in sorted(base.iterdir()):
            if not month_dir.is_dir():
                continue
            for path in sorted(month_dir.glob(f"{kind}.*.gz")):
                try:
                    stamp = _parse_file_stamp(path.name)
                except ValueError:
                    self.on_foreign_file(path)
                    continue
                if start <= stamp < end:
                    out.append(path)
        return out

    def update_files(self, collector: str, start: int, end: int) -> list[Path]:
        """Update files covering the window [start, end).

        The file containing ``start`` is included even though its stamp
        may precede ``start`` (records are filtered at iteration time).
        """
        window_start = align_down(start, UPDATE_BIN_SECONDS)
        return self._files(collector, "updates", window_start, end)

    def rib_files(self, collector: str, start: int, end: int) -> list[Path]:
        return self._files(collector, "bview", start, end)

    def _file_may_match(self, path: Path, start: int, end: int,
                        record_filter: Optional[RecordFilter]) -> bool:
        """Sidecar-index skip test; True when no (fresh) index exists."""
        index = load_index(path)
        if index is None:
            return True
        if index.record_count == 0:
            return False
        if index.max_timestamp < start or index.min_timestamp >= end:
            return False
        if record_filter is not None and not record_filter.may_match_file(index):
            return False
        return True

    def _scan_plan(self, start: int, end: int,
                   collectors: Optional[Sequence[str]],
                   record_filter: Optional[RecordFilter]
                   ) -> list[tuple[str, list[Path]]]:
        """Per-collector file lists after index-based skipping."""
        if collectors is not None:
            collectors = list(collectors)
        elif record_filter is not None and record_filter.collectors:
            collectors = sorted(record_filter.collectors)
        else:
            collectors = self.collectors()
        plan = []
        for collector in collectors:
            if (record_filter is not None and record_filter.collectors
                    and collector not in record_filter.collectors):
                continue
            paths = []
            for path in self.update_files(collector, start, end):
                self.files_considered += 1
                if self._file_may_match(path, start, end, record_filter):
                    paths.append(path)
                else:
                    self.files_skipped += 1
            plan.append((collector, paths))
        return plan

    def stats(self) -> dict:
        """Read-path counters (cache + index skip-scan) for ``/metrics``."""
        return {
            "root": str(self.root),
            "workers": self.workers,
            "error_policy": self.error_policy,
            "cache": self.cache.stats() if self.cache is not None else None,
            "scan": {
                "files_considered": self.files_considered,
                "files_skipped": self.files_skipped,
                "files_decoded": self.files_considered - self.files_skipped,
            },
            "decode": self.decode_stats.as_dict(),
        }

    def _decoded(self, path: Path, collector: str,
                 record_filter: Optional[RecordFilter]) -> Iterable[Record]:
        """Decode one file, via the LRU cache when possible.

        The cache only ever stores complete unfiltered decodes, so a
        filtered scan populates nothing but can still be served from a
        prior unfiltered decode of the same file.
        """
        if self.cache is not None:
            cached = self.cache.get(path)
            if cached is not None:
                if record_filter is None:
                    return cached
                return [r for r in cached if record_filter.matches_record(r)]
            if record_filter is None:
                records = tuple(read_updates_file(
                    path, collector, error_policy=self.error_policy,
                    stats=self.decode_stats))
                self.cache.put(path, records)
                return records
        return read_updates_file(path, collector, record_filter=record_filter,
                                 error_policy=self.error_policy,
                                 stats=self.decode_stats)

    def iter_updates(self, start: int, end: int,
                     collectors: Optional[Sequence[str]] = None,
                     record_filter: Optional[RecordFilter] = None
                     ) -> Iterator[Record]:
        """Iterate decoded records in [start, end) over all collectors,
        merged in global (time, collector, peer) order.

        ``record_filter`` pushes stream-level clauses down to (or below)
        decode time; the yielded sequence is exactly the unfiltered
        sequence with non-matching records removed.
        """
        plan = self._scan_plan(start, end, collectors, record_filter)
        total_files = sum(len(paths) for _, paths in plan)
        if self.workers > 1 and total_files > 1:
            merged = self._iter_parallel(plan, record_filter)
        else:
            merged = self._iter_sequential(plan, record_filter)
        for record in merged:
            if start <= record.timestamp < end:
                yield record

    def _iter_sequential(self, plan: Sequence[tuple[str, Sequence[Path]]],
                         record_filter: Optional[RecordFilter]
                         ) -> Iterator[Record]:
        def stream(collector: str, paths: Sequence[Path]) -> Iterator[Record]:
            for path in paths:
                yield from self._decoded(path, collector, record_filter)

        streams = [stream(c, paths) for c, paths in plan]
        yield from heapq.merge(*streams, key=record_sort_key)

    def _iter_parallel(self, plan: Sequence[tuple[str, Sequence[Path]]],
                       record_filter: Optional[RecordFilter]
                       ) -> Iterator[Record]:
        with worker_pool(self.workers) as pool:
            if pool is None:  # pools unavailable on this platform
                yield from self._iter_sequential(plan, record_filter)
                return
            yield from iter_plan_parallel(pool, plan, record_filter, self.cache,
                                          error_policy=self.error_policy,
                                          stats=self.decode_stats)

    def iter_ribs(self, start: int, end: int,
                  collectors: Optional[Sequence[str]] = None) -> Iterator[RibDump]:
        """Iterate RIB snapshots in [start, end), in time order."""
        collectors = list(collectors) if collectors is not None else self.collectors()
        stamped: list[tuple[int, Path]] = []
        for collector in collectors:
            for path in self.rib_files(collector, start, end):
                stamped.append((_parse_file_stamp(path.name), path))
        for _, path in sorted(stamped, key=lambda item: (item[0], str(item[1]))):
            with gzip.open(path, "rb") as handle:
                yield decode_rib_dump(handle.read())
