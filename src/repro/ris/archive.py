"""On-disk RIS raw-data archive with the real RIPE layout.

Files live at::

    <root>/<collector>/<YYYY.MM>/updates.<YYYYMMDD>.<HHMM>.gz   (5-minute bins)
    <root>/<collector>/<YYYY.MM>/bview.<YYYYMMDD>.<HHMM>.gz     (8-hourly RIBs)

:class:`ArchiveWriter` bins a record stream into update files and writes
RIB snapshots; :class:`Archive` resolves time windows back to files and
iterates decoded records, merging collectors in time order — exactly the
access pattern the zombie pipeline (and pybgpstream) uses against the
real archive.
"""

from __future__ import annotations

import heapq
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.bgp.messages import Record, record_sort_key
from repro.mrt.files import read_updates_file, write_updates_file
from repro.mrt.tabledump import RibDump, decode_rib_dump, encode_rib_dump
from repro.utils.timeutil import align_down, to_datetime

__all__ = ["Archive", "ArchiveWriter", "UPDATE_BIN_SECONDS", "RIB_DUMP_SECONDS"]

UPDATE_BIN_SECONDS = 5 * 60
RIB_DUMP_SECONDS = 8 * 3600


def _month_dir(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt.year:04d}.{dt.month:02d}"


def _file_stamp(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt:%Y%m%d}.{dt:%H%M}"


def _parse_file_stamp(name: str) -> int:
    """Timestamp from ``updates.YYYYMMDD.HHMM.gz`` / ``bview....`` names."""
    parts = name.split(".")
    date_part, time_part = parts[1], parts[2]
    dt = datetime.strptime(date_part + time_part, "%Y%m%d%H%M")
    return int(dt.replace(tzinfo=timezone.utc).timestamp())


class ArchiveWriter:
    """Write records and RIB dumps into an archive directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def write_updates(self, collector: str, records: Iterable[Record]) -> list[Path]:
        """Bin records into 5-minute update files; returns paths written.

        Records for bins that already exist on disk are merged with the
        existing content (needed when a simulation writes incrementally).
        """
        bins: dict[int, list[Record]] = {}
        for record in records:
            if record.collector != collector:
                raise ValueError(
                    f"record for {record.collector} routed to {collector} writer")
            bin_start = align_down(record.timestamp, UPDATE_BIN_SECONDS)
            bins.setdefault(bin_start, []).append(record)

        written = []
        for bin_start, items in sorted(bins.items()):
            path = self.update_path(collector, bin_start)
            if path.exists():
                existing = list(read_updates_file(path, collector))
                items = existing + items
            items.sort(key=record_sort_key)
            write_updates_file(path, items, sort=False)
            written.append(path)
        return written

    def write_rib(self, dump: RibDump) -> Path:
        """Write one bview snapshot."""
        path = self.rib_path(dump.collector, dump.timestamp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")  # ensure truncation on rewrite
        import gzip

        with gzip.open(path, "wb") as handle:
            handle.write(encode_rib_dump(dump))
        return path

    def update_path(self, collector: str, bin_start: int) -> Path:
        return (self.root / collector / _month_dir(bin_start)
                / f"updates.{_file_stamp(bin_start)}.gz")

    def rib_path(self, collector: str, timestamp: int) -> Path:
        return (self.root / collector / _month_dir(timestamp)
                / f"bview.{_file_stamp(timestamp)}.gz")


class Archive:
    """Read-side of the archive."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        if not self.root.exists():
            raise FileNotFoundError(f"archive root does not exist: {self.root}")

    def collectors(self) -> list[str]:
        """Collector directories present in the archive."""
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name.startswith("rrc"))

    def _files(self, collector: str, kind: str, start: int, end: int) -> list[Path]:
        """Archive files of ``kind`` whose file stamp falls in [start, end)."""
        base = self.root / collector
        if not base.exists():
            return []
        out = []
        for month_dir in sorted(base.iterdir()):
            if not month_dir.is_dir():
                continue
            for path in sorted(month_dir.glob(f"{kind}.*.gz")):
                stamp = _parse_file_stamp(path.name)
                if start <= stamp < end:
                    out.append(path)
        return out

    def update_files(self, collector: str, start: int, end: int) -> list[Path]:
        """Update files covering the window [start, end).

        The file containing ``start`` is included even though its stamp
        may precede ``start`` (records are filtered at iteration time).
        """
        window_start = align_down(start, UPDATE_BIN_SECONDS)
        return self._files(collector, "updates", window_start, end)

    def rib_files(self, collector: str, start: int, end: int) -> list[Path]:
        return self._files(collector, "bview", start, end)

    def iter_updates(self, start: int, end: int,
                     collectors: Optional[Sequence[str]] = None) -> Iterator[Record]:
        """Iterate decoded records in [start, end) over all collectors,
        merged in global (time, collector, peer) order."""
        collectors = list(collectors) if collectors is not None else self.collectors()

        def stream(collector: str) -> Iterator[Record]:
            for path in self.update_files(collector, start, end):
                for record in read_updates_file(path, collector):
                    if start <= record.timestamp < end:
                        yield record

        streams = [stream(c) for c in collectors]
        yield from heapq.merge(*streams, key=record_sort_key)

    def iter_ribs(self, start: int, end: int,
                  collectors: Optional[Sequence[str]] = None) -> Iterator[RibDump]:
        """Iterate RIB snapshots in [start, end), in time order."""
        import gzip

        collectors = list(collectors) if collectors is not None else self.collectors()
        stamped: list[tuple[int, Path]] = []
        for collector in collectors:
            for path in self.rib_files(collector, start, end):
                stamped.append((_parse_file_stamp(path.name), path))
        for _, path in sorted(stamped, key=lambda item: (item[0], str(item[1]))):
            with gzip.open(path, "rb") as handle:
                yield decode_rib_dump(handle.read())
