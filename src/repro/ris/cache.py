"""Decoded-file LRU cache for the archive read path.

Benchmarks and experiments habitually re-scan the same time window with
different detectors; without a cache every scan pays the full gzip +
MRT decode cost again.  :class:`DecodedFileCache` keeps the most
recently decoded update files as immutable record tuples, keyed by
``(path, size, mtime_ns)`` so any rewrite of the underlying file —
including an :class:`~repro.ris.archive.ArchiveWriter` merge —
invalidates the entry automatically.

Entries always hold the *complete, unfiltered* decode of a file;
window trimming and filter push-down are applied on the way out, so one
cached decode serves every consumer regardless of its filter.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from repro.bgp.messages import Record

__all__ = ["DecodedFileCache"]


class DecodedFileCache:
    """LRU cache of fully-decoded update files."""

    def __init__(self, max_files: int = 32):
        if max_files <= 0:
            raise ValueError("max_files must be positive")
        self.max_files = max_files
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _fingerprint(self, path: Path) -> Optional[tuple]:
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def get(self, path: Union[str, Path]) -> Optional[tuple[Record, ...]]:
        """Cached record tuple for ``path``, or None (miss or stale)."""
        path = Path(path)
        key = str(path)
        entry = self._entries.get(key)
        if entry is not None:
            fingerprint, records = entry
            if fingerprint == self._fingerprint(path):
                self._entries.move_to_end(key)
                self.hits += 1
                return records
            del self._entries[key]  # stale: file was rewritten
        self.misses += 1
        return None

    def put(self, path: Union[str, Path], records) -> None:
        path = Path(path)
        fingerprint = self._fingerprint(path)
        if fingerprint is None:
            return
        key = str(path)
        self._entries[key] = (fingerprint, tuple(records))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_files:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """Counters for dashboards and the observatory ``/metrics``."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_files": self.max_files,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
