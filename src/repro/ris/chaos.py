"""Seeded corruption of on-disk archives, for chaos testing the ingest.

The chaos harness (``scripts/chaos_ingest.py``, the chaos-smoke CI job
and the resilience tests) needs to damage archive files the way real
collectors do — flipped bytes inside records, garbage runs between
records, files torn mid-record — while knowing *exactly* which records
were destroyed, so a supervised tolerant ingest can be asserted
byte-identical to a clean ingest of the surviving records.

Corruption operates on the decompressed MRT record stream (the layer
the tolerant decoder defends; transport-level corruption of the
*compressed* bytes is the mirror's checksum problem, already covered by
:mod:`repro.transport`).  Decisions come from a seeded RNG in the same
spirit as :class:`repro.transport.faults.FaultPlan`, so a given archive
and seed always produce the same damage.

Three damage kinds:

``flip``      flip a byte the decoder is guaranteed to reject (the BGP
              marker of a message record, the state field of a
              state-change record) — destroys exactly that record;
``garbage``   insert a run of ``0xde 0xad`` filler before a record —
              forces a header resync but destroys nothing;
``truncate``  cut the file mid-way through its final record —
              destroys exactly the final record.

The filler pattern is chosen so no window of it (or of its boundary
with a real header) parses as a plausible MRT header, keeping the
resync cost deterministic.
"""

from __future__ import annotations

import gzip
import random
import shutil
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.mrt.bgp4mp import MRTRecordHeader
from repro.mrt.constants import (
    BGP4MP_MESSAGE_AS4,
    BGP4MP_STATE_CHANGE,
    BGP4MP_STATE_CHANGE_AS4,
)
from repro.mrt.files import iter_raw_records
from repro.net.prefix import AFI_IPV4
from repro.ris.index import index_path

__all__ = ["ChaosReport", "corrupt_archive", "build_reference_archive"]

_MRT_HDR = struct.Struct("!IHHI")
_U16_PAIR = struct.Struct("!HH")

#: Garbage filler; no 12-byte window over it is a plausible MRT header.
_FILLER = b"\xde\xad"


@dataclass
class ChaosReport:
    """What :func:`corrupt_archive` did, precisely enough to rebuild the
    expected surviving record stream."""

    files_seen: int = 0
    files_corrupted: int = 0
    records_total: int = 0
    records_destroyed: int = 0
    garbage_runs: int = 0
    garbage_bytes: int = 0
    truncations: int = 0
    #: relative file path -> sorted raw-record indexes destroyed in it.
    destroyed: dict[str, list[int]] = field(default_factory=dict)

    def merge(self, other: "ChaosReport") -> None:
        self.files_seen += other.files_seen
        self.files_corrupted += other.files_corrupted
        self.records_total += other.records_total
        self.records_destroyed += other.records_destroyed
        self.garbage_runs += other.garbage_runs
        self.garbage_bytes += other.garbage_bytes
        self.truncations += other.truncations
        for rel, indexes in other.destroyed.items():
            merged = sorted(set(self.destroyed.get(rel, [])) | set(indexes))
            self.destroyed[rel] = merged


def _poison_record(header: MRTRecordHeader, body: bytes) -> bytes:
    """Flip bytes so the record is structurally intact (header length
    still true) but guaranteed to fail decoding."""
    mutated = bytearray(body)
    if header.subtype in (BGP4MP_STATE_CHANGE, BGP4MP_STATE_CHANGE_AS4):
        # An out-of-range PeerState value: decode raises ValueError.
        mutated[-2:] = b"\xff\xff"
        return bytes(mutated)
    # Message records: corrupt the first BGP marker byte (decode checks
    # the full 16-byte marker before anything else).
    asn_size = 8 if header.subtype == BGP4MP_MESSAGE_AS4 else 4
    _ifindex, afi = _U16_PAIR.unpack_from(body, asn_size)
    addr_len = 4 if afi == AFI_IPV4 else 16
    marker_at = asn_size + 4 + 2 * addr_len
    mutated[marker_at] ^= 0xFF
    return bytes(mutated)


def _rewrite(path: Path, payload: bytes) -> None:
    """Publish the corrupted decompressed stream (deterministic gzip
    bytes, same convention as the archive writer) and drop the sidecar
    index, which no longer describes the file."""
    with open(path, "wb") as raw, \
            gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                          mtime=0) as handle:
        handle.write(payload)
    sidecar = index_path(path)
    if sidecar.exists():
        sidecar.unlink()


def corrupt_archive(root: Union[str, Path], *,
                    rate: float = 0.01,
                    garbage_rate: float = 0.0,
                    truncate_rate: float = 0.0,
                    seed: int = 0,
                    predicate: Optional[Callable[[Path], bool]] = None
                    ) -> ChaosReport:
    """Damage the update files under ``root`` in place, deterministically.

    ``rate`` is the per-record destruction probability, ``garbage_rate``
    the per-record probability of a garbage run being inserted before
    it, ``truncate_rate`` the per-file probability of tearing the file
    mid-way through its final record.  ``predicate`` (on the file path)
    restricts which files are eligible — the chaos harness uses it to
    corrupt the not-yet-ingested half of a window mid-run.

    Returns a :class:`ChaosReport`; ``report.destroyed`` is exactly what
    :func:`build_reference_archive` needs to construct the clean archive
    a tolerant ingest of the damaged one must be equivalent to.
    """
    root = Path(root)
    rng = random.Random(seed)
    report = ChaosReport()
    for path in sorted(root.glob("*/*/updates.*.gz")):
        if predicate is not None and not predicate(path):
            continue
        report.files_seen += 1
        raws = [(header, body) for header, body in iter_raw_records(path)]
        report.records_total += len(raws)
        destroyed: list[int] = []
        pieces: list[bytes] = []
        damaged = False
        for position, (header, body) in enumerate(raws):
            if garbage_rate and rng.random() < garbage_rate:
                run = _FILLER * rng.randint(2, 32)
                pieces.append(run)
                report.garbage_runs += 1
                report.garbage_bytes += len(run)
                damaged = True
            if rate and rng.random() < rate:
                body = _poison_record(header, body)
                destroyed.append(position)
                damaged = True
            pieces.append(_MRT_HDR.pack(header.timestamp, header.mrt_type,
                                        header.subtype, header.length) + body)
        if truncate_rate and raws and rng.random() < truncate_rate:
            final = len(raws) - 1
            if final not in destroyed:
                destroyed.append(final)
            tail = pieces[-1]
            pieces[-1] = tail[:12 + max(1, (len(tail) - 12) // 2)]
            report.truncations += 1
            damaged = True
        if damaged:
            _rewrite(path, b"".join(pieces))
            report.files_corrupted += 1
            if destroyed:
                rel = str(path.relative_to(root))
                report.destroyed[rel] = sorted(destroyed)
                report.records_destroyed += len(destroyed)
    return report


def build_reference_archive(clean_root: Union[str, Path],
                            dest_root: Union[str, Path],
                            destroyed: dict[str, list[int]]) -> Path:
    """Copy ``clean_root`` to ``dest_root``, dropping the raw records a
    chaos run destroyed.

    A tolerant ingest of the corrupted archive must observe exactly the
    record stream this archive decodes to — which is what lets the chaos
    harness assert byte-identical event stores.
    """
    clean_root = Path(clean_root)
    dest_root = Path(dest_root)
    if dest_root.exists():
        shutil.rmtree(dest_root)
    shutil.copytree(clean_root, dest_root)
    for rel, indexes in sorted(destroyed.items()):
        path = dest_root / rel
        drop = set(indexes)
        kept: list[bytes] = []
        for position, (header, body) in enumerate(
                iter_raw_records(clean_root / rel)):
            if position in drop:
                continue
            kept.append(_MRT_HDR.pack(header.timestamp, header.mrt_type,
                                      header.subtype, header.length) + body)
        _rewrite(path, b"".join(kept))
    return dest_root
