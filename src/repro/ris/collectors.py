"""RIPE RIS collector and peer registries.

Real RIS operates route collectors ``rrc00``–``rrc26``, each peering with
volunteer ASes ("RIS peers").  A peer AS may connect several *peer
routers* (distinct addresses) to one collector, and one peer router may
feed IPv6 routes over an IPv4 transport session (as the paper's noisy
peer 176.119.234.201 does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["Collector", "RISPeer", "PeerRegistry", "DEFAULT_COLLECTORS"]

#: The collector names RIS has operated (rrc08/09/14 retired but present
#: in historical data).
DEFAULT_COLLECTORS: tuple[str, ...] = tuple(f"rrc{i:02d}" for i in range(27))


@dataclass(frozen=True)
class Collector:
    """One RIS route collector."""

    name: str
    location: str = ""

    def __post_init__(self):
        if not self.name.startswith("rrc"):
            raise ValueError(f"collector name must look like rrcNN: {self.name!r}")


@dataclass(frozen=True)
class RISPeer:
    """One RIS peer *router*: (collector, address, ASN).

    ``transport_v4`` marks peers whose BGP session runs over IPv4 even
    when they feed IPv6 AFI data.
    """

    collector: str
    address: str
    asn: int
    transport_v4: bool = False

    @property
    def key(self) -> tuple[str, str]:
        """The identity the detection pipeline tracks: (collector, address)."""
        return (self.collector, self.address)


class PeerRegistry:
    """The set of RIS peers known to an experiment/archive."""

    def __init__(self, peers: Iterable[RISPeer] = ()):
        self._peers: dict[tuple[str, str], RISPeer] = {}
        for peer in peers:
            self.add(peer)

    def add(self, peer: RISPeer) -> None:
        key = peer.key
        if key in self._peers and self._peers[key] != peer:
            raise ValueError(f"conflicting registration for peer {key}")
        self._peers[key] = peer

    def get(self, collector: str, address: str) -> Optional[RISPeer]:
        return self._peers.get((collector, address))

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[RISPeer]:
        return iter(self._peers.values())

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._peers

    def by_collector(self, collector: str) -> list[RISPeer]:
        return [p for p in self._peers.values() if p.collector == collector]

    def by_asn(self, asn: int) -> list[RISPeer]:
        """All peer routers of one peer AS (may span collectors)."""
        return [p for p in self._peers.values() if p.asn == asn]

    def asns(self) -> set[int]:
        return {p.asn for p in self._peers.values()}

    def collectors(self) -> set[str]:
        return {p.collector for p in self._peers.values()}
