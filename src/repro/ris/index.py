"""Sidecar file indexes for archive MRT files.

Each ``updates.*.gz`` file can carry a small JSON sidecar —
``<name>.idx`` — summarising its contents: record counts by kind, the
min/max record timestamp, the set of peer ASNs and the set of address
families among route prefixes.  The read path uses the sidecar to skip
whole files (window resolution and peer/ipversion/prefix-family filter
push-down) without decompressing them.

Staleness is detected via the indexed file's size and mtime: a sidecar
whose recorded ``(size, mtime_ns)`` no longer matches the data file —
e.g. after a foreign writer rewrote the file — is ignored and the
reader falls back to decoding.  :class:`~repro.ris.archive.ArchiveWriter`
rewrites the sidecar on every update-file write, so archives produced by
this library are always fully indexed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.bgp.messages import Record, StateRecord, UpdateRecord

__all__ = ["FileIndex", "INDEX_SUFFIX", "index_path", "build_index",
           "build_rib_index", "write_index", "load_index", "reindex_archive"]

INDEX_SUFFIX = ".idx"
INDEX_VERSION = 1


@dataclass(frozen=True)
class FileIndex:
    """Summary statistics of one archive update file."""

    record_count: int
    announce_count: int
    withdraw_count: int
    state_count: int
    min_timestamp: Optional[int]
    max_timestamp: Optional[int]
    peer_asns: frozenset
    afis: frozenset

    @property
    def update_count(self) -> int:
        return self.announce_count + self.withdraw_count


def index_path(data_path: Union[str, Path]) -> Path:
    """Sidecar path for a data file: ``updates.<stamp>.gz.idx``."""
    data_path = Path(data_path)
    return data_path.with_name(data_path.name + INDEX_SUFFIX)


def build_index(records: Iterable[Record]) -> FileIndex:
    """Compute the index of a decoded record sequence."""
    announce = withdraw = state = 0
    min_ts: Optional[int] = None
    max_ts: Optional[int] = None
    peer_asns: set[int] = set()
    afis: set[int] = set()
    for record in records:
        peer_asns.add(record.peer_asn)
        if min_ts is None or record.timestamp < min_ts:
            min_ts = record.timestamp
        if max_ts is None or record.timestamp > max_ts:
            max_ts = record.timestamp
        if isinstance(record, StateRecord):
            state += 1
        else:
            assert isinstance(record, UpdateRecord)
            if record.is_announcement:
                announce += 1
            else:
                withdraw += 1
            afis.add(record.prefix.afi)
    return FileIndex(
        record_count=announce + withdraw + state,
        announce_count=announce,
        withdraw_count=withdraw,
        state_count=state,
        min_timestamp=min_ts,
        max_timestamp=max_ts,
        peer_asns=frozenset(peer_asns),
        afis=frozenset(afis),
    )


def build_rib_index(dump) -> FileIndex:
    """Index of one ``bview`` snapshot: every route entry counts as a
    reachability record at the dump instant."""
    route_count = sum(len(entries) for entries in dump.entries.values())
    afis = {prefix.afi for prefix in dump.entries}
    peer_asns = set()
    for prefix, entries in dump.entries.items():
        for entry in entries:
            peer_asns.add(dump.peers[entry.peer_index].asn)
    return FileIndex(
        record_count=route_count,
        announce_count=route_count,
        withdraw_count=0,
        state_count=0,
        min_timestamp=dump.timestamp if route_count else None,
        max_timestamp=dump.timestamp if route_count else None,
        peer_asns=frozenset(peer_asns),
        afis=frozenset(afis),
    )


def write_index(data_path: Union[str, Path], records: Iterable[Record],
                index: Optional[FileIndex] = None) -> Path:
    """Write the sidecar for ``data_path`` (which must already exist)."""
    data_path = Path(data_path)
    if index is None:
        index = build_index(records)
    stat = data_path.stat()
    payload = {
        "version": INDEX_VERSION,
        "file_size": stat.st_size,
        "file_mtime_ns": stat.st_mtime_ns,
        "record_count": index.record_count,
        "announce_count": index.announce_count,
        "withdraw_count": index.withdraw_count,
        "state_count": index.state_count,
        "min_timestamp": index.min_timestamp,
        "max_timestamp": index.max_timestamp,
        "peer_asns": sorted(index.peer_asns),
        "afis": sorted(index.afis),
    }
    path = index_path(data_path)
    path.write_text(json.dumps(payload, separators=(",", ":")))
    return path


def load_index(data_path: Union[str, Path]) -> Optional[FileIndex]:
    """Load the sidecar for ``data_path``; None if missing, foreign-format
    or stale with respect to the data file."""
    data_path = Path(data_path)
    path = index_path(data_path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != INDEX_VERSION:
        return None
    try:
        stat = data_path.stat()
        if (payload["file_size"] != stat.st_size
                or payload["file_mtime_ns"] != stat.st_mtime_ns):
            return None
        return FileIndex(
            record_count=payload["record_count"],
            announce_count=payload["announce_count"],
            withdraw_count=payload["withdraw_count"],
            state_count=payload["state_count"],
            min_timestamp=payload["min_timestamp"],
            max_timestamp=payload["max_timestamp"],
            peer_asns=frozenset(payload["peer_asns"]),
            afis=frozenset(payload["afis"]),
        )
    except (OSError, KeyError, TypeError):
        return None


def reindex_archive(root: Union[str, Path], rebuild: bool = False) -> int:
    """Write sidecars for every update file under ``root`` that lacks a
    fresh one (or for all of them with ``rebuild=True``); returns the
    number of sidecars written."""
    from repro.mrt.files import read_updates_file

    root = Path(root)
    written = 0
    for collector_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        collector = collector_dir.name
        for path in sorted(collector_dir.glob("*/updates.*.gz")):
            if not rebuild and load_index(path) is not None:
                continue
            records = list(read_updates_file(path, collector))
            write_index(path, records)
            written += 1
    return written
