"""Process-pool decode of multi-file archive windows.

MRT decode is pure-python CPU work, so multi-file windows are decoded
with a :class:`~concurrent.futures.ProcessPoolExecutor`: each worker
gzip-decompresses and decodes one file (with filter push-down applied
in the worker, so non-matching records never cross the process
boundary), and the parent merges the per-collector streams with the
same ``(time, collector, peer)`` heap-merge as the sequential path —
the output sequence is byte-for-byte identical.

Per-collector file order is preserved by consuming futures in
submission order; a small prefetch window per collector keeps the pool
busy without buffering a whole window's records in memory.

Worker failures carry context: every exception escaping a worker is
wrapped in :class:`~repro.mrt.files.MRTDecodeError` tagged with the
source file path, so the parallel and serial paths report identically
and a crashed pool never hides *which* archive file was poisoned.
Under a tolerant :class:`~repro.mrt.resilient.ErrorPolicy` the workers
additionally ship their per-file :class:`~repro.mrt.resilient.
DecodeStats` back to the parent for aggregation.
"""

from __future__ import annotations

import heapq
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.bgp.messages import Record, record_sort_key
from repro.mrt.files import MRTDecodeError, read_updates_file
from repro.mrt.resilient import DecodeStats
from repro.ris.cache import DecodedFileCache
from repro.ris.pushdown import RecordFilter

__all__ = ["decode_file", "iter_plan_parallel", "worker_pool"]

#: Files scheduled ahead of consumption, per collector stream.
PREFETCH_PER_COLLECTOR = 2


def decode_file(path: str, collector: str,
                record_filter: Optional[RecordFilter] = None,
                error_policy: Optional[str] = None
                ) -> tuple[list[Record], dict]:
    """Worker entry point: fully decode one update file.

    Module-level so it pickles; returns ``(records, stats_dict)`` —
    records cross the process boundary in one batch per file, and the
    stats dict carries the tolerant-decode counters (all zero when the
    file was clean or the policy is strict/legacy).
    """
    stats = DecodeStats()
    try:
        records = list(read_updates_file(path, collector,
                                         record_filter=record_filter,
                                         error_policy=error_policy,
                                         stats=stats))
    except MRTDecodeError:
        raise  # already carries the file path
    except Exception as exc:
        # Never let a bare worker exception cross the pool boundary
        # without saying which file it came from.
        raise MRTDecodeError(f"{path}: {exc}") from exc
    return records, stats.as_dict()


@contextmanager
def worker_pool(workers: int):
    """A process pool, or None when pools are unavailable (the caller
    falls back to sequential decode)."""
    pool = None
    try:
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, ImportError):
            yield None
            return
        yield pool
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


def _collector_stream(pool: Executor, collector: str, paths: Sequence[Path],
                      record_filter: Optional[RecordFilter],
                      cache: Optional[DecodedFileCache],
                      error_policy: Optional[str],
                      stats: Optional[DecodeStats]) -> Iterator[Record]:
    """Records of one collector, files decoded ahead out-of-process but
    yielded strictly in file order."""
    pending: deque = deque()  # (path, cached_records | None, future | None)
    files = iter(paths)

    def schedule_next() -> None:
        for path in files:
            if cache is not None:
                cached = cache.get(path)
                if cached is not None:
                    pending.append((path, cached, None))
                    return
            pending.append((path, None, pool.submit(
                decode_file, str(path), collector, record_filter,
                error_policy)))
            return

    for _ in range(PREFETCH_PER_COLLECTOR):
        schedule_next()
    while pending:
        path, cached, future = pending.popleft()
        schedule_next()
        if cached is not None:
            records = (cached if record_filter is None else
                       [r for r in cached if record_filter.matches_record(r)])
        else:
            records, worker_stats = future.result()
            if stats is not None:
                stats.merge(worker_stats)
            if cache is not None and record_filter is None:
                cache.put(path, records)
        yield from records


def iter_plan_parallel(pool: Executor,
                       plan: Sequence[tuple[str, Sequence[Path]]],
                       record_filter: Optional[RecordFilter] = None,
                       cache: Optional[DecodedFileCache] = None,
                       error_policy: Optional[str] = None,
                       stats: Optional[DecodeStats] = None
                       ) -> Iterator[Record]:
    """Decode a ``[(collector, paths), ...]`` plan on ``pool`` and merge
    the collector streams in global ``(time, collector, peer)`` order."""
    streams = [_collector_stream(pool, collector, paths, record_filter,
                                 cache, error_policy, stats)
               for collector, paths in plan]
    yield from heapq.merge(*streams, key=record_sort_key)
