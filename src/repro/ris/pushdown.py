"""Record-level filter push-down for the archive read path.

:class:`RecordFilter` is the archive-side mirror of the BGPStream filter
language (``repro.bgpstream``): the same clause semantics, applied to
decoded :class:`~repro.bgp.messages.Record` objects *before* they are
turned into stream elements — and, one level deeper, to raw MRT records
before path attributes are decoded (see
:func:`repro.mrt.files.read_updates_file`) and to whole archive files
via the sidecar index (:mod:`repro.ris.index`).

The filter is immutable and picklable so it can cross the process
boundary into :mod:`repro.ris.parallel` workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.bgp.messages import Record, UpdateRecord
from repro.net.prefix import AFI_IPV4, AFI_IPV6, Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (index imports us)
    from repro.ris.index import FileIndex

__all__ = ["RecordFilter"]


@dataclass(frozen=True)
class RecordFilter:
    """Pushed-down filter clauses, ANDed together (empty clause = pass).

    ``elem_types`` uses the stream element letters (``"A"``/``"W"``);
    state records never carry one, so any ``type`` clause excludes them —
    exactly as ``_Filter.match_elem`` behaves on ``"S"`` elements.
    """

    peers: frozenset = frozenset()
    collectors: frozenset = frozenset()
    ipversion: Optional[int] = None
    elem_types: frozenset = frozenset()
    prefix_exact: Optional[Prefix] = None
    prefix_more: Optional[Prefix] = None

    def __bool__(self) -> bool:
        return bool(self.peers or self.collectors or self.elem_types
                    or self.ipversion is not None
                    or self.prefix_exact is not None
                    or self.prefix_more is not None)

    @property
    def has_prefix_clause(self) -> bool:
        return (self.prefix_exact is not None or self.prefix_more is not None
                or self.ipversion is not None)

    def match_prefix(self, prefix: Prefix) -> bool:
        if self.ipversion == 4 and not prefix.is_ipv4:
            return False
        if self.ipversion == 6 and not prefix.is_ipv6:
            return False
        if self.prefix_exact is not None and prefix != self.prefix_exact:
            return False
        if self.prefix_more is not None and not self.prefix_more.contains(prefix):
            return False
        return True

    def matches_record(self, record: Record) -> bool:
        """Record-level equivalent of element matching (1:1 per record)."""
        if self.peers and record.peer_asn not in self.peers:
            return False
        if self.collectors and record.collector not in self.collectors:
            return False
        if isinstance(record, UpdateRecord):
            elem_type = "A" if record.is_announcement else "W"
            if self.elem_types and elem_type not in self.elem_types:
                return False
            return self.match_prefix(record.prefix)
        # State records: a `type` clause never names them, and they carry
        # no prefix so they cannot satisfy a prefix/ipversion clause.
        if self.elem_types:
            return False
        return not self.has_prefix_clause

    def may_match_file(self, index: "FileIndex") -> bool:
        """Whole-file skip test against a sidecar index.

        Returns False only when *no* record in a file with these summary
        statistics could survive the filter; True is conservative.
        """
        if self.peers and not (self.peers & index.peer_asns):
            return False

        route_possible = index.update_count > 0
        if route_possible and self.elem_types:
            counts = {"A": index.announce_count, "W": index.withdraw_count}
            route_possible = any(counts.get(t, 0) > 0 for t in self.elem_types)
        if route_possible:
            wanted_afis = set()
            if self.ipversion is not None:
                wanted_afis.add(AFI_IPV4 if self.ipversion == 4 else AFI_IPV6)
            if self.prefix_exact is not None:
                wanted_afis.add(self.prefix_exact.afi)
            if self.prefix_more is not None:
                wanted_afis.add(self.prefix_more.afi)
            if wanted_afis and not wanted_afis <= index.afis:
                # Every prefix clause must be satisfiable by the file.
                route_possible = False

        state_possible = (index.state_count > 0 and not self.elem_types
                          and not self.has_prefix_clause)
        return route_possible or state_possible
