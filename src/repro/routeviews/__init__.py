"""RouteViews archive substrate and RIS+RouteViews stream merging."""

from repro.routeviews.archive import (
    DEFAULT_COLLECTORS,
    RIB_DUMP_SECONDS,
    UPDATE_BIN_SECONDS,
    RouteViewsArchive,
    RouteViewsWriter,
    merged_update_stream,
)

__all__ = [
    "RouteViewsArchive",
    "RouteViewsWriter",
    "merged_update_stream",
    "DEFAULT_COLLECTORS",
    "UPDATE_BIN_SECONDS",
    "RIB_DUMP_SECONDS",
]
