"""RouteViews archive substrate (paper §6 future work).

The paper excludes RouteViews "due to limited resources,
acknowledging the potential omission of zombie routes", and lists
combining RIS with RouteViews as future work.  This module implements
the RouteViews side so that combination is possible:

* the real on-disk layout differs from RIS:
  ``<root>/<collector>/bgpdata/<YYYY.MM>/UPDATES/updates.<YYYYMMDD>.<HHMM>.bz2``
  with 15-minute bins, and ``RIBS/rib.<YYYYMMDD>.<HHMM>.bz2`` every two
  hours (same MRT payloads, bzip2 instead of gzip);
* :class:`RouteViewsArchive` mirrors :class:`repro.ris.Archive`'s API, and
* :func:`merged_update_stream` interleaves records from both platforms
  in global time order — the detector runs over the union unchanged.
"""

from __future__ import annotations

import bz2
import heapq
import struct
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.bgp.messages import Record, StateRecord, UpdateRecord, record_sort_key
from repro.mrt.bgp4mp import (
    decode_bgp4mp,
    decode_mrt_header,
    encode_state_record,
    encode_update_record,
)
from repro.mrt.constants import MRT_BGP4MP
from repro.utils.timeutil import align_down, to_datetime

__all__ = ["RouteViewsArchive", "RouteViewsWriter", "merged_update_stream",
           "UPDATE_BIN_SECONDS", "RIB_DUMP_SECONDS", "DEFAULT_COLLECTORS"]

UPDATE_BIN_SECONDS = 15 * 60
RIB_DUMP_SECONDS = 2 * 3600

#: A few real RouteViews collector names.
DEFAULT_COLLECTORS: tuple[str, ...] = (
    "route-views2", "route-views3", "route-views4", "route-views6",
    "route-views.amsix", "route-views.linx", "route-views.sydney",
)


def _month_dir(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt.year:04d}.{dt.month:02d}"


def _stamp(timestamp: int) -> str:
    dt = to_datetime(timestamp)
    return f"{dt:%Y%m%d}.{dt:%H%M}"


def _parse_stamp(name: str) -> int:
    parts = name.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an archive file name: {name!r}")
    dt = datetime.strptime(parts[1] + parts[2], "%Y%m%d%H%M")
    return int(dt.replace(tzinfo=timezone.utc).timestamp())


class RouteViewsWriter:
    """Write update records into a RouteViews-layout archive."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def update_path(self, collector: str, bin_start: int) -> Path:
        return (self.root / collector / "bgpdata" / _month_dir(bin_start)
                / "UPDATES" / f"updates.{_stamp(bin_start)}.bz2")

    def write_updates(self, collector: str,
                      records: Iterable[Record]) -> list[Path]:
        """Bin into 15-minute bzip2 files; returns paths written."""
        bins: dict[int, list[Record]] = {}
        for record in records:
            if record.collector != collector:
                raise ValueError(
                    f"record for {record.collector} given to {collector} writer")
            bin_start = align_down(record.timestamp, UPDATE_BIN_SECONDS)
            bins.setdefault(bin_start, []).append(record)
        written = []
        for bin_start, items in sorted(bins.items()):
            items.sort(key=record_sort_key)
            path = self.update_path(collector, bin_start)
            path.parent.mkdir(parents=True, exist_ok=True)
            with bz2.open(path, "wb") as handle:
                for record in items:
                    if isinstance(record, UpdateRecord):
                        handle.write(encode_update_record(record))
                    elif isinstance(record, StateRecord):
                        handle.write(encode_state_record(record))
                    else:
                        raise TypeError(type(record).__name__)
            written.append(path)
        return written


class RouteViewsArchive:
    """Read-side of a RouteViews-layout archive."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        if not self.root.exists():
            raise FileNotFoundError(f"archive root does not exist: {self.root}")

    def collectors(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and (p / "bgpdata").exists())

    def update_files(self, collector: str, start: int, end: int) -> list[Path]:
        base = self.root / collector / "bgpdata"
        if not base.exists():
            return []
        window_start = align_down(start, UPDATE_BIN_SECONDS)
        out = []
        for month_dir in sorted(base.iterdir()):
            updates_dir = month_dir / "UPDATES"
            if not updates_dir.is_dir():
                continue
            for path in sorted(updates_dir.glob("updates.*.bz2")):
                try:
                    stamp = _parse_stamp(path.name)
                except ValueError:
                    continue  # foreign file in UPDATES directory
                if window_start <= stamp < end:
                    out.append(path)
        return out

    def iter_updates(self, start: int, end: int,
                     collectors: Optional[Sequence[str]] = None
                     ) -> Iterator[Record]:
        collectors = list(collectors) if collectors is not None \
            else self.collectors()

        def stream(collector: str) -> Iterator[Record]:
            for path in self.update_files(collector, start, end):
                yield from _read_bz2_updates(path, collector, start, end)

        yield from heapq.merge(*(stream(c) for c in collectors),
                               key=record_sort_key)


def _read_bz2_updates(path: Path, collector: str, start: int,
                      end: int) -> Iterator[Record]:
    with bz2.open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset < len(data):
        header = decode_mrt_header(data, offset)
        body = data[offset + 12:offset + 12 + header.length]
        offset += 12 + header.length
        if header.mrt_type != MRT_BGP4MP:
            continue
        try:
            records = decode_bgp4mp(header, body, collector)
        except (ValueError, struct.error):
            continue  # tolerate corrupted records, as with RIS
        for record in records:
            if start <= record.timestamp < end:
                yield record


def merged_update_stream(start: int, end: int,
                         ris_archive=None,
                         routeviews_archive: Optional[RouteViewsArchive] = None,
                         ) -> Iterator[Record]:
    """Interleave RIS and RouteViews records in global time order —
    the §6 "combined platforms" detector input."""
    streams = []
    if ris_archive is not None:
        streams.append(ris_archive.iter_updates(start, end))
    if routeviews_archive is not None:
        streams.append(routeviews_archive.iter_updates(start, end))
    yield from heapq.merge(*streams, key=record_sort_key)
