"""Event-driven BGP propagation simulator with zombie fault injection."""

from repro.simulator.collector import CollectorTap
from repro.simulator.engine import Engine
from repro.simulator.faults import (
    Disposition,
    FaultPlan,
    LinkFault,
    LinkFreeze,
    SessionResetEvent,
    WithdrawalDelay,
    WithdrawalSuppression,
)
from repro.simulator.network import BGPWorld
from repro.simulator.ribgen import dump_times, generate_rib_dumps
from repro.simulator.router import ASRouter
from repro.simulator.rpki import ROA, ROARegistry, ValidationState

__all__ = [
    "BGPWorld",
    "ASRouter",
    "CollectorTap",
    "Engine",
    "Disposition",
    "FaultPlan",
    "LinkFault",
    "LinkFreeze",
    "SessionResetEvent",
    "WithdrawalDelay",
    "WithdrawalSuppression",
    "dump_times",
    "generate_rib_dumps",
    "ROA",
    "ROARegistry",
    "ValidationState",
]
