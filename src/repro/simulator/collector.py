"""Collector taps: the RIS side of a peering session.

A :class:`CollectorTap` models one RIS peer *router* feeding one
collector.  It observes its AS's Loc-RIB changes and records them as
:class:`UpdateRecord`/:class:`StateRecord` streams — the exact artefact
RIPE RIS archives.

Noisy peers (paper §3.2 and §5) are modelled at this edge: with
probability ``drop_withdrawal_prob`` a withdrawal is never reported to
the collector, leaving the stale route visible in the collector's view
even though the AS itself converged correctly.  This mirrors the
real-world cause (misconfigured/buggy collector sessions polluting the
feed, not the peer's production routing).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import (
    Announcement,
    PeerState,
    StateRecord,
    UpdateRecord,
    Withdrawal,
)
from repro.net.prefix import Prefix
from repro.ris.collectors import RISPeer

__all__ = ["CollectorTap"]


class CollectorTap:
    """One (collector, peer router) feed."""

    def __init__(self, peer: RISPeer, world, drop_withdrawal_prob=0.0,
                 report_delay: float = 1.0, seed: int = 0):
        self.peer = peer
        self.world = world
        #: either one probability for both families, or {4: p4, 6: p6} —
        #: the paper's AS16347 only misbehaves on its IPv6 feed.
        self.drop_withdrawal_prob = drop_withdrawal_prob
        self.report_delay = report_delay
        # Keyed by (collector, ASN) — NOT the router address — so multiple
        # routers of one peer AS misbehave in lockstep, as the paper's
        # Table 5 shows for the two AS211509 routers.
        self._rng = random.Random((seed, peer.collector, peer.asn).__repr__())
        self._down = False
        #: what the collector currently believes this peer announced.
        self.collector_view: dict[Prefix, PathAttributes] = {}
        router = world.routers[peer.asn]
        router.add_observer(self._on_route_change)
        self._router = router

    # -- observation -------------------------------------------------------

    def _on_route_change(self, time: float, prefix: Prefix,
                         attrs: Optional[PathAttributes]) -> None:
        if self._down:
            return
        if attrs is not None:
            self.collector_view[prefix] = attrs
            self._record_update(time, Announcement(prefix, attrs))
        else:
            if prefix not in self.collector_view:
                return
            if self._rng.random() < self._drop_prob(prefix):
                return  # noisy peer: the withdrawal never reaches RIS
            del self.collector_view[prefix]
            self._record_update(time, Withdrawal(prefix))

    def _drop_prob(self, prefix: Prefix) -> float:
        prob = self.drop_withdrawal_prob
        if isinstance(prob, dict):
            return prob.get(4 if prefix.is_ipv4 else 6, 0.0)
        return prob

    def _record_update(self, time: float, message) -> None:
        self.world.record(UpdateRecord(
            timestamp=int(time + self.report_delay),
            collector=self.peer.collector,
            peer_address=self.peer.address,
            peer_asn=self.peer.asn,
            message=message,
        ))

    # -- session lifecycle ---------------------------------------------------

    def session_down(self, time: float) -> None:
        """The peer↔collector BGP session dropped."""
        if self._down:
            return
        self._down = True
        self.collector_view.clear()
        self.world.record(StateRecord(
            timestamp=int(time), collector=self.peer.collector,
            peer_address=self.peer.address, peer_asn=self.peer.asn,
            old_state=PeerState.ESTABLISHED, new_state=PeerState.IDLE))

    def session_up(self, time: float) -> None:
        """Re-established: the peer re-announces its full current table."""
        if not self._down:
            return
        self._down = False
        self.world.record(StateRecord(
            timestamp=int(time), collector=self.peer.collector,
            peer_address=self.peer.address, peer_asn=self.peer.asn,
            old_state=PeerState.CONNECT, new_state=PeerState.ESTABLISHED))
        for prefix in sorted(self._router.best, key=str):
            attrs = self._router.export_attributes(prefix)
            if attrs is None:
                continue
            self.collector_view[prefix] = attrs
            self._record_update(time, Announcement(prefix, attrs))
