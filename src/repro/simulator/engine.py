"""Discrete-event engine.

A minimal priority-queue scheduler with deterministic ordering: events
at the same instant fire in scheduling order (monotonic sequence
numbers), which keeps whole-world simulations reproducible under a
fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Engine"]


class Engine:
    """Priority-queue event loop over float timestamps (seconds)."""

    def __init__(self, start_time: float = 0.0):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = float(start_time)
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at ``time``.

        Scheduling into the past is a bug in the caller and raises.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (float(time), self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule relative to the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> int:
        """Drain events (up to and including ``until``); returns the
        number of events processed by this call."""
        count = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            callback()
            count += 1
            self._processed += 1
        if until is not None and self._now < until:
            self._now = float(until)
        return count

    def run_until_idle(self) -> int:
        """Drain every pending event."""
        return self.run(until=None)
