"""Fault injection: the mechanisms that create BGP zombies.

The literature attributes zombies to withdrawal-propagation failures —
wedged sessions (e.g. the TCP zero-window bug, RFC 9687), route
optimizer/reflector bugs, filter changes — and resurrections to session
resets re-announcing stale tables.  This module models those as
*link-level* faults the world consults on every message send, plus
*scheduled* session resets:

* :class:`WithdrawalSuppression` — withdrawals silently dropped on one
  directed link (the canonical zombie creator);
* :class:`LinkFreeze` — nothing crosses the link (wedged session): the
  downstream keeps a frozen, aging view, which is what makes zombies
  *double-counted* across beacon intervals;
* :class:`WithdrawalDelay` — withdrawals arrive late (creates zombies
  that clear between the 90-minute and 3-hour thresholds of Fig. 2);
* :class:`SessionResetEvent` — a scheduled reset that flushes and
  re-announces a table (the resurrection vector of §5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.bgp.messages import Announcement, Message, Withdrawal
from repro.net.prefix import Prefix

__all__ = [
    "Disposition",
    "LinkFault",
    "WithdrawalSuppression",
    "LinkFreeze",
    "WithdrawalDelay",
    "SessionResetEvent",
    "FaultPlan",
]


@dataclass(frozen=True)
class Disposition:
    """What happens to one message on a faulty link."""

    drop: bool = False
    extra_delay: float = 0.0

    DELIVER: "Disposition" = None  # populated below


Disposition.DELIVER = Disposition()
_DROP = Disposition(drop=True)


def _match_prefix(prefixes: Optional[frozenset[Prefix]], prefix: Prefix) -> bool:
    return prefixes is None or prefix in prefixes


@dataclass(frozen=True)
class LinkFault:
    """Base: a time-windowed fault on the directed link ``src → dst``.

    ``prefixes`` of ``None`` matches every prefix.
    """

    src: int
    dst: int
    start: float
    end: float
    prefixes: Optional[frozenset[Prefix]] = None

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("fault window must have positive length")

    def applies(self, src: int, dst: int, time: float, prefix: Prefix) -> bool:
        return (src == self.src and dst == self.dst
                and self.start <= time < self.end
                and _match_prefix(self.prefixes, prefix))

    def disposition(self, message: Message, time: float) -> Disposition:
        raise NotImplementedError


@dataclass(frozen=True)
class WithdrawalSuppression(LinkFault):
    """Withdrawals for matching prefixes vanish on this link."""

    def disposition(self, message: Message, time: float) -> Disposition:
        if isinstance(message, Withdrawal):
            return _DROP
        return Disposition.DELIVER


@dataclass(frozen=True)
class LinkFreeze(LinkFault):
    """Every matching message (announce *and* withdraw) vanishes —
    a wedged session whose downstream keeps its stale view."""

    def disposition(self, message: Message, time: float) -> Disposition:
        return _DROP


@dataclass(frozen=True)
class WithdrawalDelay(LinkFault):
    """Withdrawals arrive ``delay`` seconds late on this link."""

    delay: float = 0.0

    def disposition(self, message: Message, time: float) -> Disposition:
        if isinstance(message, Withdrawal):
            return Disposition(extra_delay=self.delay)
        return Disposition.DELIVER


@dataclass(frozen=True)
class SessionResetEvent:
    """A scheduled BGP session reset between two ASes (or between a RIS
    peer router and its collector when ``tap_address`` is set).

    On reset both sides flush what they learned on the session and,
    after ``downtime`` seconds, the session re-establishes and each side
    re-announces its current best routes — stale ones included, which is
    exactly how zombies resurrect (§5.1).
    """

    time: float
    a: int
    b: int
    downtime: float = 5.0
    tap_address: Optional[str] = None

    @property
    def is_tap_reset(self) -> bool:
        return self.tap_address is not None


class FaultPlan:
    """The full fault script of one experiment."""

    def __init__(self, link_faults: Iterable[LinkFault] = (),
                 session_resets: Iterable[SessionResetEvent] = ()):
        self.link_faults: list[LinkFault] = list(link_faults)
        self.session_resets: list[SessionResetEvent] = sorted(
            session_resets, key=lambda r: r.time)
        self._by_link: dict[tuple[int, int], list[LinkFault]] = {}
        for fault in self.link_faults:
            self._by_link.setdefault((fault.src, fault.dst), []).append(fault)

    def add_link_fault(self, fault: LinkFault) -> None:
        self.link_faults.append(fault)
        self._by_link.setdefault((fault.src, fault.dst), []).append(fault)

    def add_session_reset(self, reset: SessionResetEvent) -> None:
        self.session_resets.append(reset)
        self.session_resets.sort(key=lambda r: r.time)

    def disposition(self, src: int, dst: int, message: Message,
                    time: float) -> Disposition:
        """Combined effect of all matching faults: any drop wins;
        otherwise delays accumulate."""
        faults = self._by_link.get((src, dst))
        if not faults:
            return Disposition.DELIVER
        total_delay = 0.0
        prefix = message.prefix
        for fault in faults:
            if not fault.applies(src, dst, time, prefix):
                continue
            result = fault.disposition(message, time)
            if result.drop:
                return _DROP
            total_delay += result.extra_delay
        if total_delay:
            return Disposition(extra_delay=total_delay)
        return Disposition.DELIVER
