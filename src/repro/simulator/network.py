"""The simulated Internet: topology + routers + collectors + faults.

:class:`BGPWorld` wires everything together and exposes the two
operations experiments need:

* drive a beacon schedule (:meth:`run_beacon_schedule` /
  :meth:`schedule_beacon_events`), and
* collect the RIS artefacts (update/state records via :attr:`records`,
  RIB dumps via :mod:`repro.simulator.ribgen`).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.beacons.aggregator import AggregatorClock
from repro.beacons.schedule import BeaconEvent, BeaconSchedule
from repro.bgp.attributes import Aggregator, ASPath, PathAttributes
from repro.bgp.messages import Message, Record
from repro.net.prefix import Prefix
from repro.ris.collectors import PeerRegistry, RISPeer
from repro.simulator.collector import CollectorTap
from repro.simulator.engine import Engine
from repro.simulator.faults import FaultPlan, SessionResetEvent
from repro.simulator.router import ASRouter
from repro.simulator.rpki import ROARegistry
from repro.topology.graph import ASTopology

__all__ = ["BGPWorld"]


class BGPWorld:
    """A runnable BGP universe."""

    def __init__(self, topology: ASTopology,
                 seed: int = 0,
                 fault_plan: Optional[FaultPlan] = None,
                 roa_registry: Optional[ROARegistry] = None,
                 rov_asns: Iterable[int] = (),
                 transparent_asns: Iterable[int] = (),
                 start_time: float = 0.0,
                 base_delay_range: tuple[float, float] = (0.05, 0.8),
                 jitter: float = 0.1):
        self.topology = topology
        self.engine = Engine(start_time)
        self.fault_plan = fault_plan or FaultPlan()
        self.roa_registry = roa_registry
        self._rng = random.Random(seed)
        self._jitter = jitter
        self.records: list[Record] = []
        self.taps: dict[tuple[str, str], CollectorTap] = {}
        self._seed = seed

        self.routers: dict[int, ASRouter] = {
            asn: ASRouter(asn, self) for asn in topology.asns()}
        for asn, router in self.routers.items():
            for neighbor in topology.neighbors(asn):
                router.add_neighbor(neighbor, topology.relationship(asn, neighbor))
        for asn in rov_asns:
            self.routers[asn].rov_enabled = True
        for asn in transparent_asns:
            self.routers[asn].transparent = True

        # Deterministic per-directed-link propagation delay.
        self._link_delay: dict[tuple[int, int], float] = {}
        lo, hi = base_delay_range
        for a, b in sorted(topology.graph.edges):
            self._link_delay[(a, b)] = self._rng.uniform(lo, hi)
            self._link_delay[(b, a)] = self._rng.uniform(lo, hi)
        #: last scheduled delivery per directed link — BGP sessions run
        #: over TCP, so messages must never overtake each other.
        self._link_clock: dict[tuple[int, int], float] = {}

        self._schedule_session_resets()
        self._schedule_revalidations()

    # -- messaging ---------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        """Send a BGP message, subject to link faults and delays."""
        now = self.engine.now
        disposition = self.fault_plan.disposition(src, dst, message, now)
        if disposition.drop:
            return
        delay = (self._link_delay[(src, dst)]
                 + self._rng.uniform(0.0, self._jitter)
                 + disposition.extra_delay)
        # FIFO per directed link: a message never overtakes an earlier one.
        link = (src, dst)
        deliver_at = max(now + delay, self._link_clock.get(link, 0.0) + 1e-6)
        self._link_clock[link] = deliver_at
        router = self.routers[dst]
        self.engine.schedule(deliver_at, lambda: router.receive(src, message))

    def record(self, record: Record) -> None:
        self.records.append(record)

    # -- collectors ----------------------------------------------------------

    def attach_tap(self, peer: RISPeer, drop_withdrawal_prob: float = 0.0,
                   report_delay: float = 1.0) -> CollectorTap:
        """Attach one RIS peer-router feed."""
        if peer.asn not in self.routers:
            raise KeyError(f"peer AS{peer.asn} is not in the topology")
        tap = CollectorTap(peer, self, drop_withdrawal_prob=drop_withdrawal_prob,
                           report_delay=report_delay, seed=self._seed)
        self.taps[peer.key] = tap
        return tap

    def attach_taps(self, registry: PeerRegistry,
                    noisy: Optional[dict[tuple[str, str], float]] = None) -> None:
        """Attach every peer in ``registry``; ``noisy`` maps peer keys to
        withdrawal-drop probabilities."""
        noisy = noisy or {}
        for peer in registry:
            self.attach_tap(peer, drop_withdrawal_prob=noisy.get(peer.key, 0.0))

    def peer_registry(self) -> PeerRegistry:
        return PeerRegistry(tap.peer for tap in self.taps.values())

    # -- faults ----------------------------------------------------------------

    def _schedule_session_resets(self) -> None:
        for reset in self.fault_plan.session_resets:
            self.engine.schedule(reset.time, self._reset_closure(reset))

    def _reset_closure(self, reset: SessionResetEvent):
        def fire():
            self.apply_session_reset(reset)
        return fire

    def apply_session_reset(self, reset: SessionResetEvent) -> None:
        """Execute one reset: tap reset if ``tap_address`` set, else an
        AS↔AS session bounce."""
        now = self.engine.now
        if reset.is_tap_reset:
            tap = self.taps.get((self._tap_collector(reset), reset.tap_address))
            if tap is None:
                raise KeyError(f"no tap at address {reset.tap_address}")
            tap.session_down(now)
            self.engine.schedule(now + reset.downtime,
                                 lambda: tap.session_up(self.engine.now))
            return
        router_a = self.routers[reset.a]
        router_b = self.routers[reset.b]
        router_a.session_down(reset.b)
        router_b.session_down(reset.a)

        def re_establish():
            router_a.session_up(reset.b)
            router_b.session_up(reset.a)

        self.engine.schedule(now + reset.downtime, re_establish)

    def _tap_collector(self, reset: SessionResetEvent) -> str:
        for (collector, address) in self.taps:
            if address == reset.tap_address:
                return collector
        raise KeyError(f"no tap with address {reset.tap_address}")

    def _schedule_revalidations(self) -> None:
        if self.roa_registry is None:
            return
        rov_routers = [r for r in self.routers.values() if r.rov_enabled]
        if not rov_routers:
            return
        for change_time in self.roa_registry.change_times():
            if change_time <= self.engine.now:
                continue
            for router in rov_routers:
                # Spread revalidation over the RPKI propagation delay
                # (RPKI time-of-flight is minutes to ~1 hour).
                delay = self._rng.uniform(60.0, 1800.0)
                self.engine.schedule(change_time + delay, router.revalidate)

    # -- beacons -----------------------------------------------------------------

    def beacon_attributes(self, origin_asn: int, origin_time: int,
                          use_aggregator_clock: bool = True) -> PathAttributes:
        """Origination attributes for a beacon announcement."""
        aggregator = None
        if use_aggregator_clock:
            aggregator = Aggregator(origin_asn, AggregatorClock.encode(origin_time))
        router = self.routers[origin_asn]
        return PathAttributes(as_path=ASPath.of(origin_asn),
                              next_hop=router.next_hop,
                              aggregator=aggregator)

    def schedule_beacon_events(self, events: Iterable[BeaconEvent],
                               use_aggregator_clock: bool = True) -> int:
        """Schedule announce/withdraw events onto origin routers."""
        count = 0
        for event in events:
            router = self.routers[event.origin_asn]
            if event.is_announce:
                attrs = self.beacon_attributes(
                    event.origin_asn, event.origin_time or event.time,
                    use_aggregator_clock)
                self.engine.schedule(
                    event.time,
                    self._originate_closure(router, event.prefix, attrs))
            else:
                self.engine.schedule(
                    event.time,
                    self._withdraw_closure(router, event.prefix))
            count += 1
        return count

    @staticmethod
    def _originate_closure(router: ASRouter, prefix: Prefix,
                           attrs: PathAttributes):
        def fire():
            router.originate(prefix, attrs)
        return fire

    @staticmethod
    def _withdraw_closure(router: ASRouter, prefix: Prefix):
        def fire():
            router.withdraw_origin(prefix)
        return fire

    def run_beacon_schedule(self, schedule: BeaconSchedule, start: int, end: int,
                            settle: float = 3600.0,
                            use_aggregator_clock: bool = True) -> list[Record]:
        """Convenience: schedule, run until ``end + settle``, return the
        recorded RIS stream sorted in archive order."""
        self.schedule_beacon_events(schedule.events(start, end),
                                    use_aggregator_clock)
        self.run_until(end + settle)
        return self.sorted_records()

    # -- running --------------------------------------------------------------

    def run_until(self, time: float) -> int:
        return self.engine.run(until=time)

    def run_until_idle(self) -> int:
        return self.engine.run_until_idle()

    def sorted_records(self) -> list[Record]:
        from repro.bgp.messages import record_sort_key

        return sorted(self.records, key=record_sort_key)
