"""Generate 8-hourly RIB dumps from a recorded update stream.

RIPE RIS publishes ``bview`` snapshots of every peer's table every 8
hours; the paper's lifespan analysis (§5, Fig. 3-4) works on those.
This module replays an update/state record stream into per-(collector,
peer) RIB state and emits :class:`RibDump` snapshots at dump instants —
the same transform RIS itself performs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.bgp.messages import Record, StateRecord, UpdateRecord, record_sort_key
from repro.bgp.rib import AdjRIB, Route
from repro.mrt.tabledump import RibDump
from repro.ris.archive import RIB_DUMP_SECONDS
from repro.utils.timeutil import align_up

__all__ = ["generate_rib_dumps", "dump_times"]


def dump_times(start: int, end: int,
               period: int = RIB_DUMP_SECONDS) -> list[int]:
    """The bview instants in [start, end) (aligned to the period)."""
    times = []
    t = align_up(start, period)
    while t < end:
        times.append(t)
        t += period
    return times


def generate_rib_dumps(records: Sequence[Record], start: int, end: int,
                       collectors: Optional[Iterable[str]] = None,
                       period: int = RIB_DUMP_SECONDS) -> Iterator[RibDump]:
    """Replay ``records`` and yield one dump per collector per instant.

    Only collectors present in the stream (or listed explicitly) produce
    dumps.  Records must cover the state history from the true beginning
    of the world — a record stream that starts mid-history would replay
    into incomplete RIBs.
    """
    ordered = sorted(records, key=record_sort_key)
    wanted = set(collectors) if collectors is not None else None

    # (collector, peer_address) -> (peer_asn, AdjRIB, last-update-times)
    state: dict[tuple[str, str], tuple[int, AdjRIB]] = {}

    def apply(record: Record) -> None:
        key = (record.collector, record.peer_address)
        if key not in state:
            state[key] = (record.peer_asn, AdjRIB())
        _, rib = state[key]
        if isinstance(record, StateRecord):
            if record.is_session_down:
                rib.clear()
            return
        assert isinstance(record, UpdateRecord)
        if record.is_withdrawal:
            rib.remove(record.prefix)
        else:
            rib.install(Route(record.prefix, record.attributes,
                              record.timestamp))

    index = 0
    total = len(ordered)
    for instant in dump_times(start, end, period):
        while index < total and ordered[index].timestamp <= instant:
            apply(ordered[index])
            index += 1
        per_collector: dict[str, RibDump] = {}
        for (collector, address), (asn, rib) in sorted(state.items()):
            if wanted is not None and collector not in wanted:
                continue
            dump = per_collector.get(collector)
            if dump is None:
                dump = per_collector[collector] = RibDump(instant, collector)
            # Register the peer even if it currently holds no routes, so
            # downstream code can distinguish "empty table" from "absent
            # peer".
            dump.peer_index(asn, address)
            for route in rib.routes():
                dump.add_route(route.prefix, asn, address, route.attributes,
                               route.installed_at)
        for collector in sorted(per_collector):
            yield per_collector[collector]
