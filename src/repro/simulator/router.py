"""Per-AS BGP speaker model.

Each AS is modelled as one router holding Adj-RIB-Ins (one per
neighbour), a Loc-RIB of best routes, and per-neighbour export state.
Route selection follows Gao-Rexford local preference, then AS-path
length, then lowest neighbour ASN (standing in for router-id).

Withdrawal processing performs genuine *path hunting*: when the best
route dies and an alternative exists in an Adj-RIB-In, the alternative
is promoted and re-exported — this is what makes zombie paths longer
than normal paths (paper Fig. 6) and what re-exposes stale routes with
their original Aggregator clock (the double-counting signal of §3.1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import Announcement, Message, Withdrawal
from repro.bgp.policy import Relationship, compare_routes, should_export
from repro.net.prefix import Prefix
from repro.simulator.rpki import ValidationState

__all__ = ["ASRouter"]

#: Observer callback: (time, prefix, attrs-or-None).  ``attrs`` is the
#: route as the AS would export it (own ASN prepended); ``None`` means
#: the AS no longer has a route.
Observer = Callable[[float, Prefix, Optional[PathAttributes]], None]


class ASRouter:
    """One AS in the simulated Internet."""

    def __init__(self, asn: int, world):
        self.asn = asn
        self.world = world
        self.next_hop = f"2001:db8:{asn & 0xFFFF:x}:{(asn >> 16) & 0xFFFF:x}::1"
        #: neighbour ASN -> how we see them.
        self.relationships: dict[int, Relationship] = {}
        #: prefix -> neighbour ASN -> attributes as received.
        self.adj_rib_in: dict[Prefix, dict[int, PathAttributes]] = {}
        #: locally originated routes.
        self.local: dict[Prefix, PathAttributes] = {}
        #: prefix -> (source neighbour or None for local, attributes).
        self.best: dict[Prefix, tuple[Optional[int], PathAttributes]] = {}
        #: neighbour -> prefixes currently advertised to them.
        self.exported: dict[int, set[Prefix]] = {}
        self.rov_enabled = False
        #: transparent speakers (IXP route servers) do not prepend their
        #: own ASN when re-exporting — they are the "invisible ASes" the
        #: paper's root-cause caveat describes (§5.2).
        self.transparent = False
        self.observers: list[Observer] = []

    # -- wiring -----------------------------------------------------------

    def add_neighbor(self, asn: int, relationship: Relationship) -> None:
        self.relationships[asn] = relationship
        self.exported.setdefault(asn, set())

    def add_observer(self, observer: Observer) -> None:
        self.observers.append(observer)

    # -- origination --------------------------------------------------------

    def originate(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Install a locally originated route (the beacon announcement)."""
        if attributes.as_path.origin_as != self.asn:
            raise ValueError(
                f"AS{self.asn} cannot originate a route with origin "
                f"AS{attributes.as_path.origin_as}")
        self.local[prefix] = attributes
        self._decide(prefix)

    def withdraw_origin(self, prefix: Prefix) -> None:
        """Withdraw a locally originated route."""
        if self.local.pop(prefix, None) is not None:
            self._decide(prefix)

    # -- message handling -----------------------------------------------------

    def receive(self, src: int, message: Message) -> None:
        """Process one BGP message from a neighbour."""
        if src not in self.relationships:
            raise KeyError(f"AS{self.asn} got a message from non-neighbour AS{src}")
        if isinstance(message, Announcement):
            self._receive_announcement(src, message)
        else:
            self._receive_withdrawal(src, message)

    def _receive_announcement(self, src: int, message: Announcement) -> None:
        attrs = message.attributes
        if attrs.as_path.contains(self.asn):
            return  # loop — discard silently
        if self._rov_rejects(message.prefix, attrs):
            # Invalid route: treat as unusable; drop any previous route
            # from this neighbour for the prefix.
            routes = self.adj_rib_in.get(message.prefix)
            if routes and routes.pop(src, None) is not None:
                if not routes:
                    del self.adj_rib_in[message.prefix]
                self._decide(message.prefix)
            return
        self.adj_rib_in.setdefault(message.prefix, {})[src] = attrs
        self._decide(message.prefix)

    def _receive_withdrawal(self, src: int, message: Withdrawal) -> None:
        routes = self.adj_rib_in.get(message.prefix)
        if routes and routes.pop(src, None) is not None:
            if not routes:
                del self.adj_rib_in[message.prefix]
            self._decide(message.prefix)

    def _rov_rejects(self, prefix: Prefix, attrs: PathAttributes) -> bool:
        if not self.rov_enabled:
            return False
        registry = self.world.roa_registry
        if registry is None:
            return False
        state = registry.validate(prefix, attrs.origin_as,
                                  int(self.world.engine.now))
        return state is ValidationState.INVALID

    # -- decision process ---------------------------------------------------

    def _decide(self, prefix: Prefix) -> None:
        winner: Optional[tuple[Optional[int], PathAttributes]] = None
        local = self.local.get(prefix)
        if local is not None:
            winner = (None, local)
        for src, attrs in self.adj_rib_in.get(prefix, {}).items():
            if winner is None:
                winner = (src, attrs)
                continue
            w_src, w_attrs = winner
            w_rel = None if w_src is None else self.relationships[w_src]
            c_rel = self.relationships[src]
            verdict = compare_routes(w_rel, w_attrs, c_rel, attrs,
                                     -1 if w_src is None else w_src, src)
            if verdict > 0:
                winner = (src, attrs)

        previous = self.best.get(prefix)
        if winner == previous:
            return
        if winner is None:
            del self.best[prefix]
            self._export_withdrawal(prefix)
            self._notify(prefix, None)
        else:
            self.best[prefix] = winner
            self._export_route(prefix, winner)
            self._notify(prefix, self.export_attributes(prefix))

    # -- export ---------------------------------------------------------------

    def export_attributes(self, prefix: Prefix) -> Optional[PathAttributes]:
        """The route for ``prefix`` as this AS announces it (own ASN
        prepended unless locally originated)."""
        entry = self.best.get(prefix)
        if entry is None:
            return None
        src, attrs = entry
        if src is None:
            return attrs
        if self.transparent:
            return attrs
        return attrs.with_prepended(self.asn, self.next_hop)

    def _export_route(self, prefix: Prefix,
                      winner: tuple[Optional[int], PathAttributes]) -> None:
        src, attrs = winner
        learned_rel = None if src is None else self.relationships[src]
        out_attrs = self.export_attributes(prefix)
        for neighbor in sorted(self.relationships):
            if neighbor == src:
                # Never advertise a route back to its source; retract a
                # previously advertised one if policy flips the source.
                self._retract_if_exported(neighbor, prefix)
                continue
            if (should_export(learned_rel, self.relationships[neighbor])
                    and not out_attrs.as_path.contains(neighbor)):
                self.exported[neighbor].add(prefix)
                self.world.send(self.asn, neighbor, Announcement(prefix, out_attrs))
            else:
                self._retract_if_exported(neighbor, prefix)

    def _export_withdrawal(self, prefix: Prefix) -> None:
        for neighbor in sorted(self.relationships):
            self._retract_if_exported(neighbor, prefix)

    def _retract_if_exported(self, neighbor: int, prefix: Prefix) -> None:
        if prefix in self.exported[neighbor]:
            self.exported[neighbor].discard(prefix)
            self.world.send(self.asn, neighbor, Withdrawal(prefix))

    def _notify(self, prefix: Prefix, attrs: Optional[PathAttributes]) -> None:
        now = self.world.engine.now
        for observer in self.observers:
            observer(now, prefix, attrs)

    # -- session events ------------------------------------------------------

    def session_down(self, neighbor: int) -> None:
        """The session to ``neighbor`` dropped: flush what they taught us
        and forget what we advertised to them."""
        self.exported[neighbor] = set()
        affected = [prefix for prefix, routes in self.adj_rib_in.items()
                    if neighbor in routes]
        for prefix in affected:
            routes = self.adj_rib_in[prefix]
            routes.pop(neighbor, None)
            if not routes:
                del self.adj_rib_in[prefix]
            self._decide(prefix)

    def session_up(self, neighbor: int) -> None:
        """The session re-established: re-advertise our table, stale
        routes included (the resurrection mechanism)."""
        relationship = self.relationships[neighbor]
        for prefix in sorted(self.best, key=str):
            src, _ = self.best[prefix]
            learned_rel = None if src is None else self.relationships[src]
            out_attrs = self.export_attributes(prefix)
            if (should_export(learned_rel, relationship)
                    and neighbor != src
                    and not out_attrs.as_path.contains(neighbor)):
                self.exported[neighbor].add(prefix)
                self.world.send(self.asn, neighbor, Announcement(prefix, out_attrs))

    # -- RPKI -----------------------------------------------------------------

    def revalidate(self) -> None:
        """Re-run ROV over every learned route (after a ROA change)."""
        if not self.rov_enabled or self.world.roa_registry is None:
            return
        now = int(self.world.engine.now)
        registry = self.world.roa_registry
        for prefix in list(self.adj_rib_in):
            routes = self.adj_rib_in[prefix]
            invalid = [src for src, attrs in routes.items()
                       if registry.validate(prefix, attrs.origin_as, now)
                       is ValidationState.INVALID]
            if not invalid:
                continue
            for src in invalid:
                del routes[src]
            if not routes:
                del self.adj_rib_in[prefix]
            self._decide(prefix)

    # -- introspection --------------------------------------------------------

    def has_route(self, prefix: Prefix) -> bool:
        return prefix in self.best

    def best_path(self, prefix: Prefix) -> Optional[PathAttributes]:
        return self.export_attributes(prefix)
