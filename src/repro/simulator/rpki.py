"""RPKI substrate: ROA registry and route-origin validation (RFC 6811).

Supports the paper's §5 observation: the beacon ROA was revoked on
2024-06-22 19:49 UTC, making all subsequent beacon routes RPKI-invalid —
yet zombie holders kept them, showing they do not enforce ROV.

ROAs are time-scoped: each has a validity window, so
:meth:`ROARegistry.validate` answers "what was the validation state of
this route at time T".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from repro.net.prefix import Prefix

__all__ = ["ROA", "ROARegistry", "ValidationState"]


class ValidationState(Enum):
    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"


@dataclass(frozen=True)
class ROA:
    """A Route Origin Authorization with a validity window.

    ``valid_until`` of ``None`` means "never revoked".
    """

    prefix: Prefix
    asn: int
    max_length: int
    valid_from: int = 0
    valid_until: Optional[int] = None

    def __post_init__(self):
        if self.max_length < self.prefix.prefixlen:
            raise ValueError("maxLength shorter than the ROA prefix")
        limit = 32 if self.prefix.is_ipv4 else 128
        if self.max_length > limit:
            raise ValueError(f"maxLength {self.max_length} exceeds {limit}")

    def active_at(self, time: int) -> bool:
        if time < self.valid_from:
            return False
        return self.valid_until is None or time < self.valid_until

    def covers(self, prefix: Prefix) -> bool:
        """True if this ROA covers ``prefix`` (ignoring maxLength)."""
        return self.prefix.contains(prefix)

    def authorizes(self, prefix: Prefix, origin_asn: int) -> bool:
        """Full RFC 6811 match: covered, length within maxLength, same AS."""
        return (self.covers(prefix)
                and prefix.prefixlen <= self.max_length
                and origin_asn == self.asn)


class ROARegistry:
    """The set of published ROAs (a toy RPKI repository)."""

    def __init__(self, roas: Iterable[ROA] = ()):
        self._roas: list[ROA] = list(roas)

    def add(self, roa: ROA) -> None:
        self._roas.append(roa)

    def revoke(self, roa: ROA, at_time: int) -> ROA:
        """Replace ``roa`` with a copy whose validity ends at ``at_time``;
        returns the revoked copy."""
        try:
            self._roas.remove(roa)
        except ValueError:
            raise KeyError(f"ROA not in registry: {roa}") from None
        revoked = ROA(roa.prefix, roa.asn, roa.max_length,
                      roa.valid_from, at_time)
        self._roas.append(revoked)
        return revoked

    def __len__(self) -> int:
        return len(self._roas)

    def __iter__(self):
        return iter(self._roas)

    def validate(self, prefix: Prefix, origin_asn: int,
                 time: int) -> ValidationState:
        """RFC 6811 origin validation at a point in time."""
        covered = False
        for roa in self._roas:
            if not roa.active_at(time) or not roa.covers(prefix):
                continue
            covered = True
            if roa.authorizes(prefix, origin_asn):
                return ValidationState.VALID
        return ValidationState.INVALID if covered else ValidationState.NOT_FOUND

    def change_times(self) -> list[int]:
        """Instants at which validation outcomes may change (ROA windows
        opening/closing) — useful to schedule router revalidation."""
        times = set()
        for roa in self._roas:
            times.add(roa.valid_from)
            if roa.valid_until is not None:
                times.add(roa.valid_until)
        return sorted(times)
