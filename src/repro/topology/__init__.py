"""AS-level topology: relationship graph and synthetic Internet generator."""

from repro.topology.generator import (
    BACKBONE_EDGES,
    TIER1_ASNS,
    TopologyConfig,
    build_internet,
)
from repro.topology.graph import ASTopology

__all__ = [
    "ASTopology",
    "TopologyConfig",
    "build_internet",
    "TIER1_ASNS",
    "BACKBONE_EDGES",
]
