"""Synthetic Internet generator.

Builds an AS topology with three ingredients:

1. a **fixed backbone** wiring every AS the paper names, so that the
   exact AS paths of the paper's case studies exist (e.g. the zombie
   subpaths ``33891 25091 8298 210312`` and ``9304 6939 43100 25091 8298
   210312`` and the resurrection path via ``4637 1299``);
2. a **tier-1 clique** plus randomly generated tier-2 transit ASes;
3. **stub ASes** attached under the transit layer with weights chosen so
   the paper's "impactful" ASes (4637, 33891, 9304) own the largest
   customer cones, in the paper's order.

Everything is deterministic under a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.topology.graph import ASTopology

__all__ = ["TopologyConfig", "build_internet", "TIER1_ASNS", "BACKBONE_EDGES"]

#: Tier-1 clique (real tier-1 ASNs; all mutually peered).
TIER1_ASNS: tuple[int, ...] = (1299, 3356, 12956, 6939, 2914, 701, 6453, 3257)

#: provider → customer edges that realise the paper's AS paths.
BACKBONE_EDGES: tuple[tuple[int, int], ...] = (
    # Beacon origin chain: AS210312 ← 8298 ← 25091.
    (8298, 210312),
    (25091, 8298),
    (34549, 8298),          # second upstream of 8298 (resurrection path)
    (3356, 34549),
    (1299, 25091),
    (33891, 25091),         # Core-Backbone: the §5.2 impactful-zombie cause
    (43100, 25091),
    (6939, 43100),          # HE above 43100 (extremely-long-lived path)
    (1299, 4637),           # Telstra Global: the §5.1 resurrection cause
    (6939, 9304),           # HGC: §5.2 extremely-long-lived cause
    (9304, 17639),
    (9304, 142271),
    # Resurrected-prefix path 61573 28598 10429 12956 3356 34549 8298 210312.
    (12956, 10429),
    (10429, 28598),
    (28598, 61573),
    # 2024 campaign noisy peers.
    (6939, 211509),
    (1299, 211509),
    (3356, 211380),
    (211509, 207301),       # the 35-37-day single-peer cluster sits here
    # 2018 replication noisy peer.
    (1299, 16347),
    # A handful of extra transits used as RIS peers in experiments.
    (3356, 33891),
    (2914, 4637),
)

#: Transit ASes under which stubs concentrate, with attachment weights
#: ordered to reproduce the paper's cone-size ranking
#: cone(4637) > cone(33891) > cone(9304).
CONE_WEIGHTS: tuple[tuple[int, float], ...] = (
    (4637, 0.30),
    (33891, 0.12),
    (9304, 0.05),
)


@dataclass
class TopologyConfig:
    """Knobs for the synthetic Internet."""

    seed: int = 20250701
    n_tier2: int = 30
    n_stub: int = 260
    #: probability that a stub is multihomed to a second provider.
    multihome_prob: float = 0.3
    #: number of tier-2 ↔ tier-2 peerings to sprinkle in.
    n_t2_peerings: int = 20
    #: networks directly connected (peering) to the beacon origin,
    #: standing in for the paper's ">1,700 directly connected networks".
    n_origin_peers: int = 12


def build_internet(config: TopologyConfig | None = None) -> ASTopology:
    """Build the synthetic Internet; deterministic under ``config.seed``."""
    config = config or TopologyConfig()
    rng = random.Random(config.seed)
    topo = ASTopology()

    for asn in TIER1_ASNS:
        topo.add_as(asn, tier=1)
    for a in TIER1_ASNS:
        for b in TIER1_ASNS:
            if a < b:
                topo.add_peering(a, b)

    for provider, customer in BACKBONE_EDGES:
        topo.add_provider_customer(provider, customer)

    # Random tier-2 transit layer: AS numbers 50000+i.
    tier2 = []
    for index in range(config.n_tier2):
        asn = 50000 + index
        topo.add_as(asn, tier=2)
        providers = rng.sample(TIER1_ASNS, k=rng.choice((1, 2)))
        for provider in providers:
            topo.add_provider_customer(provider, asn)
        tier2.append(asn)
    for _ in range(config.n_t2_peerings):
        a, b = rng.sample(tier2, k=2)
        if not _adjacent(topo, a, b):
            topo.add_peering(a, b)

    # Stubs: AS numbers 60000+i, biased under the cone-weighted transits.
    weighted, weights = zip(*CONE_WEIGHTS)
    residual = 1.0 - sum(weights)
    stub_providers = list(weighted) + [None]
    provider_weights = list(weights) + [residual]
    for index in range(config.n_stub):
        asn = 60000 + index
        topo.add_as(asn, tier=3)
        anchor = rng.choices(stub_providers, weights=provider_weights, k=1)[0]
        primary = anchor if anchor is not None else rng.choice(tier2)
        topo.add_provider_customer(primary, asn)
        if rng.random() < config.multihome_prob:
            secondary = rng.choice(tier2)
            if secondary != primary and not _adjacent(topo, secondary, asn):
                topo.add_provider_customer(secondary, asn)

    # The beacon origin's dense IXP presence: direct peerings.
    origin_peers = rng.sample(tier2, k=min(config.n_origin_peers, len(tier2)))
    for peer_asn in origin_peers:
        if not _adjacent(topo, 210312, peer_asn):
            topo.add_peering(210312, peer_asn)

    problems = topo.validate()
    if problems:
        raise RuntimeError(f"generated topology is invalid: {problems}")
    return topo


def _adjacent(topo: ASTopology, a: int, b: int) -> bool:
    return topo.graph.has_edge(a, b)
