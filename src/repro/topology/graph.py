"""AS-level topology with business relationships.

The topology is a labelled graph: nodes are ASNs, edges carry the
relationship seen from each endpoint (provider-customer or peer-peer).
Valley-free export and the customer-cone metric the paper uses to gauge
impact ("AS4637 ... ~6000 ASes in its customer cone") are computed here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.bgp.policy import Relationship
from repro.net.asn import validate_asn

__all__ = ["ASTopology"]


class ASTopology:
    """A mutable AS graph with provider/customer/peer edges."""

    def __init__(self):
        self._graph = nx.Graph()

    # -- construction ---------------------------------------------------

    def add_as(self, asn: int, **attrs) -> None:
        validate_asn(asn)
        self._graph.add_node(asn, **attrs)

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Add (or overwrite) a provider→customer edge."""
        self._add_edge(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, a: int, b: int) -> None:
        """Add (or overwrite) a settlement-free peering edge."""
        self._add_edge(a, b, Relationship.PEER)

    def _add_edge(self, a: int, b: int, rel_of_b_from_a: Relationship) -> None:
        if a == b:
            raise ValueError(f"self-loop on AS{a}")
        validate_asn(a)
        validate_asn(b)
        self._graph.add_edge(a, b)
        # Store the relationship as seen from each endpoint.
        self._graph.edges[a, b][a] = rel_of_b_from_a
        self._graph.edges[a, b][b] = rel_of_b_from_a.inverse

    # -- queries ---------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def __contains__(self, asn: int) -> bool:
        return asn in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def asns(self) -> list[int]:
        return sorted(self._graph.nodes)

    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """How ``asn`` sees ``neighbor`` (CUSTOMER/PEER/PROVIDER)."""
        try:
            return self._graph.edges[asn, neighbor][asn]
        except KeyError:
            raise KeyError(f"no adjacency AS{asn}–AS{neighbor}") from None

    def neighbors(self, asn: int) -> list[int]:
        return sorted(self._graph.neighbors(asn))

    def customers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is Relationship.CUSTOMER]

    def providers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is Relationship.PROVIDER]

    def peers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is Relationship.PEER]

    def is_stub(self, asn: int) -> bool:
        return not self.customers(asn)

    def tier1s(self) -> list[int]:
        """ASes with no providers (the clique at the top)."""
        return [asn for asn in self.asns() if not self.providers(asn)]

    def customer_cone(self, asn: int) -> set[int]:
        """All ASes reachable from ``asn`` by walking only customer edges
        (including ``asn`` itself) — CAIDA's customer-cone definition."""
        cone: set[int] = set()
        stack = [asn]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self.customers(current))
        return cone

    def customer_cone_size(self, asn: int) -> int:
        return len(self.customer_cone(asn))

    def validate(self) -> list[str]:
        """Sanity problems found in the graph (empty list = healthy)."""
        problems = []
        if not nx.is_connected(self._graph):
            problems.append("graph is not connected")
        for a, b in self._graph.edges:
            rel_ab = self._graph.edges[a, b].get(a)
            rel_ba = self._graph.edges[a, b].get(b)
            if rel_ab is None or rel_ba is None:
                problems.append(f"edge AS{a}-AS{b} missing relationship labels")
            elif rel_ab.inverse is not rel_ba:
                problems.append(f"edge AS{a}-AS{b} labels inconsistent")
        # Provider cycles break Gao-Rexford convergence.
        directed = nx.DiGraph((p, c) for p, c in self.provider_customer_pairs())
        if not nx.is_directed_acyclic_graph(directed):
            problems.append("customer-provider hierarchy contains a cycle")
        return problems

    def provider_customer_pairs(self) -> Iterator[tuple[int, int]]:
        for a, b in self._graph.edges:
            rel = self._graph.edges[a, b][a]
            if rel is Relationship.CUSTOMER:
                yield (a, b)
            elif rel is Relationship.PROVIDER:
                yield (b, a)
