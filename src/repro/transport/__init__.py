"""Archive transport: HTTP mirroring between collectors and consumers.

The paper's pipeline consumes the RIPE RIS raw-data archive over HTTP;
this package is that missing link for our reproduction.  It puts an
on-disk archive (the exact ``rrcNN/YYYY.MM/updates.*.gz`` layout)
behind a mirror server and teaches the rest of the stack to consume it
remotely:

* :mod:`repro.transport.manifest` — signed per-collector-month checksum
  manifests plus a signed root index (the trust anchor for every byte
  a mirror accepts);
* :mod:`repro.transport.server` — :class:`ArchiveServer`, a stdlib
  threading HTTP server with ``ETag``/``If-None-Match``, ``Range``
  resume, and gzip passthrough;
* :mod:`repro.transport.client` — :class:`ArchiveMirror`, the
  fault-tolerant sync client: concurrent collector-month workers,
  exponential backoff + jitter, resumable partial downloads, SHA-256
  verification, quarantine of corrupt bytes, and atomic publication so
  concurrent readers never see torn files;
* :mod:`repro.transport.faults` — :class:`FaultyProxy`, a deterministic
  fault-injecting proxy (drops, truncations, 5xx, stalls, corruption)
  so every robustness path is exercised in tests and CI.

``python -m repro mirror {serve,sync,watch,verify,proxy}`` drives the
whole loop from the command line; a synced mirror is a plain archive
directory, so :class:`repro.ris.Archive` and the observatory ingest
open it with no further configuration.
"""

from repro.transport.client import (
    ArchiveMirror,
    IntegrityError,
    SyncReport,
    TransportError,
)
from repro.transport.faults import FaultPlan, FaultyProxy
from repro.transport.manifest import (
    DEFAULT_KEY,
    ManifestError,
    build_archive_index,
    build_month_manifest,
    sha256_file,
    sign_document,
    verify_document,
)
from repro.transport.server import ArchiveServer

__all__ = [
    "ArchiveMirror",
    "ArchiveServer",
    "DEFAULT_KEY",
    "FaultPlan",
    "FaultyProxy",
    "IntegrityError",
    "ManifestError",
    "SyncReport",
    "TransportError",
    "build_archive_index",
    "build_month_manifest",
    "sha256_file",
    "sign_document",
    "verify_document",
]
