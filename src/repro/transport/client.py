"""Fault-tolerant archive mirror: sync a remote archive to local disk.

:class:`ArchiveMirror` pulls an archive served by
:class:`~repro.transport.server.ArchiveServer` (or anything speaking the
same manifest protocol) into a local directory tree that
:class:`repro.ris.Archive` opens transparently.  The machinery is the
part real archive mirroring needs:

* **concurrency** — a thread pool over collector-months; files within a
  month download sequentially so resume bookkeeping stays simple;
* **retries** — exponential backoff with deterministic jitter (seeded
  RNG) around every request; 5xx, timeouts, connection drops and
  truncated bodies are retryable, 4xx is not;
* **resume** — interrupted downloads leave a partial file under
  ``.mirror/partial/`` and the next attempt continues it with a
  ``Range: bytes=N-`` request (falling back to a full refetch when the
  server answers 200);
* **integrity** — every completed download is SHA-256-verified against
  the signed month manifest; mismatches are moved to
  ``.mirror/quarantine/`` (never left in the tree) and refetched;
* **atomicity** — verified files are fsynced and ``os.replace``d into
  the archive tree, so a concurrent :class:`~repro.ris.Archive` reader
  (or a tailing :class:`~repro.observatory.ingest.ObservatoryIngest`)
  never sees a partially written file;
* **incrementality** — the last fully synced manifest per month is
  cached under ``.mirror/state/``; unchanged files (same checksum) are
  skipped without hashing or touching them.

Downloaded files get their mtime set to the manifest's ``mtime_ns``, so
mirrored ``.idx`` sidecars remain *fresh* for the indexed read path
(sidecar staleness is detected via the data file's size + mtime).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union
from urllib.error import HTTPError, URLError
from urllib.parse import quote
from urllib.request import Request, urlopen

from repro.transport.manifest import (
    DEFAULT_KEY,
    INDEX_NAME,
    MANIFEST_NAME,
    ManifestError,
    parse_document,
    sha256_file,
)

__all__ = ["ArchiveMirror", "SyncReport", "TransportError", "IntegrityError"]

_CHUNK = 1 << 16


class TransportError(Exception):
    """A transfer failed after exhausting its retry budget."""


class IntegrityError(TransportError):
    """A download kept failing checksum verification."""


@dataclass
class SyncReport:
    """What one :meth:`ArchiveMirror.sync` pass did."""

    months_synced: int = 0
    files_checked: int = 0
    files_downloaded: int = 0
    files_skipped: int = 0
    files_refreshed: int = 0
    bytes_downloaded: int = 0
    bytes_resumed: int = 0
    retries: int = 0
    quarantined: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "SyncReport") -> None:
        """Fold a per-month report into this aggregate (single-threaded:
        each worker fills its own report, the coordinator merges)."""
        self.months_synced += other.months_synced
        self.files_checked += other.files_checked
        self.files_downloaded += other.files_downloaded
        self.files_skipped += other.files_skipped
        self.files_refreshed += other.files_refreshed
        self.bytes_downloaded += other.bytes_downloaded
        self.bytes_resumed += other.bytes_resumed
        self.retries += other.retries
        self.quarantined += other.quarantined
        self.failures.extend(other.failures)

    def to_json(self) -> dict[str, Any]:
        return {
            "months_synced": self.months_synced,
            "files_checked": self.files_checked,
            "files_downloaded": self.files_downloaded,
            "files_skipped": self.files_skipped,
            "files_refreshed": self.files_refreshed,
            "bytes_downloaded": self.bytes_downloaded,
            "bytes_resumed": self.bytes_resumed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "failures": list(self.failures),
        }


class _Truncated(Exception):
    """Body ended before Content-Length — retryable, partial is kept."""


class ArchiveMirror:
    """Mirror ``base_url`` into ``dest`` (both survive re-use)."""

    def __init__(self, base_url: str, dest: Union[str, Path],
                 workers: int = 4, timeout: float = 10.0, retries: int = 4,
                 backoff: float = 0.25, backoff_cap: float = 4.0,
                 jitter_seed: int = 0, key: bytes = DEFAULT_KEY,
                 collectors: Optional[Iterable[str]] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if "://" not in base_url:  # accept bare host:port
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.dest = Path(dest)
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.key = key
        self.collectors = frozenset(collectors) if collectors else None
        self._sleep = sleep
        self._rng = random.Random(jitter_seed)
        self.mirror_dir = self.dest / ".mirror"
        self.state_dir = self.mirror_dir / "state"
        self.partial_dir = self.mirror_dir / "partial"
        self.quarantine_dir = self.mirror_dir / "quarantine"

    # -- low-level HTTP ---------------------------------------------------

    def _url(self, *parts: str) -> str:
        return self.base_url + "".join("/" + quote(p, safe="") for p in parts)

    def _pause(self, attempt: int, report: SyncReport) -> None:
        report.retries += 1
        delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
        self._sleep(delay + self._rng.uniform(0, self.backoff))

    def _fetch_json(self, url: str, report: SyncReport) -> dict[str, Any]:
        """GET + parse + verify a signed document, with retries."""
        last: Exception = TransportError(url)
        for attempt in range(self.retries + 1):
            try:
                with urlopen(Request(url), timeout=self.timeout) as response:
                    payload = response.read()
                return parse_document(payload, self.key)
            except HTTPError as exc:
                exc.read()
                if exc.code < 500:
                    raise TransportError(f"{url}: HTTP {exc.code}") from None
                last = exc
            except (URLError, OSError, http.client.HTTPException,
                    ManifestError, socket.timeout) as exc:
                last = exc
            if attempt < self.retries:
                self._pause(attempt, report)
        raise TransportError(f"{url}: {last}") from None

    def _fetch_to(self, url: str, handle, offset: int) -> tuple[int, int]:
        """Stream ``url`` into an open file positioned for append.

        Returns ``(status, expected_total)`` where ``expected_total`` is
        the full object size implied by the response.  Raises
        :class:`_Truncated` when the body ends early (bytes already
        received stay in the file for the next resume attempt).
        """
        request = Request(url)
        if offset:
            request.add_header("Range", f"bytes={offset}-")
        with urlopen(request, timeout=self.timeout) as response:
            status = response.status
            length = response.headers.get("Content-Length")
            expected_body = int(length) if length is not None else None
            if status == 200 and offset:
                # Server ignored the range: restart from scratch.
                handle.seek(0)
                handle.truncate()
                offset = 0
            total = (offset + expected_body
                     if expected_body is not None else None)
            received = 0
            while True:
                try:
                    chunk = response.read(_CHUNK)
                except http.client.IncompleteRead as exc:
                    if exc.partial:
                        handle.write(exc.partial)
                    handle.flush()
                    raise _Truncated(url) from None
                if not chunk:
                    break
                handle.write(chunk)
                received += len(chunk)
            handle.flush()
            if expected_body is not None and received < expected_body:
                raise _Truncated(url)
            return status, total if total is not None else offset + received

    # -- single-file sync -------------------------------------------------

    def _quarantine(self, partial: Path, label: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for n in range(10_000):
            target = self.quarantine_dir / f"{label}.{n}"
            if not target.exists():
                os.replace(partial, target)
                return
        partial.unlink()  # pragma: no cover - pathological

    def _download_file(self, collector: str, month: str, name: str,
                       entry: dict[str, Any], report: SyncReport) -> None:
        """Fetch one month file with resume/verify/quarantine, then
        publish it atomically into the archive tree."""
        self._download_via(_Target(
            url=self._url(collector, month, name),
            final=self.dest / collector / month / name,
            partial=self.partial_dir / collector / month / name,
            label=f"{collector}-{month}-{name}"), entry, report)

    def _sync_entry(self, collector: str, month: str, name: str,
                    entry: dict[str, Any], cached: Optional[dict[str, Any]],
                    report: SyncReport) -> None:
        report.files_checked += 1
        final = self.dest / collector / month / name
        previous = (cached or {}).get(name)
        if previous is not None and final.exists() \
                and previous["sha256"] == entry["sha256"] \
                and final.stat().st_size == entry["size"]:
            if previous["mtime_ns"] != entry["mtime_ns"]:
                # Upstream rewrote the file byte-identically; keep local
                # mtimes aligned so .idx sidecars stay fresh.
                os.utime(final, ns=(entry["mtime_ns"], entry["mtime_ns"]))
                report.files_refreshed += 1
            report.files_skipped += 1
            return
        self._download_file(collector, month, name, entry, report)

    # -- per-month sync ---------------------------------------------------

    def _state_path(self, collector: str, month: str) -> Path:
        return self.state_dir / collector / f"{month}.json"

    def _load_state(self, collector: str, month: str
                    ) -> Optional[dict[str, Any]]:
        path = self._state_path(collector, month)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def _save_state(self, collector: str, month: str,
                    files: dict[str, Any]) -> None:
        path = self._state_path(collector, month)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(files, sort_keys=True))
        os.replace(tmp, path)

    def _sync_month(self, collector: str, month: str) -> SyncReport:
        report = SyncReport()
        try:
            manifest = self._fetch_json(
                self._url(collector, month, MANIFEST_NAME), report)
        except TransportError as exc:
            report.failures.append(str(exc))
            return report
        cached = self._load_state(collector, month)
        for name, entry in sorted(manifest["files"].items()):
            try:
                self._sync_entry(collector, month, name, entry, cached, report)
            except TransportError as exc:
                report.failures.append(str(exc))
        if report.ok:
            self._save_state(collector, month, manifest["files"])
            report.months_synced += 1
        return report

    def _sync_extra(self, name: str, entry: dict[str, Any],
                    report: SyncReport) -> None:
        report.files_checked += 1
        final = self.dest / name
        if final.exists() and final.stat().st_size == entry["size"] \
                and sha256_file(final) == entry["sha256"]:
            report.files_skipped += 1
            return
        self._download_file_flat(name, entry, report)

    def _download_file_flat(self, name: str, entry: dict[str, Any],
                            report: SyncReport) -> None:
        """Extras live at the archive root; same pipeline, flat paths."""
        self._download_via(_Target(
            url=self._url(name), final=self.dest / name,
            partial=self.partial_dir / name, label=name), entry, report)

    def _download_via(self, target: "_Target", entry: dict[str, Any],
                      report: SyncReport) -> None:
        target.partial.parent.mkdir(parents=True, exist_ok=True)
        last: Exception = TransportError(target.url)
        for attempt in range(self.retries + 1):
            offset = target.partial.stat().st_size \
                if target.partial.exists() else 0
            if offset > entry["size"]:
                # Garbage partial (e.g. from an older manifest): restart.
                target.partial.unlink()
                offset = 0
            try:
                with open(target.partial, "ab") as handle:
                    self._fetch_to(target.url, handle, offset)
                    os.fsync(handle.fileno())
            except HTTPError as exc:
                exc.read()
                if exc.code < 500:
                    raise TransportError(
                        f"{target.url}: HTTP {exc.code}") from None
                last = exc
                self._pause(attempt, report)
                continue
            except (_Truncated, URLError, OSError,
                    http.client.HTTPException, socket.timeout) as exc:
                last = exc
                self._pause(attempt, report)
                continue
            if offset:
                report.bytes_resumed += offset
            if sha256_file(target.partial) != entry["sha256"]:
                self._quarantine(target.partial, target.label)
                report.quarantined += 1
                last = IntegrityError(f"{target.url}: checksum mismatch")
                self._pause(attempt, report)
                continue
            target.final.parent.mkdir(parents=True, exist_ok=True)
            os.replace(target.partial, target.final)
            os.utime(target.final, ns=(entry["mtime_ns"], entry["mtime_ns"]))
            report.files_downloaded += 1
            report.bytes_downloaded += entry["size"] - offset
            return
        raise TransportError(f"{target.url}: giving up after "
                             f"{self.retries + 1} attempt(s): {last}")

    # -- public API -------------------------------------------------------

    def sync(self, strict: bool = False) -> SyncReport:
        """One full pass: index → extras → every collector-month on the
        thread pool.  With ``strict=True`` a non-empty failure list
        raises :class:`TransportError` (the report is attached)."""
        report = SyncReport()
        self.dest.mkdir(parents=True, exist_ok=True)
        index = self._fetch_json(self.base_url + "/" + INDEX_NAME, report)
        for name, entry in sorted(index.get("extras", {}).items()):
            try:
                self._sync_extra(name, entry, report)
            except TransportError as exc:
                report.failures.append(str(exc))
        months = [(collector, month)
                  for collector, month_list in sorted(index["collectors"].items())
                  if self.collectors is None or collector in self.collectors
                  for month in month_list]
        if self.workers == 1 or len(months) <= 1:
            for collector, month in months:
                report.merge(self._sync_month(collector, month))
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(self._sync_month, collector, month)
                           for collector, month in months]
                for future in futures:
                    report.merge(future.result())
        if strict and not report.ok:
            error = TransportError(
                f"sync finished with {len(report.failures)} failure(s): "
                + "; ".join(report.failures[:3]))
            error.report = report  # type: ignore[attr-defined]
            raise error
        return report

    def watch(self, interval: float, cycles: Optional[int] = None,
              on_report: Optional[Callable[[SyncReport], None]] = None
              ) -> list[SyncReport]:
        """Repeated sync passes, ``interval`` seconds apart; ``cycles``
        bounds the loop (None = forever).  Failures are retried on the
        next cycle rather than aborting the watch."""
        reports = []
        n = 0
        while cycles is None or n < cycles:
            report = self.sync()
            reports.append(report)
            if on_report is not None:
                on_report(report)
            n += 1
            if cycles is None or n < cycles:
                self._sleep(interval)
        return reports

    def verify(self, repair: bool = False) -> dict[str, list[str]]:
        """Re-hash every mirrored file against the cached manifests.

        Returns ``{"verified": [...], "missing": [...], "corrupt": [...]}``
        with ``collector/month/name`` paths.  The incremental sync skip
        never re-hashes on-disk files (that would defeat incrementality),
        so this is the scrub that catches local bit-rot.  With
        ``repair=True`` corrupt files are moved to the quarantine
        directory — the next :meth:`sync` then refetches them."""
        verified: list[str] = []
        missing: list[str] = []
        corrupt: list[str] = []
        if not self.state_dir.exists():
            return {"verified": verified, "missing": missing,
                    "corrupt": corrupt}
        for state_path in sorted(self.state_dir.glob("*/*.json")):
            collector = state_path.parent.name
            month = state_path.stem
            files = json.loads(state_path.read_text())
            for name, entry in sorted(files.items()):
                rel = f"{collector}/{month}/{name}"
                path = self.dest / collector / month / name
                if not path.exists():
                    missing.append(rel)
                elif sha256_file(path) != entry["sha256"]:
                    corrupt.append(rel)
                    if repair:
                        self._quarantine(path, f"{collector}-{month}-{name}")
                else:
                    verified.append(rel)
        return {"verified": verified, "missing": missing, "corrupt": corrupt}


@dataclass
class _Target:
    """Where one download comes from and goes to."""

    url: str
    final: Path
    partial: Path
    label: str
