"""Deterministic fault injection for the archive transport.

:class:`FaultyProxy` sits between an :class:`~repro.transport.client.
ArchiveMirror` and an upstream :class:`~repro.transport.server.
ArchiveServer`, forwarding requests verbatim except when the
:class:`FaultPlan` says otherwise.  Five fault kinds cover the failure
model the mirror must survive:

``drop``      close the connection before any response bytes
``error``     answer 503 (a 5xx burst is just a high rate)
``stall``     sleep past the client's read timeout, then serve normally
``truncate``  send correct headers but only half the body, then close
``corrupt``   flip a byte mid-body (checksum verification must catch it)

Decisions are deterministic: a scripted list of ``(substring, kind)``
pairs is consumed first (each fires once, on the first matching
request), then per-kind probabilities drawn from a seeded RNG.  With a
single-threaded mirror the request order — and therefore the exact
fault sequence — is reproducible, which is what lets the robustness
tests assert byte-identical outcomes *through* injected faults.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence
from urllib.error import HTTPError
from urllib.request import Request, urlopen

__all__ = ["FaultPlan", "FaultyProxy", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "error", "stall", "truncate", "corrupt")

#: Request headers forwarded to the upstream.
_FORWARD_HEADERS = ("Range", "If-None-Match")
#: Response headers forwarded back to the client.
_RETURN_HEADERS = ("Content-Type", "ETag", "Accept-Ranges", "Content-Range")


@dataclass
class FaultPlan:
    """What to inject, and when.

    ``script`` entries are ``(path_substring, kind)`` pairs, consumed in
    order — the first request whose path contains the substring gets the
    fault, exactly once.  ``rates`` maps fault kinds to probabilities
    evaluated (in :data:`FAULT_KINDS` order) for every request the
    script did not claim, using a RNG seeded with ``seed`` so a given
    request sequence always faults identically.
    """

    rates: dict[str, float] = field(default_factory=dict)
    script: Sequence[tuple[str, str]] = ()
    seed: int = 0
    stall_seconds: float = 3.0

    def __post_init__(self) -> None:
        import random

        for kind in set(self.rates) | {kind for _, kind in self.script}:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind: {kind!r}")
        self._rng = random.Random(self.seed)
        self._pending = list(self.script)
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.requests_seen = 0

    def decide(self, path: str) -> Optional[str]:
        """The fault kind for this request, or None to pass through."""
        with self._lock:
            self.requests_seen += 1
            for i, (substring, kind) in enumerate(self._pending):
                if substring in path:
                    del self._pending[i]
                    self.injected[kind] += 1
                    return kind
            for kind in FAULT_KINDS:
                rate = self.rates.get(kind, 0.0)
                if rate > 0 and self._rng.random() < rate:
                    self.injected[kind] += 1
                    return kind
            return None


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-faulty-proxy"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        proxy: "FaultyProxy" = self.server.proxy  # type: ignore[attr-defined]
        fault = proxy.plan.decide(self.path)
        if fault == "drop":
            self.close_connection = True
            return
        if fault == "error":
            payload = json.dumps({"error": "injected 503"}).encode()
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if fault == "stall":
            time.sleep(proxy.plan.stall_seconds)

        status, headers, body = proxy.forward(self)
        if fault == "truncate" and len(body) > 1:
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[:len(body) // 2])
            self.wfile.flush()
            self.close_connection = True
            return
        if fault == "corrupt" and body:
            middle = len(body) // 2
            body = body[:middle] + bytes([body[middle] ^ 0xFF]) \
                + body[middle + 1:]
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)


class FaultyProxy:
    """Forward to ``upstream_url``, injecting faults per ``plan``."""

    def __init__(self, upstream_url: str, plan: Optional[FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0):
        if "://" not in upstream_url:  # accept bare host:port
            upstream_url = "http://" + upstream_url
        self.upstream_url = upstream_url.rstrip("/")
        self.plan = plan if plan is not None else FaultPlan()
        self.timeout = timeout
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.proxy = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "FaultyProxy":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="faulty-proxy", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI foreground mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def forward(self, handler: _Handler) -> tuple[int, dict[str, str], bytes]:
        """One upstream round-trip; upstream errors pass through as-is."""
        request = Request(self.upstream_url + handler.path)
        for name in _FORWARD_HEADERS:
            value = handler.headers.get(name)
            if value is not None:
                request.add_header(name, value)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                headers = {name: response.headers[name]
                           for name in _RETURN_HEADERS
                           if response.headers.get(name) is not None}
                return response.status, headers, body
        except HTTPError as exc:
            body = exc.read()
            headers = {name: exc.headers[name] for name in _RETURN_HEADERS
                       if exc.headers and exc.headers.get(name) is not None}
            return exc.code, headers, body
