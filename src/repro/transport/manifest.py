"""Signed checksum manifests for archive transport.

The transport layer never trusts bytes on the wire: every
collector-month directory is described by a JSON manifest listing each
file's SHA-256, size and mtime, and the whole archive by a root *index*
listing collectors, their months, and any top-level extra files
(``scenario.json``).  Both documents carry an HMAC-SHA256 signature over
their canonical JSON encoding, so a mirror can detect a tampered or
bit-rotted manifest before it trusts any checksum in it.

The signature key is a shared secret between server and mirror
(:data:`DEFAULT_KEY` by default — integrity, not secrecy, is the goal;
operators running over untrusted networks supply their own key).

Determinism matters: the archive writers emit byte-identical gzip files
for identical record streams (``mtime=0``), so manifest checksums are
stable across re-writes and an incremental re-sync of an unchanged
archive downloads nothing.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import re
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["ManifestError", "DEFAULT_KEY", "MANIFEST_VERSION",
           "MANIFEST_NAME", "INDEX_NAME", "sha256_file", "file_entry",
           "build_month_manifest", "build_archive_index", "sign_document",
           "verify_document", "canonical_bytes"]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
INDEX_NAME = "index.json"

#: Default shared signing key (integrity checking, not authentication).
DEFAULT_KEY = b"repro-archive-transport-v1"

_MONTH_RE = re.compile(r"^\d{4}\.\d{2}$")
_HASH_CHUNK = 1 << 20


class ManifestError(ValueError):
    """A manifest failed to parse or its signature did not verify."""


def sha256_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of a file, hex-encoded."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                return digest.hexdigest()
            digest.update(chunk)


def file_entry(path: Union[str, Path]) -> dict[str, Any]:
    """Manifest entry for one file: checksum, size, mtime."""
    path = Path(path)
    stat = path.stat()
    return {"sha256": sha256_file(path), "size": stat.st_size,
            "mtime_ns": stat.st_mtime_ns}


def canonical_bytes(document: dict[str, Any]) -> bytes:
    """The byte string the signature covers: compact, key-sorted JSON of
    everything except the ``signature`` field itself."""
    body = {k: v for k, v in document.items() if k != "signature"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def sign_document(document: dict[str, Any],
                  key: bytes = DEFAULT_KEY) -> dict[str, Any]:
    """Return ``document`` with its HMAC-SHA256 ``signature`` attached."""
    signed = dict(document)
    signed["signature"] = hmac.new(key, canonical_bytes(document),
                                   hashlib.sha256).hexdigest()
    return signed


def verify_document(document: Any, key: bytes = DEFAULT_KEY) -> dict[str, Any]:
    """Validate shape, version and signature; returns the document.

    Raises :class:`ManifestError` on any mismatch — a mirror treats that
    exactly like a network failure (retry, then give up loudly).
    """
    if not isinstance(document, dict):
        raise ManifestError(f"manifest is not an object: {type(document).__name__}")
    if document.get("version") != MANIFEST_VERSION:
        raise ManifestError(
            f"unsupported manifest version: {document.get('version')!r}")
    signature = document.get("signature")
    if not isinstance(signature, str):
        raise ManifestError("manifest carries no signature")
    expected = hmac.new(key, canonical_bytes(document),
                        hashlib.sha256).hexdigest()
    if not hmac.compare_digest(signature, expected):
        raise ManifestError("manifest signature mismatch")
    return document


def _is_month_dir(path: Path) -> bool:
    return path.is_dir() and _MONTH_RE.match(path.name) is not None


def build_month_manifest(root: Union[str, Path], collector: str, month: str,
                         key: bytes = DEFAULT_KEY) -> dict[str, Any]:
    """Signed manifest of one ``<root>/<collector>/<month>`` directory.

    Every regular, non-hidden file in the directory is listed — data
    files *and* their ``.idx`` sidecars, so a mirror reproduces the
    indexed read path without re-decoding anything.
    """
    directory = Path(root) / collector / month
    if not directory.is_dir():
        raise FileNotFoundError(f"no such collector-month: {directory}")
    files = {}
    for path in sorted(directory.iterdir()):
        if path.is_file() and not path.name.startswith("."):
            files[path.name] = file_entry(path)
    return sign_document({
        "version": MANIFEST_VERSION,
        "collector": collector,
        "month": month,
        "files": files,
    }, key)


def build_archive_index(root: Union[str, Path],
                        key: bytes = DEFAULT_KEY) -> dict[str, Any]:
    """Signed root index: collectors, their months, and top-level extras
    (regular non-hidden files at the archive root, e.g. ``scenario.json``)."""
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"archive root does not exist: {root}")
    collectors: dict[str, list[str]] = {}
    extras: dict[str, dict[str, Any]] = {}
    for path in sorted(root.iterdir()):
        if path.name.startswith("."):
            continue
        if path.is_dir():
            months = sorted(p.name for p in path.iterdir() if _is_month_dir(p))
            if months:
                collectors[path.name] = months
        elif path.is_file():
            extras[path.name] = file_entry(path)
    return sign_document({
        "version": MANIFEST_VERSION,
        "collectors": collectors,
        "extras": extras,
    }, key)


def parse_document(payload: Union[str, bytes],
                   key: Optional[bytes] = DEFAULT_KEY) -> dict[str, Any]:
    """Parse JSON and (unless ``key`` is None) verify the signature."""
    try:
        document = json.loads(payload)
    except ValueError as exc:
        raise ManifestError(f"manifest is not valid JSON: {exc}") from None
    if key is None:
        return document
    return verify_document(document, key)
