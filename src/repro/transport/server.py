"""RIS-style HTTP mirror server over an on-disk archive (stdlib-only).

Exposes an archive root in the exact ``rrcNN/YYYY.MM/updates.*.gz``
layout the RIPE RIS raw-data service uses, plus the transport metadata
a fault-tolerant mirror needs::

    GET /healthz                               liveness + collector count
    GET /index.json                            signed archive index
    GET /<collector>/<YYYY.MM>/manifest.json   signed per-month manifest
    GET /<collector>/<YYYY.MM>/<file>          file bytes
    GET /<file>                                top-level extras (scenario.json)

File responses are production-shaped:

* strong ``ETag`` (the file's SHA-256) with ``If-None-Match`` → 304;
* ``Range: bytes=N-`` / ``bytes=N-M`` / ``bytes=-N`` → 206 with
  ``Content-Range`` (416 when unsatisfiable) — the resume primitive;
* gzip **passthrough**: ``.gz`` archive files are already compressed,
  so bytes go on the wire verbatim (``Content-Type: application/gzip``)
  and checksums match the on-disk file exactly.

Manifests and ETags are cached keyed by directory/file fingerprints
(name, size, mtime), so repeated sync polls are cheap and a rewritten
archive invalidates naturally.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional, Union

from repro.transport.manifest import (
    DEFAULT_KEY,
    INDEX_NAME,
    MANIFEST_NAME,
    build_archive_index,
    build_month_manifest,
    sha256_file,
)

__all__ = ["ArchiveServer"]

_MONTH_RE = re.compile(r"^\d{4}\.\d{2}$")
_SAFE_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class _RangeError(Exception):
    """Unsatisfiable or malformed Range header."""


def _parse_range(header: str, size: int) -> Optional[tuple[int, int]]:
    """``(start, end)`` inclusive for a single-range header, or None for
    whole-file requests.  Raises :class:`_RangeError` when unsatisfiable."""
    if not header:
        return None
    match = re.match(r"^bytes=(\d*)-(\d*)$", header.strip())
    if match is None:
        raise _RangeError(header)
    first, last = match.group(1), match.group(2)
    if first == "" and last == "":
        raise _RangeError(header)
    if first == "":  # suffix range: last N bytes
        length = int(last)
        if length == 0:
            raise _RangeError(header)
        start = max(0, size - length)
        end = size - 1
    else:
        start = int(first)
        end = int(last) if last else size - 1
        end = min(end, size - 1)
    if start >= size or start > end:
        raise _RangeError(header)
    return start, end


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-archive"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the test/CI output clean

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._serve(head=False)

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib casing
        self._serve(head=True)

    def _serve(self, head: bool) -> None:
        archive: "ArchiveServer" = self.server.archive  # type: ignore[attr-defined]
        archive.requests_served += 1
        try:
            status, headers, body = archive.respond(
                self.path, if_none_match=self.headers.get("If-None-Match"),
                range_header=self.headers.get("Range"))
        except FileNotFoundError:
            status, headers, body = 404, {}, json.dumps(
                {"error": f"no such resource: {self.path}"}).encode()
            headers["Content-Type"] = "application/json"
        except PermissionError:
            status, headers, body = 403, {}, json.dumps(
                {"error": "path not allowed"}).encode()
            headers["Content-Type"] = "application/json"
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if not head and body:
            self.wfile.write(body)
            archive.bytes_sent += len(body)


class ArchiveServer:
    """Serve one archive root; ``port=0`` binds an ephemeral port."""

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, key: bytes = DEFAULT_KEY):
        self.root = Path(root)
        if not self.root.is_dir():
            raise FileNotFoundError(f"archive root does not exist: {self.root}")
        self.key = key
        self.requests_served = 0
        self.bytes_sent = 0
        self._etag_lock = threading.Lock()
        self._etags: dict[tuple[str, int, int], str] = {}
        self._manifest_lock = threading.Lock()
        self._manifests: dict[str, tuple[tuple, bytes]] = {}
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.archive = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ArchiveServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="archive-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI foreground mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def stats(self) -> dict[str, Any]:
        return {"requests_served": self.requests_served,
                "bytes_sent": self.bytes_sent,
                "etags_cached": len(self._etags),
                "manifests_cached": len(self._manifests)}

    # -- routing ----------------------------------------------------------

    def respond(self, path: str, if_none_match: Optional[str] = None,
                range_header: Optional[str] = None
                ) -> tuple[int, dict[str, str], bytes]:
        """(status, headers, body) for one GET; raises FileNotFoundError /
        PermissionError for the handler to translate."""
        parts = [p for p in path.split("?")[0].split("/") if p]
        if not parts:
            raise FileNotFoundError(path)
        if any(not _SAFE_NAME_RE.match(p) for p in parts):
            raise PermissionError(path)
        if parts == ["healthz"]:
            return self._json(self._healthz())
        if parts == [INDEX_NAME]:
            return self._signed_json(f"index:{self.root}",
                                     self._index_fingerprint(),
                                     lambda: build_archive_index(self.root,
                                                                 self.key))
        if len(parts) == 3 and parts[2] == MANIFEST_NAME:
            collector, month = parts[0], parts[1]
            directory = self.root / collector / month
            if not _MONTH_RE.match(month) or not directory.is_dir():
                raise FileNotFoundError(path)
            return self._signed_json(
                f"month:{collector}/{month}", self._dir_fingerprint(directory),
                lambda: build_month_manifest(self.root, collector, month,
                                             self.key))
        if len(parts) == 3:
            target = self.root / parts[0] / parts[1]
            if not _MONTH_RE.match(parts[1]):
                raise FileNotFoundError(path)
            return self._file(target / parts[2], if_none_match, range_header)
        if len(parts) == 1:  # top-level extras (scenario.json, ...)
            target = self.root / parts[0]
            if target.is_dir():
                raise FileNotFoundError(path)
            return self._file(target, if_none_match, range_header)
        raise FileNotFoundError(path)

    def _healthz(self) -> dict[str, Any]:
        collectors = [p.name for p in self.root.iterdir() if p.is_dir()
                      and not p.name.startswith(".")]
        return {"status": "ok", "collectors": len(collectors),
                "requests_served": self.requests_served}

    # -- responses --------------------------------------------------------

    @staticmethod
    def _json(body: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        payload = json.dumps(body, sort_keys=True).encode()
        return 200, {"Content-Type": "application/json"}, payload

    def _signed_json(self, cache_key: str, fingerprint: tuple, build
                     ) -> tuple[int, dict[str, str], bytes]:
        """Serve a signed document, rebuilt only when its fingerprint
        (the underlying directory listing) changed."""
        with self._manifest_lock:
            cached = self._manifests.get(cache_key)
            if cached is not None and cached[0] == fingerprint:
                payload = cached[1]
            else:
                payload = json.dumps(build(), sort_keys=True).encode()
                self._manifests[cache_key] = (fingerprint, payload)
        return 200, {"Content-Type": "application/json"}, payload

    def _dir_fingerprint(self, directory: Path) -> tuple:
        entries = []
        for path in sorted(directory.iterdir()):
            if path.is_file() and not path.name.startswith("."):
                stat = path.stat()
                entries.append((path.name, stat.st_size, stat.st_mtime_ns))
        return tuple(entries)

    def _index_fingerprint(self) -> tuple:
        entries = []
        for path in sorted(self.root.iterdir()):
            if path.name.startswith("."):
                continue
            if path.is_dir():
                months = tuple(sorted(p.name for p in path.iterdir()
                                      if p.is_dir() and _MONTH_RE.match(p.name)))
                entries.append((path.name, months))
            elif path.is_file():
                stat = path.stat()
                entries.append((path.name, stat.st_size, stat.st_mtime_ns))
        return tuple(entries)

    def _etag(self, path: Path) -> str:
        stat = path.stat()
        key = (str(path), stat.st_size, stat.st_mtime_ns)
        with self._etag_lock:
            cached = self._etags.get(key)
        if cached is not None:
            return cached
        etag = f'"{sha256_file(path)}"'
        with self._etag_lock:
            self._etags[key] = etag
        return etag

    def _file(self, path: Path, if_none_match: Optional[str],
              range_header: Optional[str]) -> tuple[int, dict[str, str], bytes]:
        if not path.is_file():
            raise FileNotFoundError(path)
        etag = self._etag(path)
        content_type = ("application/gzip" if path.suffix == ".gz"
                        else "application/json" if path.suffix == ".idx"
                        else "application/octet-stream")
        headers = {"Content-Type": content_type, "ETag": etag,
                   "Accept-Ranges": "bytes"}
        if if_none_match is not None and etag in {
                tag.strip() for tag in if_none_match.split(",")}:
            return 304, headers, b""
        data = path.read_bytes()
        try:
            span = _parse_range(range_header or "", len(data))
        except _RangeError:
            headers["Content-Range"] = f"bytes */{len(data)}"
            return 416, headers, b""
        if span is None:
            return 200, headers, data
        start, end = span
        headers["Content-Range"] = f"bytes {start}-{end}/{len(data)}"
        return 206, headers, data[start:end + 1]
