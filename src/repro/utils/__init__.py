"""Shared utilities (time handling, CDF helpers, logging)."""

from repro.utils import timeutil

__all__ = ["timeutil"]
