"""Time helpers used across the library.

All timestamps in this codebase are POSIX timestamps in UTC, stored as
``int`` seconds (BGP/MRT granularity is one second).  These helpers keep
the conversion logic in one place so that no module ever constructs a
naive :class:`datetime.datetime` by accident.
"""

from __future__ import annotations

import calendar
from datetime import datetime, timezone

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "ts",
    "from_iso",
    "to_iso",
    "to_datetime",
    "month_start",
    "seconds_into_month",
    "align_down",
    "align_up",
]

MINUTE = 60
HOUR = 3600
DAY = 86400


def ts(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
       second: int = 0) -> int:
    """Build a UTC POSIX timestamp from calendar components."""
    dt = datetime(year, month, day, hour, minute, second, tzinfo=timezone.utc)
    return int(dt.timestamp())


def from_iso(text: str) -> int:
    """Parse ``YYYY-MM-DD[ HH:MM[:SS]]`` (UTC assumed) into a timestamp."""
    text = text.strip().replace("T", " ")
    formats = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d")
    for fmt in formats:
        try:
            dt = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
        except ValueError:
            continue
        return int(dt.timestamp())
    raise ValueError(f"unrecognised time string: {text!r}")


def to_iso(timestamp: int) -> str:
    """Render a timestamp as ``YYYY-MM-DD HH:MM:SS`` UTC."""
    return to_datetime(timestamp).strftime("%Y-%m-%d %H:%M:%S")


def to_datetime(timestamp: int) -> datetime:
    """Convert a POSIX timestamp to an aware UTC datetime."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc)


def month_start(timestamp: int) -> int:
    """Timestamp of midnight UTC on the 1st day of the timestamp's month."""
    dt = to_datetime(timestamp)
    return ts(dt.year, dt.month, 1)


def seconds_into_month(timestamp: int) -> int:
    """Seconds elapsed since midnight UTC on the 1st of the month."""
    return timestamp - month_start(timestamp)


def previous_month_start(timestamp: int) -> int:
    """Timestamp of midnight UTC on the 1st day of the previous month."""
    dt = to_datetime(month_start(timestamp))
    year, month = (dt.year - 1, 12) if dt.month == 1 else (dt.year, dt.month - 1)
    return ts(year, month, 1)


def days_in_month(timestamp: int) -> int:
    """Number of days in the timestamp's month."""
    dt = to_datetime(timestamp)
    return calendar.monthrange(dt.year, dt.month)[1]


def align_down(timestamp: int, step: int, origin: int = 0) -> int:
    """Largest ``origin + k*step`` that is <= ``timestamp``."""
    if step <= 0:
        raise ValueError("step must be positive")
    return origin + ((timestamp - origin) // step) * step


def align_up(timestamp: int, step: int, origin: int = 0) -> int:
    """Smallest ``origin + k*step`` that is >= ``timestamp``."""
    down = align_down(timestamp, step, origin)
    return down if down == timestamp else down + step
