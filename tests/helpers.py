"""Shared builders for core-pipeline tests: hand-crafted record streams."""

from repro.beacons import AggregatorClock, BeaconInterval
from repro.bgp import (
    Aggregator,
    Announcement,
    ASPath,
    PathAttributes,
    PeerState,
    StateRecord,
    UpdateRecord,
    Withdrawal,
)
from repro.net import Prefix

ORIGIN = 210312


def attrs(*asns, origin_time=None, next_hop="2001:db8::1"):
    """Path attributes; ``origin_time`` adds the RIS Aggregator clock."""
    aggregator = None
    if origin_time is not None:
        aggregator = Aggregator(ORIGIN, AggregatorClock.encode(origin_time))
    return PathAttributes(as_path=ASPath.of(*asns), next_hop=next_hop,
                          aggregator=aggregator)


def ann(time, prefix, *asns, collector="rrc00", addr="2001:db8::2",
        peer_asn=None, origin_time=None):
    peer_asn = peer_asn if peer_asn is not None else asns[0]
    return UpdateRecord(time, collector, addr, peer_asn,
                        Announcement(Prefix(prefix),
                                     attrs(*asns, origin_time=origin_time)))


def wd(time, prefix, collector="rrc00", addr="2001:db8::2", peer_asn=25091):
    return UpdateRecord(time, collector, addr, peer_asn,
                        Withdrawal(Prefix(prefix)))


def sess_down(time, collector="rrc00", addr="2001:db8::2", peer_asn=25091):
    return StateRecord(time, collector, addr, peer_asn,
                       PeerState.ESTABLISHED, PeerState.IDLE)


def sess_up(time, collector="rrc00", addr="2001:db8::2", peer_asn=25091):
    return StateRecord(time, collector, addr, peer_asn,
                       PeerState.CONNECT, PeerState.ESTABLISHED)


def interval(prefix, announce, withdraw=None, origin=ORIGIN, discarded=False):
    withdraw = withdraw if withdraw is not None else announce + 900
    return BeaconInterval(prefix=Prefix(prefix), announce_time=announce,
                          withdraw_time=withdraw, origin_asn=origin,
                          discarded=discarded)
