"""Tests for the analysis package: ECDF, emergence, path lengths,
concurrency, and pipeline comparison."""

import pytest
from helpers import ann, interval, wd
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ECDF,
    compare_results,
    concurrent_outbreaks,
    emergence_rates,
    path_length_analysis,
)
from repro.core import DetectorConfig, LegacyDetector, ZombieDetector
from repro.utils.timeutil import HOUR, ts

T0 = ts(2024, 6, 5)
P6 = "2a0d:3dc1:1145::/48"
P6B = "2a0d:3dc1:1200::/48"
P4 = "84.205.64.0/24"


class TestECDF:
    def test_basic(self):
        cdf = ECDF.from_values([1, 2, 2, 4])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1) == 0.25
        assert cdf.at(2) == 0.75
        assert cdf.at(4) == 1.0
        assert cdf.at(99) == 1.0

    def test_quantile(self):
        cdf = ECDF.from_values([1, 2, 2, 4])
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            ECDF.from_values([1]).quantile(1.5)

    def test_empty(self):
        cdf = ECDF.from_values([])
        assert cdf.is_empty
        assert cdf.at(10) == 0.0
        with pytest.raises(ValueError):
            cdf.quantile(0.5)
        with pytest.raises(ValueError):
            cdf.mean()

    def test_mean(self):
        assert ECDF.from_values([1, 2, 3, 4]).mean() == pytest.approx(2.5)

    def test_series_monotone(self):
        cdf = ECDF.from_values([3, 1, 2, 2])
        xs = [x for x, _ in cdf.series()]
        ps = [p for _, p in cdf.series()]
        assert xs == sorted(xs)
        assert ps == sorted(ps)
        assert ps[-1] == 1.0

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_property_final_probability_one(self, values):
        cdf = ECDF.from_values(values)
        assert cdf.ps[-1] == pytest.approx(1.0)
        assert cdf.at(max(values)) == pytest.approx(1.0)
        assert cdf.at(min(values) - 1) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=2),
           st.floats(min_value=0, max_value=1, exclude_min=True))
    def test_property_quantile_inverse(self, values, p):
        cdf = ECDF.from_values(values)
        x = cdf.quantile(p)
        assert cdf.at(x) >= p - 1e-9


def two_interval_run():
    """Two intervals of the same v6 prefix + one v4 prefix: one zombie
    at one peer each family in interval one."""
    intervals = [
        interval(P6, T0, T0 + 900),
        interval(P4, T0, T0 + 900),
        interval(P6, T0 + 4 * HOUR, T0 + 4 * HOUR + 900),
    ]
    records = [
        # v6 interval 1: two peers, one sticks with a LONGER hunted path.
        ann(T0 + 2, P6, 25091, 8298, 210312, origin_time=T0),
        ann(T0 + 3, P6, 33891, 25091, 8298, 210312, origin_time=T0,
            addr="2001:db8::9", peer_asn=33891),
        wd(T0 + 903, P6),
        # the stuck peer re-announces an even longer path via hunting:
        ann(T0 + 905, P6, 33891, 64900, 4637, 25091, 8298, 210312,
            origin_time=T0, addr="2001:db8::9", peer_asn=33891),
        # v4: one peer, sticks.
        ann(T0 + 2, P4, 25091, 12654, origin_time=T0, peer_asn=25091),
        # v6 interval 2: healthy at both peers.
        ann(T0 + 4 * HOUR + 2, P6, 25091, 8298, 210312,
            origin_time=T0 + 4 * HOUR),
        ann(T0 + 4 * HOUR + 3, P6, 33891, 25091, 8298, 210312,
            origin_time=T0 + 4 * HOUR, addr="2001:db8::9", peer_asn=33891),
        wd(T0 + 4 * HOUR + 903, P6),
        wd(T0 + 4 * HOUR + 904, P6, addr="2001:db8::9", peer_asn=33891),
    ]
    result = ZombieDetector(DetectorConfig()).detect(records, intervals)
    return records, intervals, result


class TestEmergence:
    def test_rates(self):
        _, _, result = two_interval_run()
        stats = emergence_rates(result)
        # v6 pair (P6, 33891): 2 visible, 1 zombie -> 0.5.
        assert stats.cdf_v6.at(0.49) < 1.0
        assert stats.cdf_v6.at(0.5) == 1.0
        # v4 pair: 1 visible, 1 zombie -> rate 1.0.
        assert stats.mean_rate_v4 == pytest.approx(1.0)
        # (P6, 25091) never stuck: rate 0 -> zero_fraction 1/3.
        assert stats.zero_fraction == pytest.approx(1 / 3)

    def test_empty_result(self):
        result = ZombieDetector(DetectorConfig()).detect([], [])
        stats = emergence_rates(result)
        assert stats.cdf_v4.is_empty
        assert stats.zero_fraction == 0.0


class TestPathLength:
    def test_zombie_paths_longer(self):
        records, _, result = two_interval_run()
        stats = path_length_analysis(records, result)
        assert stats.zombie_paths.n_points >= 1
        # The hunted v6 zombie path (6 hops) is longer than its normal
        # path (4 hops).
        assert max(stats.zombie_paths.xs) == 6
        assert max(stats.normal_at_zombie_peers.xs) <= 4

    def test_changed_path_fraction(self):
        records, _, result = two_interval_run()
        stats = path_length_analysis(records, result)
        # v6 zombie changed path (hunting), v4 zombie kept its path.
        assert stats.changed_path_fraction == pytest.approx(0.5)

    def test_normal_peers_counted(self):
        records, _, result = two_interval_run()
        stats = path_length_analysis(records, result)
        # Peer 25091 was normal in v6 interval 1 + both peers in interval 2.
        assert stats.normal_at_normal_peers.n_points >= 1


class TestConcurrency:
    def test_same_slot_grouping(self):
        _, _, result = two_interval_run()
        stats = concurrent_outbreaks(result.outbreaks)
        # One v4 and one v6 outbreak share the slot but families are
        # counted separately: each occurs singly.
        assert stats.single_fraction_v4 == 1.0
        assert stats.single_fraction_v6 == 1.0

    def test_multi_prefix_same_slot(self):
        intervals = [interval(P6, T0, T0 + 900),
                     interval(P6B, T0, T0 + 900)]
        records = [
            ann(T0 + 2, P6, 25091, 210312, origin_time=T0),
            ann(T0 + 2, P6B, 25091, 210312, origin_time=T0),
        ]
        result = ZombieDetector(DetectorConfig()).detect(records, intervals)
        stats = concurrent_outbreaks(result.outbreaks)
        assert stats.single_fraction_v6 == 0.0
        assert stats.cdf_v6.at(2) == 1.0

    def test_empty(self):
        stats = concurrent_outbreaks([])
        assert stats.cdf_v4.is_empty
        assert stats.single_fraction_v6 == 0.0


class TestCompare:
    def test_legacy_vs_revised_asymmetry(self):
        """Quiet carried zombies are legacy-only; the comparison must
        show the revised pipeline 'missing' them (Table 3 direction)."""
        intervals = [interval(P6, T0 + i * 4 * HOUR, T0 + i * 4 * HOUR + 900)
                     for i in range(4)]
        records = [ann(T0 + 2, P6, 25091, 210312, origin_time=T0)]
        revised = ZombieDetector(DetectorConfig()).detect(records, intervals)
        legacy = LegacyDetector().detect(records, intervals)
        comparison = compare_results(revised, legacy)
        assert comparison.missing_in_a.outbreaks_v6 == 3  # revised misses 3
        assert comparison.missing_in_b.outbreaks_v6 == 0
        assert comparison.missing_in_a.routes_v6 == 3
        assert comparison.missing_in_a.routes_total == 3
        assert comparison.missing_in_a.outbreaks_total == 3

    def test_identical_results_no_missing(self):
        _, _, result = two_interval_run()
        comparison = compare_results(result, result)
        assert comparison.missing_in_a.routes_total == 0
        assert comparison.missing_in_b.outbreaks_total == 0
