"""Tests for root-cause AS characterization."""

import pytest
from helpers import ann, interval

from repro.analysis.suspects import (
    SuspectProfile,
    characterize_suspects,
    inference_confidence,
)
from repro.core import ZombieOutbreak, ZombieRoute, infer_root_cause
from repro.topology import ASTopology
from repro.utils.timeutil import HOUR, ts

T0 = ts(2024, 6, 7)


def outbreak(prefix, paths, announce=T0):
    iv = interval(prefix, announce, announce + 900)
    routes = []
    for index, path in enumerate(paths):
        record = ann(announce + 2, prefix, *path,
                     addr=f"2001:db8::{index + 1}", peer_asn=path[0])
        routes.append(ZombieRoute(interval=iv,
                                  peer=("rrc00", f"2001:db8::{index + 1}"),
                                  peer_asn=path[0], detected_at=announce + 6300,
                                  announcement=record))
    return ZombieOutbreak(iv, tuple(routes))


def topology():
    topo = ASTopology()
    for asn in (210312, 8298, 25091, 33891, 9304, 64801, 64802, 64803):
        topo.add_as(asn)
    topo.add_provider_customer(8298, 210312)
    topo.add_provider_customer(25091, 8298)
    topo.add_provider_customer(33891, 25091)
    topo.add_provider_customer(33891, 64801)
    topo.add_provider_customer(33891, 64802)
    topo.add_provider_customer(9304, 64803)
    return topo


class TestConfidence:
    def test_zero_when_no_suspect(self):
        o = outbreak("2a0d:3dc1:1::/48", [(64801, 210312), (64802, 210312)])
        inference = infer_root_cause(o, 210312)
        assert inference_confidence(inference) == 0.0

    def test_single_path_half_confidence_ceiling(self):
        o = outbreak("2a0d:3dc1:1::/48", [(64801, 33891, 25091, 8298, 210312)])
        inference = infer_root_cause(o, 210312)
        confidence = inference_confidence(inference)
        assert 0 < confidence < 0.7

    def test_many_agreeing_paths_high_confidence(self):
        paths = [(peer, 33891, 25091, 8298, 210312)
                 for peer in (64801, 64802, 64803, 64804)]
        o = outbreak("2a0d:3dc1:1::/48", paths)
        inference = infer_root_cause(o, 210312)
        assert inference_confidence(inference) == pytest.approx(1.0)


class TestCharacterize:
    def test_profiles_aggregate_over_outbreaks(self):
        outbreaks = [
            outbreak("2a0d:3dc1:1::/48",
                     [(64801, 33891, 25091, 8298, 210312),
                      (64802, 33891, 25091, 8298, 210312)]),
            outbreak("2a0d:3dc1:2::/48",
                     [(64801, 33891, 25091, 8298, 210312)],
                     announce=T0 + 4 * HOUR),
            outbreak("2a0d:3dc1:3::/48",
                     [(64803, 9304, 25091, 8298, 210312)],
                     announce=T0 + 8 * HOUR),
        ]
        profiles = characterize_suspects(outbreaks, 210312,
                                         topology=topology())
        by_asn = {p.asn: p for p in profiles}
        assert set(by_asn) == {33891, 9304}
        core = by_asn[33891]
        assert core.outbreak_count == 2
        assert len(core.prefixes) == 2
        assert core.affected_peer_asns == {64801, 64802}
        assert core.total_zombie_routes == 3
        # cone = {33891, 25091, 8298, 210312, 64801, 64802}
        assert core.customer_cone_size == 6
        assert not core.is_stub

    def test_ranking_by_impact(self):
        outbreaks = [
            outbreak("2a0d:3dc1:1::/48",
                     [(64801, 33891, 25091, 8298, 210312),
                      (64802, 33891, 25091, 8298, 210312)]),
            outbreak("2a0d:3dc1:2::/48",
                     [(64803, 9304, 25091, 8298, 210312)]),
        ]
        profiles = characterize_suspects(outbreaks, 210312,
                                         topology=topology())
        assert profiles[0].asn == 33891  # bigger cone, more peers

    def test_no_suspect_outbreaks_skipped(self):
        outbreaks = [outbreak("2a0d:3dc1:1::/48",
                              [(64801, 210312), (64802, 210312)])]
        assert characterize_suspects(outbreaks, 210312) == []

    def test_without_topology_cone_zero(self):
        outbreaks = [outbreak("2a0d:3dc1:1::/48",
                              [(64801, 33891, 25091, 8298, 210312)])]
        (profile,) = characterize_suspects(outbreaks, 210312)
        assert profile.customer_cone_size == 0
        assert profile.impact_score >= 1

    def test_str(self):
        outbreaks = [outbreak("2a0d:3dc1:1::/48",
                              [(64801, 33891, 25091, 8298, 210312)])]
        (profile,) = characterize_suspects(outbreaks, 210312)
        assert "AS33891" in str(profile)


class TestCampaignSuspects:
    def test_scripted_causes_surface(self):
        """Over the quick campaign, the scripted causes (Core-Backbone
        and HGC) appear among the top suspects."""
        from repro.experiments import campaign_run

        run = campaign_run(quick=True)
        result = run.detect(threshold=180 * 60, exclude_noisy=True)
        profiles = characterize_suspects(result.outbreaks, 210312,
                                         topology=run.topology)
        suspects = {p.asn for p in profiles}
        assert 33891 in suspects
        assert 9304 in suspects
